"""The ``repro-rpc`` command line.

Subcommands mirror the study structure:

- ``repro-rpc fleet-study``     Tier-A fleet-wide figures (2, 3, 6-8, 10-13,
  20, 21, 23)
- ``repro-rpc growth``          Fig. 1
- ``repro-rpc trees``           Figs. 4-5
- ``repro-rpc service-study``   Figs. 14-15 on the Table-1 services
- ``repro-rpc cross-cluster``   Fig. 19
- ``repro-rpc diurnal``         Fig. 18
- ``repro-rpc analyze-traces``  offline analysis of a saved trace file
- ``repro-rpc export-chrome``   convert a saved trace file to Chrome
  trace-event JSON (open at ui.perfetto.dev)
- ``repro-rpc fleet-obs``       the observability control plane: run a DES
  study under an SLO spec (optionally injecting a latency regression) and
  render the incident report — alert timeline, burn-rate sparklines,
  exemplar traces
- ``repro-rpc serve``           run the study engine as a live HTTP
  service observed by its own obs stack (see docs/SERVING.md)
- ``repro-rpc serve-loadgen``   drive a serve-mode server with Zipf +
  diurnal open/closed-loop traffic
- ``repro-rpc span-query``      build a columnar span warehouse (stream a
  study through it, or ingest a saved trace file) and run the paper's
  analysis jobs observer-side, optionally cross-validated against the
  engine (``--self-check``)
- ``repro-rpc theory``          the closed-form M/G/k what-if engine:
  sweep the analytic models across utilization x variability x fanout
  against matched DES runs and report agreement (exit 1 on breach)

Every subcommand prints paper-vs-measured tables; ``--save-traces`` on the
DES studies writes a Dapper trace file that ``analyze-traces`` can consume
later (the paper's own offline-analysis workflow). ``service-study`` also
takes ``--manifest FILE`` (a run manifest: seed, config digest, counts,
per-phase wall time), ``--chrome-trace FILE`` (engine + span telemetry
as a Perfetto-loadable trace), and ``--slo FILE`` (SLO specs to evaluate
while the study runs; firing alerts land in the manifest).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro-rpc",
        description="Reproduction toolkit for 'A Cloud-Scale "
                    "Characterization of RPCs' (SOSP 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fleet-study", help="Tier-A fleet-wide figures")
    p.add_argument("--methods", type=int, default=1000)
    p.add_argument("--samples", type=int, default=200,
                   help="samples per method")
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("growth", help="Fig. 1: RPS/CPU over time")
    p.add_argument("--days", type=int, default=700)

    p = sub.add_parser("trees", help="Figs. 4-5: call-tree shape")
    p.add_argument("--methods", type=int, default=1000)
    p.add_argument("--trees", type=int, default=300)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--max-nodes", type=int, default=20000,
                   help="per-tree node budget")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes; results are bit-identical "
                        "for any value (see docs/PERFORMANCE.md)")
    p.add_argument("--no-cache", action="store_true",
                   help="always recompute, never read or write the cache")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="study result cache directory "
                        "(default: .repro-cache)")
    p.add_argument("--stream", action="store_true",
                   help="out-of-core mode: spill shard arrays to disk and "
                        "fold them back in bounded-memory chunks "
                        "(bit-identical to in-memory)")
    p.add_argument("--spill-dir", default=None, metavar="DIR",
                   help="shard spill directory for --stream "
                        "(default: <cache-dir>/spill); implies --stream")
    p.add_argument("--shard-size", type=int, default=None, metavar="N",
                   help="trees generated/spilled per shard "
                        "(default: 2048)")
    p.add_argument("--max-rss-mb", type=float, default=None, metavar="MB",
                   help="exit 1 if this process's peak RSS exceeds MB")

    p = sub.add_parser("service-study",
                       help="Figs. 14-15: the Table-1 services (DES)")
    p.add_argument("--services", nargs="*", default=None,
                   help="subset of the eight services (default: all)")
    p.add_argument("--clusters", type=int, default=1)
    p.add_argument("--duration", type=float, default=3.0,
                   help="simulated seconds of load")
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--save-traces", metavar="FILE", default=None)
    p.add_argument("--manifest", metavar="FILE", default=None,
                   help="write a run-manifest JSON")
    p.add_argument("--chrome-trace", metavar="FILE", default=None,
                   help="write a Perfetto-loadable Chrome trace JSON")
    p.add_argument("--slo", metavar="FILE", default=None,
                   help="JSON SLO spec file; evaluates burn-rate alerts "
                        "during the run")
    p.add_argument("--max-rss-mb", type=float, default=None, metavar="MB",
                   help="exit 1 if this process's peak RSS exceeds MB")

    p = sub.add_parser("fleet-obs",
                       help="run a DES study under SLO alerting and "
                            "render the incident report")
    p.add_argument("--slo", metavar="FILE", default=None,
                   help="JSON SLO spec file (default: a built-in p99 "
                        "latency SLO on the studied service)")
    p.add_argument("--services", nargs="*", default=["Bigtable"],
                   help="services to run (default: Bigtable)")
    p.add_argument("--clusters", type=int, default=1)
    p.add_argument("--duration", type=float, default=6.0,
                   help="simulated seconds of load")
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--scrape-interval", type=float, default=0.25,
                   help="Monarch scrape + alert evaluation cadence "
                        "(simulated seconds)")
    p.add_argument("--trace-budget", type=float, default=None,
                   help="adaptive head-sampling budget "
                        "(root traces per scrape interval)")
    p.add_argument("--inject-regression", metavar="SERVICE:T:SCALE",
                   default=None,
                   help="at sim time T, multiply SERVICE's handler "
                        "service time by SCALE (e.g. Bigtable:3.0:2.0)")
    p.add_argument("--report", metavar="FILE", default=None,
                   help="write the incident report to FILE as well as "
                        "stdout")
    p.add_argument("--manifest", metavar="FILE", default=None,
                   help="write a run-manifest JSON (includes the alert "
                        "timeline)")
    p.add_argument("--from-manifest", metavar="FILE", default=None,
                   help="skip the run; re-render the alert timeline from "
                        "an existing manifest")

    p = sub.add_parser("serve",
                       help="run the study engine as a live HTTP service, "
                            "observed by its own obs stack")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8123,
                   help="TCP port (0 picks an ephemeral port)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--duration", type=float, default=None,
                   help="serve for this many real seconds then exit "
                        "(default: forever)")
    p.add_argument("--scrape-interval", type=float, default=0.25,
                   help="Monarch scrape + alert evaluation cadence "
                        "(real seconds)")
    p.add_argument("--threshold", type=float, default=0.05,
                   help="latency SLO: 99%% of requests within this many "
                        "seconds")
    p.add_argument("--window", type=float, default=240.0,
                   help="SLO window (real seconds)")
    p.add_argument("--trace-budget", type=float, default=64.0,
                   help="adaptive head-sampling budget "
                        "(root traces per scrape interval)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="study result cache directory "
                        "(default: .repro-cache)")
    p.add_argument("--no-prewarm", action="store_true",
                   help="skip precomputing the default study/what-if "
                        "cache entries")
    p.add_argument("--inject-slowdown", metavar="AFTER:EXTRA[:DURATION]",
                   default=None,
                   help="after AFTER seconds of uptime, dwell an extra "
                        "EXTRA seconds per work request for DURATION "
                        "seconds (e.g. 3.0:0.15:2.0)")
    p.add_argument("--quiesce-timeout", type=float, default=30.0,
                   help="after --duration, wait up to this long for "
                        "alerts to resolve and shedding to recover")
    p.add_argument("--manifest", metavar="FILE", default=None,
                   help="write the shutdown run-manifest JSON (listen "
                        "address, counts, per-endpoint p99, alert "
                        "timeline)")
    p.add_argument("--report", metavar="FILE", default=None,
                   help="write the shutdown incident report to FILE as "
                        "well as stdout")
    p.add_argument("--warehouse-dir", metavar="DIR", default=None,
                   help="spool sampled spans into a columnar span "
                        "warehouse under DIR (run key 'serve') instead "
                        "of memory; committed at shutdown")

    p = sub.add_parser("serve-loadgen",
                       help="drive a serve-mode server with open/closed-"
                            "loop traffic (Zipf popularity, diurnal "
                            "arrivals)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8123)
    p.add_argument("--duration", type=float, default=10.0,
                   help="real seconds of load")
    p.add_argument("--rate", type=float, default=50.0,
                   help="open-loop base arrival rate (req/s; 0 disables)")
    p.add_argument("--users", type=int, default=0,
                   help="closed-loop user connections (0 disables)")
    p.add_argument("--think", type=float, default=0.05,
                   help="closed-loop mean think time (seconds)")
    p.add_argument("--zipf-alpha", type=float, default=1.2,
                   help="endpoint popularity skew (0 = uniform)")
    p.add_argument("--diurnal-amplitude", type=float, default=0.3,
                   help="open-loop rate wave amplitude")
    p.add_argument("--day", type=float, default=60.0,
                   help="real seconds one compressed 24h day spans")
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("cross-cluster", help="Fig. 19: the WAN staircase")
    p.add_argument("--clusters", type=int, default=16)
    p.add_argument("--duration", type=float, default=15.0)
    p.add_argument("--save-traces", metavar="FILE", default=None)

    p = sub.add_parser("diurnal", help="Fig. 18: a 24h day in slices")
    p.add_argument("--slices", type=int, default=12)
    p.add_argument("--slice-duration", type=float, default=1.0)

    p = sub.add_parser("analyze-traces",
                       help="offline analysis of a saved trace file")
    p.add_argument("file")

    p = sub.add_parser("export-chrome",
                       help="convert a saved trace file to Chrome "
                            "trace-event JSON")
    p.add_argument("file", help="Dapper trace file (see --save-traces)")
    p.add_argument("output", help="Chrome trace JSON to write")
    p.add_argument("--trace-ids", type=int, nargs="*", default=None,
                   help="export only these Dapper trace ids (e.g. the "
                        "exemplars named by an incident report)")

    p = sub.add_parser("span-query",
                       help="build and query a columnar span warehouse "
                            "(observer-side characterization)")
    p.add_argument("--root", required=True, metavar="DIR",
                   help="warehouse root directory")
    p.add_argument("--run-key", default="study",
                   help="warehouse run key under --root")
    p.add_argument("--ingest", metavar="TRACEFILE", default=None,
                   help="build the warehouse from a saved Dapper trace "
                        "file (see --save-traces) before querying")
    p.add_argument("--generate", action="store_true",
                   help="build the warehouse by streaming a DES service "
                        "study's spans through the warehouse sink")
    p.add_argument("--services", nargs="*", default=["KVStore"],
                   help="services for --generate (default: KVStore)")
    p.add_argument("--duration", type=float, default=2.0,
                   help="simulated seconds for --generate")
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--sampling", type=float, default=1.0,
                   help="Dapper head-sampling rate for --generate")
    p.add_argument("--shard-size", type=int, default=8192,
                   help="spans per columnar shard")
    p.add_argument("--self-check", action="store_true",
                   help="with --generate: keep engine-side ground truth "
                        "and cross-validate the observer-side figures "
                        "(exit 1 on any mismatch)")
    p.add_argument("--service", default=None,
                   help="filter queries to one service")
    p.add_argument("--method", default=None,
                   help="filter queries to one method")
    p.add_argument("--metric", default="total",
                   help="group-by metric: total, tax, cycles, or "
                        "component:<name>")
    p.add_argument("--percentiles", default="50,95,99",
                   help="comma-separated percentiles for the group-by "
                        "table")
    p.add_argument("--figures", action="store_true",
                   help="also render the observer-side Fig. 14 breakdown, "
                        "Fig. 20 cycle tax, and tree-shape summary")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="write query results (and the self-check report) "
                        "as JSON to FILE")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the group-by fold; results "
                        "are bit-identical for any value")
    p.add_argument("--max-rss-mb", type=float, default=None, metavar="MB",
                   help="exit 1 if this process's peak RSS exceeds MB")

    p = sub.add_parser("theory",
                       help="closed-form M/G/k what-if engine: run the "
                            "analytic-vs-DES validation sweep")
    p.add_argument("--sweep", action="store_true",
                   help="run the utilization x variability x fanout "
                        "agreement sweep against matched DES points "
                        "(the default action)")
    p.add_argument("--grid", choices=("ci", "full"), default="ci",
                   help="sweep grid size (ci: fast, full: denser + "
                        "longer DES runs)")
    p.add_argument("--sweeps", nargs="*", default=None,
                   choices=("queueing", "fanout", "whatif"),
                   help="subset of sweep families (default: all)")
    p.add_argument("--seed", type=int, default=23)
    p.add_argument("--json", metavar="FILE", default=None,
                   help="write the agreement report as JSON to FILE")
    return parser


def _wall_clock():
    """Real elapsed-seconds clock for manifests (harness-side only)."""
    import time

    return time.perf_counter  # repro-lint: disable=RL001 - CLI harness timing for run manifests; never used by sim logic


# ----------------------------------------------------------------------
def _cmd_fleet_study(args) -> int:
    from repro.core.cycles import analyze_cycle_tax, analyze_method_cycles
    from repro.core.errors import analyze_errors
    from repro.core.fleetsample import run_fleet_study
    from repro.core.latency import analyze_latency_distribution
    from repro.core.popularity import analyze_popularity
    from repro.core.services import analyze_services
    from repro.core.sizes import analyze_sizes
    from repro.core.tax import (
        analyze_fleet_tax,
        analyze_netstack,
        analyze_queueing,
        analyze_tax_ratio,
    )
    from repro.workloads.catalog import CatalogConfig, build_catalog

    catalog = build_catalog(CatalogConfig(n_methods=args.methods,
                                          seed=args.seed))
    fleet = run_fleet_study(catalog, np.random.default_rng(args.seed),
                            samples_per_method=args.samples)
    print(f"{fleet.total_calls_sampled:,} RPCs sampled over "
          f"{len(fleet.methods)} methods\n")
    for result in (
        analyze_latency_distribution(fleet), analyze_popularity(fleet),
        analyze_sizes(fleet), analyze_services(fleet),
        analyze_fleet_tax(fleet), analyze_tax_ratio(fleet),
        analyze_netstack(fleet), analyze_queueing(fleet),
        analyze_cycle_tax(fleet.gwp), analyze_method_cycles(fleet),
        analyze_errors(fleet),
    ):
        print(result.render())
        print()
    return 0


def _cmd_growth(args) -> int:
    from repro.core.growth import run_growth_study

    r = run_growth_study(days=args.days)
    print(f"annual RPS/CPU growth: {r.annual_growth:.3f} (paper 0.30)")
    print(f"total growth over {args.days} days: {r.total_growth:.3f} "
          f"(paper 0.64 over 700)")
    return 0


def _check_rss_budget(max_rss_mb) -> int:
    """Report peak RSS against a ``--max-rss-mb`` budget; 1 if exceeded."""
    if max_rss_mb is None:
        return 0
    from repro.obs.manifest import peak_rss_mb

    rss = peak_rss_mb()
    within = rss <= max_rss_mb
    print(f"\npeak RSS: {rss:.0f} MB "
          f"({'within' if within else 'EXCEEDS'} budget {max_rss_mb:.0f} MB)")
    return 0 if within else 1


def _cmd_trees(args) -> int:
    import os

    from repro.core.cache import DEFAULT_CACHE_DIR, StudyCache
    from repro.core.parallel import DEFAULT_SHARD_SIZE, run_tree_study_cached
    from repro.workloads.catalog import CatalogConfig, build_catalog

    catalog = build_catalog(CatalogConfig(n_methods=args.methods,
                                          seed=args.seed))
    cache = None
    if not args.no_cache:
        cache = StudyCache(args.cache_dir or DEFAULT_CACHE_DIR)
    spill_dir = None
    if args.stream or args.spill_dir:
        spill_dir = args.spill_dir or os.path.join(
            args.cache_dir or DEFAULT_CACHE_DIR, "spill")
    r, hit = run_tree_study_cached(catalog, n_trees=args.trees,
                                   seed=args.seed, jobs=args.jobs,
                                   max_nodes=args.max_nodes,
                                   shard_size=args.shard_size
                                   or DEFAULT_SHARD_SIZE,
                                   spill_dir=spill_dir, cache=cache)
    print(r.render())
    if hit:
        print("\n(cache hit — loaded, not recomputed; "
              "pass --no-cache to force regeneration)")
    if spill_dir is not None and not hit:
        print(f"(streamed via spill dir {spill_dir})")
    return _check_rss_budget(args.max_rss_mb)


def _cmd_service_study(args) -> int:
    from repro.core.breakdown import breakdown_cdf_for_service
    from repro.core.report import fmt_seconds, format_table
    from repro.core.whatif import what_if_for_service
    from repro.studies import run_service_study
    from repro.workloads.services import SERVICE_SPECS

    trace_probe = None
    if args.chrome_trace:
        from repro.obs.telemetry import TraceEventProbe

        trace_probe = TraceEventProbe()
    slos = None
    if args.slo:
        from repro.obs.alerting import load_slo_specs

        slos = load_slo_specs(args.slo)
    builder = None
    if args.manifest:
        from repro.obs.manifest import ManifestBuilder

        builder = ManifestBuilder("service-study", seed=args.seed,
                                  wall_clock=_wall_clock())
        builder.set_config(
            services=sorted(args.services or list(SERVICE_SPECS)),
            n_clusters=args.clusters, duration_s=args.duration,
            slos=[s.to_dict() for s in slos] if slos else [],
        )

    def simulate():
        return run_service_study(services=args.services,
                                 n_clusters=args.clusters,
                                 duration_s=args.duration, seed=args.seed,
                                 dapper_sampling=1.0, probe=trace_probe,
                                 slos=slos)

    if builder is not None:
        with builder.phase("simulate"):
            study = simulate()
    else:
        study = simulate()
    names = args.services or list(SERVICE_SPECS)
    rows = []
    for name in names:
        method = SERVICE_SPECS[name].method
        cdf = breakdown_cdf_for_service(study.dapper, name, method)
        wi = what_if_for_service(study.dapper, name, method)
        rows.append((name, fmt_seconds(cdf.total_at(50)),
                     fmt_seconds(cdf.total_at(95)), cdf.dominant_at(95),
                     wi.dominant(),
                     f"{wi.percent_rescued[wi.dominant()]:.0f}%"))
    print(format_table(
        ("service", "P50", "P95", "dominant@P95", "best fix", "tail rescued"),
        rows, title="Figs. 14-15 — service latency anatomy",
    ))
    if args.save_traces:
        from repro.obs.trace_io import write_traces

        n = write_traces(study.dapper.spans, args.save_traces)
        print(f"\nwrote {n:,} spans to {args.save_traces}")
    if args.chrome_trace:
        from repro.obs.chrometrace import span_trace_events, write_chrome_trace

        def export_chrome():
            n = write_chrome_trace(args.chrome_trace,
                                   trace_probe.trace_events(),
                                   span_trace_events(study.dapper.spans))
            print(f"wrote {n:,} trace events to {args.chrome_trace}")

        if builder is not None:
            with builder.phase("export-chrome", telemetry=True):
                export_chrome()
        else:
            export_chrome()
    if study.alerts is not None:
        from repro.obs.dashboard import render_incident_report

        print()
        print(render_incident_report(study.alerts.events, study.monarch,
                                     traces=study.dapper.traces()))
    if builder is not None:
        from repro.obs.manifest import write_manifest

        builder.observe_sim(study.sim)
        builder.add_counts(spans_recorded=study.dapper.spans_recorded)
        if study.alerts is not None:
            builder.add_alerts(study.alerts.events)
        write_manifest(builder.finish(), args.manifest)
        print(f"wrote run manifest to {args.manifest}")
    return _check_rss_budget(args.max_rss_mb)


def _parse_regression(spec: str):
    """Parse an ``--inject-regression SERVICE:T:SCALE`` argument."""
    parts = spec.split(":")
    if len(parts) != 3:
        raise SystemExit(
            f"--inject-regression wants SERVICE:T:SCALE, got {spec!r}")
    return parts[0], float(parts[1]), float(parts[2])


def _cmd_fleet_obs(args) -> int:
    from repro.obs.dashboard import render_incident_report

    if args.from_manifest:
        from repro.obs.manifest import read_manifest

        manifest = read_manifest(args.from_manifest)
        report = render_incident_report(
            manifest.alerts, title=f"incident report ({manifest.run_id}, "
                                   f"seed {manifest.seed})")
        print(report)
        if args.report:
            with open(args.report, "w", encoding="utf-8") as f:
                f.write(report + "\n")
            print(f"\nwrote incident report to {args.report}")
        return 0

    from repro.obs.alerting import SloSpec, load_slo_specs
    from repro.studies import run_service_study
    from repro.workloads.services import SERVICE_SPECS

    if args.slo:
        slos = load_slo_specs(args.slo)
    else:
        # A built-in tail-latency SLO on the first studied service: 99%
        # of calls within 8x the handler's median service time (a loose
        # bound that healthy runs meet and queueing regressions break).
        service = args.services[0]
        spec = SERVICE_SPECS[service]
        slos = [SloSpec(
            name=f"{service.lower()}-latency",
            threshold_s=spec.app_median_s * 8.0,
            window_s=args.duration * 120.0,
            target=0.99,
            labels={"method": f"{service}/{spec.method}"},
        )]

    on_setup = None
    if args.inject_regression:
        service, at_s, scale = _parse_regression(args.inject_regression)
        if service not in (args.services or []):
            raise SystemExit(
                f"--inject-regression service {service!r} is not part of "
                f"this study ({args.services})")

        def on_setup(sim, deployments):
            servers = [s for cluster_servers in
                       deployments[service].servers_by_cluster.values()
                       for s in cluster_servers]

            def degrade():
                for server in servers:
                    server.app_scale *= scale

            sim.at(at_s, degrade)

    builder = None
    if args.manifest:
        from repro.obs.manifest import ManifestBuilder

        builder = ManifestBuilder("fleet-obs", seed=args.seed,
                                  wall_clock=_wall_clock())
        builder.set_config(
            services=sorted(args.services), n_clusters=args.clusters,
            duration_s=args.duration,
            scrape_interval_s=args.scrape_interval,
            trace_budget=args.trace_budget,
            inject_regression=args.inject_regression,
            slos=[s.to_dict() for s in slos],
        )

    def simulate():
        return run_service_study(
            services=args.services, n_clusters=args.clusters,
            duration_s=args.duration, seed=args.seed,
            scrape_interval_s=args.scrape_interval, dapper_sampling=1.0,
            slos=slos, trace_budget=args.trace_budget, on_setup=on_setup,
        )

    if builder is not None:
        with builder.phase("simulate"):
            study = simulate()
    else:
        study = simulate()

    report = render_incident_report(study.alerts.events, study.monarch,
                                    traces=study.dapper.traces())
    print(report)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write(report + "\n")
        print(f"\nwrote incident report to {args.report}")
    if builder is not None:
        from repro.obs.manifest import write_manifest

        builder.observe_sim(study.sim)
        builder.add_counts(spans_recorded=study.dapper.spans_recorded,
                           alert_events=len(study.alerts.events),
                           alert_evaluations=study.alerts.evaluations)
        builder.add_alerts(study.alerts.events)
        write_manifest(builder.finish(), args.manifest)
        print(f"wrote run manifest to {args.manifest}")
    return 0


def _parse_slowdown(spec: str):
    """Parse an ``--inject-slowdown AFTER:EXTRA[:DURATION]`` argument."""
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise SystemExit(
            f"--inject-slowdown wants AFTER:EXTRA[:DURATION], got {spec!r}")
    after_s, extra_s = float(parts[0]), float(parts[1])
    duration_s = float(parts[2]) if len(parts) == 3 else float("inf")
    return after_s, extra_s, duration_s


def _cmd_serve(args) -> int:
    import asyncio

    from repro.core.cache import DEFAULT_CACHE_DIR
    from repro.obs.dashboard import render_incident_report
    from repro.obs.manifest import write_manifest
    from repro.serve import ServeApp, ServeConfig

    config = ServeConfig(
        host=args.host, port=args.port, seed=args.seed,
        scrape_interval_s=args.scrape_interval,
        latency_threshold_s=args.threshold, slo_window_s=args.window,
        trace_budget=args.trace_budget,
        cache_dir=args.cache_dir or DEFAULT_CACHE_DIR,
        prewarm=not args.no_prewarm,
        warehouse_dir=args.warehouse_dir,
    )
    if args.inject_slowdown:
        after_s, extra_s, duration_s = _parse_slowdown(args.inject_slowdown)
        config.slowdown_after_s = after_s
        config.slowdown_extra_s = extra_s
        config.slowdown_duration_s = duration_s

    async def run() -> int:
        app = ServeApp(config)
        await app.start()
        print(f"serving on http://{app.listen_address}  "
              f"(scrape every {config.scrape_interval_s:g}s, latency SLO "
              f"p99 < {config.latency_threshold_s:g}s)", flush=True)
        try:
            if args.duration is None:
                while True:
                    await asyncio.sleep(3600.0)
            await asyncio.sleep(args.duration)
            quiet = await app.wait_for_quiet(args.quiesce_timeout)
            if not quiet:
                print("warning: alerts still firing at shutdown")
        finally:
            await app.stop()
            report = render_incident_report(
                app.alert_timeline(), app.monarch,
                traces=app.trace_trees(),
                title=f"incident report (serve {app.listen_address})")
            print(report)
            if args.report:
                with open(args.report, "w", encoding="utf-8") as f:
                    f.write(report + "\n")
                print(f"\nwrote incident report to {args.report}")
            if args.manifest:
                write_manifest(app.build_manifest(), args.manifest)
                print(f"wrote run manifest to {args.manifest}")
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _cmd_serve_loadgen(args) -> int:
    import asyncio

    from repro.serve import LoadGenConfig, run_loadgen

    config = LoadGenConfig(
        duration_s=args.duration, rate=args.rate, users=args.users,
        think_s=args.think, zipf_alpha=args.zipf_alpha,
        diurnal_amplitude=args.diurnal_amplitude, day_s=args.day,
        seed=args.seed,
    )
    result = asyncio.run(run_loadgen(args.host, args.port, config))
    print(result.render())
    return 0 if result.sent and result.ok else 1


def _cmd_cross_cluster(args) -> int:
    from repro.core.crosscluster import analyze_cross_cluster
    from repro.studies import run_cross_cluster_study

    study = run_cross_cluster_study(n_client_clusters=args.clusters,
                                    duration_s=args.duration)
    r = analyze_cross_cluster(
        study.dapper, "Spanner", "ReadRows", study.network,
        study.clusters_by_name(), study.fleet.clusters[0].name, min_spans=20,
    )
    print(r.render())
    if args.save_traces:
        from repro.obs.trace_io import write_traces

        n = write_traces(study.dapper.spans, args.save_traces)
        print(f"\nwrote {n:,} spans to {args.save_traces}")
    return 0


def _cmd_diurnal(args) -> int:
    from repro.core.exogenous import diurnal_series
    from repro.studies import run_diurnal_study

    study = run_diurnal_study(n_slices=args.slices,
                              slice_duration_s=args.slice_duration)
    spans = study.dapper.spans_for_method("Bigtable", "SearchValue")
    for cluster in sorted({s.server_cluster for s in spans}):
        print(diurnal_series(spans, cluster, service="Bigtable",
                             window_s=7200.0).render())
        print()
    return 0


def _cmd_analyze_traces(args) -> int:
    from repro.core.breakdown import breakdown_cdf
    from repro.core.report import fmt_seconds, format_table
    from repro.core.whatif import what_if_components
    from repro.obs.trace_io import load_collector

    collector = load_collector(args.file)
    print(f"{len(collector):,} spans loaded from {args.file}\n")
    rows = []
    for full_method in collector.methods(min_samples=30):
        matrix = collector.matrix_for_method(full_method)
        cdf = breakdown_cdf(matrix, service=full_method)
        try:
            wi = what_if_components(matrix)
            fix = wi.dominant()
        except ValueError:
            fix = "-"
        rows.append((full_method, len(matrix),
                     fmt_seconds(cdf.total_at(50)),
                     fmt_seconds(cdf.total_at(95)),
                     cdf.dominant_at(95), fix))
    if not rows:
        print("no method has >= 30 usable spans")
        return 1
    print(format_table(
        ("method", "spans", "P50", "P95", "dominant@P95", "best fix"),
        rows, title="offline trace analysis",
    ))
    return 0


def _cmd_export_chrome(args) -> int:
    from repro.obs.chrometrace import span_trace_events, write_chrome_trace
    from repro.obs.trace_io import read_traces

    spans = list(read_traces(args.file))
    if args.trace_ids is not None:
        want = set(args.trace_ids)
        spans = [s for s in spans if s.trace_id in want]
        if not spans:
            print(f"no spans match trace ids {sorted(want)}")
            return 1
    n = write_chrome_trace(args.output, span_trace_events(spans))
    print(f"wrote {n:,} trace events ({len(spans):,} spans) to {args.output}")
    print("open at https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_span_query(args) -> int:
    import json

    from repro.core.report import format_table
    from repro.obs.query import SpanFilter, group_by_method, tree_shape_stats
    from repro.obs.spanstore import (SpanStore, SpanStoreError, SpanStoreSink,
                                     SpanWarehouse, ingest_trace_file)

    try:
        quantiles = [float(q) / 100.0
                     for q in args.percentiles.split(",") if q]
    except ValueError:
        raise SystemExit(f"bad --percentiles {args.percentiles!r}")

    study = None
    if args.generate:
        from repro.studies import run_service_study

        sink = SpanStoreSink(SpanStore(args.root, args.run_key),
                             shard_size=args.shard_size)
        study = run_service_study(
            services=args.services, n_clusters=1, duration_s=args.duration,
            seed=args.seed, dapper_sampling=args.sampling,
            span_sink=sink, keep_spans_in_memory=args.self_check,
        )
        warehouse = sink.close()
        print(f"streamed {warehouse.n_spans:,} spans into "
              f"{warehouse.n_shards} shards under {args.root}")
    elif args.ingest:
        warehouse = ingest_trace_file(args.ingest, args.root, args.run_key,
                                      shard_size=args.shard_size)
        print(f"ingested {warehouse.n_spans:,} spans from {args.ingest} "
              f"into {warehouse.n_shards} shards under {args.root}")
    else:
        try:
            warehouse = SpanWarehouse.open(args.root, args.run_key)
        except SpanStoreError as err:
            raise SystemExit(f"cannot open warehouse: {err}")

    document = {"n_spans": warehouse.n_spans,
                "n_shards": warehouse.n_shards}

    where = SpanFilter(service=args.service, method=args.method)
    try:
        groups = group_by_method(warehouse, where, metric=args.metric,
                                 jobs=args.jobs)
    except KeyError as err:
        raise SystemExit(str(err))
    rows, json_rows = [], []
    for (service, method), agg in sorted(groups.items()):
        quantile_values = {q: agg.quantile(q) for q in quantiles}
        rows.append((f"{service}/{method}", f"{agg.count:,}",
                     f"{agg.error_count:,}", f"{agg.mean_value_s * 1e3:.3f}",
                     *(f"{quantile_values[q] * 1e3:.3f}"
                       for q in quantiles)))
        json_rows.append({
            "service": service, "method": method, "count": agg.count,
            "errors": agg.error_count, "mean_s": agg.mean_value_s,
            **{f"p{q * 100:g}_s": quantile_values[q] for q in quantiles},
        })
    print(format_table(
        ("method", "spans", "errors", "mean ms",
         *(f"p{q * 100:g} ms" for q in quantiles)),
        rows, title=f"span warehouse group-by ({args.metric}, "
                    f"{warehouse.n_spans:,} spans)",
    ))
    document["groups"] = json_rows

    if args.figures:
        from repro.core.observer import (observer_breakdown_cdf,
                                         observer_cycle_tax)

        if args.service and args.method:
            fig_targets = [(args.service, args.method)]
        else:
            best = max(groups.values(), key=lambda a: a.count, default=None)
            fig_targets = [(best.service, best.method)] if best else []
        for service, method in fig_targets:
            try:
                print()
                print(observer_breakdown_cdf(warehouse, service,
                                             method).render())
            except ValueError as err:
                print(f"fig14 {service}/{method}: {err}")
        print()
        print(observer_cycle_tax(warehouse).render())
        shape = tree_shape_stats(warehouse)
        print()
        print(format_table(
            ("statistic", "value"),
            [("traces", f"{shape.n_traces:,}"),
             ("spans", f"{shape.n_spans:,}"),
             ("orphan spans", f"{shape.n_orphans:,}"),
             ("spans/trace p50", f"{shape.size_quantile(0.5):.0f}"),
             ("spans/trace p99", f"{shape.size_quantile(0.99):.0f}"),
             ("max depth p99", f"{shape.depth_quantile(0.99):.0f}")],
            title="call-tree shape (parent joins over the warehouse)",
        ))

    check_failed = False
    if args.self_check:
        if study is None:
            raise SystemExit("--self-check requires --generate")
        from repro.core.observer import validate_against_engine

        report = validate_against_engine(warehouse, study.dapper,
                                         gwp=study.gwp)
        print()
        print(report.render())
        document["self_check"] = report.to_dict()
        check_failed = not report.ok

    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(document, f, indent=2, sort_keys=True)
        print(f"\nwrote query results to {args.json}")

    rss_failed = _check_rss_budget(args.max_rss_mb)
    return 1 if check_failed else rss_failed


def _cmd_theory(args) -> int:
    import json

    from repro.theory.validate import run_validation

    # --sweep is the default (and currently only) action; accepting the
    # flag keeps the documented invocation stable if more modes appear.
    report = run_validation(grid=args.grid, seed=args.seed,
                            sweeps=args.sweeps)
    print(report.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(report.to_dict(), f, indent=2, sort_keys=True)
        print(f"\nwrote agreement report to {args.json}")
    return 0 if report.ok else 1


_COMMANDS = {
    "fleet-study": _cmd_fleet_study,
    "growth": _cmd_growth,
    "trees": _cmd_trees,
    "service-study": _cmd_service_study,
    "fleet-obs": _cmd_fleet_obs,
    "serve": _cmd_serve,
    "serve-loadgen": _cmd_serve_loadgen,
    "cross-cluster": _cmd_cross_cluster,
    "diurnal": _cmd_diurnal,
    "analyze-traces": _cmd_analyze_traces,
    "export-chrome": _cmd_export_chrome,
    "span-query": _cmd_span_query,
    "theory": _cmd_theory,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
