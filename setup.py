"""Legacy setup shim.

The project metadata lives in pyproject.toml; this file exists only so
that ``pip install -e .`` works in offline environments without the
``wheel`` package (pip falls back to ``setup.py develop``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'A Cloud-Scale Characterization of Remote "
        "Procedure Calls' (SOSP 2023)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    entry_points={"console_scripts": ["repro-rpc=repro.cli:main"]},
)
