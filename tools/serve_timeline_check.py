#!/usr/bin/env python
"""Check a serve-mode manifest's alert timeline against a golden.

CI's serve-smoke job runs the real server through an injected latency
regression, then replays the shutdown manifest's alert timeline against
the committed golden (``tests/golden/serve_alert_timeline.json``)::

    python tools/serve_timeline_check.py serve.manifest.json \
        tests/golden/serve_alert_timeline.json

Exits 0 when the timeline matches (and prints the normalized state
sequences), 1 with one problem per line otherwise.  The manifest is
digest-validated on load, so a tampered or truncated artifact also
fails here rather than passing vacuously.
"""

import argparse
import json
import sys

from repro.obs.manifest import ManifestError, read_manifest
from repro.serve.report import check_timeline, normalize_alert_timeline


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate a serve manifest's alert timeline "
                    "against a golden document.")
    parser.add_argument("manifest", help="serve-mode run manifest (JSON)")
    parser.add_argument("golden",
                        help="golden timeline document (JSON)")
    args = parser.parse_args(argv)

    try:
        manifest = read_manifest(args.manifest)
    except (OSError, ManifestError) as err:
        print(f"error: cannot load manifest: {err}", file=sys.stderr)
        return 1
    try:
        with open(args.golden, "r", encoding="utf-8") as f:
            golden = json.load(f)
    except (OSError, ValueError) as err:
        print(f"error: cannot load golden: {err}", file=sys.stderr)
        return 1

    if not manifest.alerts:
        print("error: manifest carries no alert events", file=sys.stderr)
        return 1
    problems = check_timeline(manifest.alerts, golden)
    if problems:
        for problem in problems:
            print(f"MISMATCH {problem}")
        return 1
    for key, states in sorted(
            normalize_alert_timeline(manifest.alerts).items()):
        print(f"ok {key}: {' -> '.join(states)}")
    print(f"timeline matches {args.golden}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
