"""Calibration report: measured-vs-paper for every Tier-A anchor.

Run: python tools/calibration_report.py [n_methods] [samples]
"""

import sys
import time

import numpy as np

from repro.core.fleetsample import run_fleet_study
from repro.workloads import calibration as cal
from repro.workloads.catalog import CatalogConfig, build_catalog


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    spm = int(sys.argv[2]) if len(sys.argv) > 2 else 250
    t0 = time.time()
    cat = build_catalog(CatalogConfig(n_methods=n, seed=7))
    fs = run_fleet_study(cat, np.random.default_rng(1), samples_per_method=spm)
    print(f"n={n} samples/method={spm} study={time.time()-t0:.1f}s  "
          f"fleet mean RCT {fs.fleet_mean_rct*1e3:.1f} ms")

    def row(label, measured, paper):
        print(f"  {label:<52s} {measured:>10.4g}   (paper {paper})")

    p = {q: np.array([m.pct("rct", q) for m in fs.methods]) for q in (1, 50, 99)}
    print("— Fig 10: fleet tax —")
    row("tax fraction", fs.tax_fraction(), cal.FLEET_AVG_TAX_FRACTION)
    fr = fs.tax_component_fractions()
    row("network fraction", fr["network_wire"], cal.FLEET_AVG_NETWORK_FRACTION)
    row("queueing fraction", fr["queueing"], cal.FLEET_AVG_QUEUE_FRACTION)
    row("proc+stack fraction", fr["proc_stack"], cal.FLEET_AVG_PROC_STACK_FRACTION)

    print("— Fig 2: per-method RCT —")
    row("frac methods P1<=657us", (p[1] <= 657e-6).mean(), 0.90)
    row("frac methods median>=10.7ms", (p[50] >= 10.7e-3).mean(), 0.90)
    row("frac methods P99>=1ms", (p[99] >= 1e-3).mean(), 0.995)
    row("median-method P99 (ms)", np.median(p[99]) * 1e3, 225)
    slow5 = np.argsort(p[50])[-max(len(fs.methods) // 20, 1):]
    row("slowest-5% min P1 (ms)", p[1][slow5].min() * 1e3, 166)
    row("slowest-5% min P99 (s)", p[99][slow5].min(), 5)

    print("— Fig 3: popularity —")
    pw = fs.popularity()
    order = np.argsort(p[50])
    k = max(1, round(len(pw) * 100 / 10000))
    row("fastest-1% call share", pw[order[:k]].sum(), 0.40)
    srt = np.sort(pw)[::-1]
    row("top-10 share", srt[:10].sum(), 0.58)
    row("top-100 share", srt[:min(100, len(srt))].sum(), 0.91)
    slowk = order[-round(len(pw) * 0.1):]
    tshare = pw * np.array([m.mean_rct for m in fs.methods])
    row("slowest-10% call share", pw[slowk].sum(), 0.011)
    row("slowest-10% time share", tshare[slowk].sum() / tshare.sum(), 0.89)

    print("— Fig 11: tax ratio —")
    tr = np.array([m.pct("tax_ratio", 50) for m in fs.methods])
    row("median-method median tax ratio", np.median(tr), 0.086)
    row("top-10%-methods median tax ratio", np.quantile(tr, 0.95), 0.38)

    print("— Fig 12: wire+stack per method —")
    ns99 = np.array([m.pct("netstack", 99) for m in fs.methods])
    for q, paper in ((0.01, 6), (0.10, 19), (0.50, 115), (0.90, 271), (0.99, 826)):
        row(f"netstack P99 @ method-q{q:.2f} (ms)", np.quantile(ns99, q) * 1e3, paper)

    print("— Fig 13: queueing per method —")
    qm = np.array([m.pct("queueing", 50) for m in fs.methods])
    q99 = np.array([m.pct("queueing", 99) for m in fs.methods])
    row("frac median<=360us", (qm <= 360e-6).mean(), 0.50)
    row("frac P99<=102ms", (q99 <= 102e-3).mean(), 0.50)
    row("worst-10% median queue (ms)", np.quantile(qm, 0.9) * 1e3, 1.1)
    row("worst-10% P99 queue (ms)", np.quantile(q99, 0.9) * 1e3, 611)

    print("— Fig 6/7: sizes —")
    rq = {q: np.array([m.pct("request_bytes", q) for m in fs.methods]) for q in (50, 90, 99)}
    rs = {q: np.array([m.pct("response_bytes", q) for m in fs.methods]) for q in (50, 90, 99)}
    row("frac req median<=1530B", (rq[50] <= 1530).mean(), 0.50)
    row("frac resp median<=315B", (rs[50] <= 315).mean(), 0.50)
    row("median-method req P90 (KB)", np.median(rq[90]) / 1e3, 11.8)
    row("median-method req P99 (KB)", np.median(rq[99]) / 1e3, 196)
    row("median-method resp P90 (KB)", np.median(rs[90]) / 1e3, 10)
    row("median-method resp P99 (KB)", np.median(rs[99]) / 1e3, 563)

    print("— Fig 20/21: cycles —")
    row("cycle tax fraction", fs.gwp.cycle_tax_fraction(), 0.071)
    for c, paper in (("compression", 0.031), ("networking", 0.017),
                     ("serialization", 0.012), ("rpc_library", 0.011)):
        row(f"  {c}", fs.gwp.tax_fractions_of_fleet()[c], paper)
    cy10 = np.array([m.pct("cycles", 10) for m in fs.methods])
    row("cycles P10 @ cheapest-10% methods", np.quantile(cy10, 0.10), 0.017)
    row("cycles P10 @ 90% methods", np.quantile(cy10, 0.90), 0.02)

    print("— Fig 8: services —")
    sh = fs.service_shares()
    nd = sh.get("NetworkDisk", {"calls": 0, "cycles": 0, "bytes": 0})
    row("NetworkDisk call share", nd["calls"], 0.35)
    row("NetworkDisk cycle share", nd["cycles"], "<0.02")
    top8 = sorted(sh.items(), key=lambda kv: -kv[1]["calls"])[:8]
    row("top-8 services call share", sum(v["calls"] for _, v in top8), 0.60)
    for svc, paper_cy, paper_ca in (("F1", 0.018, 0.018), ("MLInference", 0.0089, 0.0017)):
        s = sh.get(svc, {"calls": 0, "cycles": 0})
        row(f"{svc} cycles / calls", s["cycles"], paper_cy)
        row(f"{svc} calls", s["calls"], paper_ca)

    print("— Fig 23: errors —")
    tot = sum(fs.error_counts.values()) or 1.0
    totc = sum(fs.error_wasted_cycles.values()) or 1.0
    from repro.rpc.errors import StatusCode
    for st, paper_n, paper_c in ((StatusCode.CANCELLED, 0.45, 0.55),
                                 (StatusCode.NOT_FOUND, 0.20, 0.21)):
        row(f"{st.name} count share", fs.error_counts.get(st, 0) / tot, paper_n)
        row(f"{st.name} cycle share", fs.error_wasted_cycles.get(st, 0) / totc, paper_c)


if __name__ == "__main__":
    main()
