"""Wall-time and memory regression guard over the bench trajectory.

Run: python tools/bench_guard.py [--baseline OLD.json] --current NEW.json
     [--max-ratio 1.5] [--budget FIGURE=SECONDS ...]
     [--rss-budget FIGURE=MB ...] FIGURE [FIGURE ...]
     python tools/bench_guard.py --print-newest

Compares each named figure's ``wall_s`` in the current trajectory against
the committed baseline and exits non-zero if any exceeds
``baseline * max-ratio``. When ``--baseline`` is omitted, the newest
committed ``BENCH_PR<N>.json`` at the repo root (highest N) is used —
each PR freezes its own snapshot, so the newest one is the reference the
next PR measures against. ``--print-newest`` just prints that path (CI
uses it to copy the baseline aside before the bench session merge-writes
fresh times into the same file).

Times below ``--min-wall`` (default 0.05 s) are never flagged: at that
scale the ratio is runner jitter, not a regression.

``--budget FIGURE=SECONDS`` adds an *absolute* ceiling on top of the
relative check: some walls (the whole-repo lint pass) must stay cheap
enough to sit in the inner development loop, and a slow creep that
never trips the ratio in any single PR would still break that.  A
budgeted figure only needs to appear in the current trajectory, so new
walls can be budgeted in the same PR that introduces them.

``--rss-budget FIGURE=MB`` does the same for the figure's recorded
``peak_rss_mb`` stat (written by ``benchmarks/conftest.py`` for every
figure). This is what makes "out-of-core" falsifiable: the streaming
study's whole point is bounded memory, so its figure carries an RSS
ceiling and CI fails if a change silently re-materializes the forest.
Note ``ru_maxrss`` is a process-lifetime high-water mark — budget a
figure measured in its own process (CI runs the streaming bench
isolated) or the ceiling inherits every earlier figure's peak.
"""

import argparse
import glob
import json
import os
import re
import sys

_REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          os.pardir)


def newest_baseline(root: str = _REPO_ROOT) -> str:
    """The committed ``BENCH_PR<N>.json`` with the highest PR number."""
    candidates = []
    for path in glob.glob(os.path.join(root, "BENCH_PR*.json")):
        match = re.fullmatch(r"BENCH_PR(\d+)\.json", os.path.basename(path))
        if match:
            candidates.append((int(match.group(1)), path))
    if not candidates:
        raise FileNotFoundError(f"no BENCH_PR*.json found under {root}")
    return max(candidates)[1]


def load_trajectory(path: str) -> dict:
    """``figure -> wall_s`` from a trajectory file."""
    with open(path, "r", encoding="utf-8") as f:
        return {r["figure"]: float(r["wall_s"]) for r in json.load(f)}


def load_stat(path: str, stat: str) -> dict:
    """``figure -> stats[stat]`` for figures that recorded it."""
    with open(path, "r", encoding="utf-8") as f:
        records = json.load(f)
    return {r["figure"]: float(r["stats"][stat]) for r in records
            if stat in r.get("stats", {})}


def parse_budgets(specs, flag: str, parser) -> dict:
    """``FIGURE=NUMBER`` specs -> ``{figure: number}``; errors via parser."""
    budgets = {}
    for spec in specs:
        figure, sep, value = spec.partition("=")
        try:
            budgets[figure] = float(value) if sep else None
        except ValueError:
            budgets[figure] = None
        if not figure or budgets[figure] is None or budgets[figure] <= 0:
            parser.error(f"{flag} wants FIGURE=NUMBER, got {spec!r}")
    return budgets


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=None,
                        help="committed trajectory JSON (default: the "
                             "newest BENCH_PR*.json at the repo root)")
    parser.add_argument("--current",
                        help="freshly measured trajectory JSON")
    parser.add_argument("--max-ratio", type=float, default=1.5,
                        help="fail when current > baseline * ratio")
    parser.add_argument("--min-wall", type=float, default=0.05,
                        help="ignore figures faster than this (seconds)")
    parser.add_argument("--print-newest", action="store_true",
                        help="print the newest committed baseline path "
                             "and exit")
    parser.add_argument("--budget", action="append", default=[],
                        metavar="FIGURE=SECONDS",
                        help="absolute wall ceiling for a figure in the "
                             "current trajectory (repeatable)")
    parser.add_argument("--rss-budget", action="append", default=[],
                        metavar="FIGURE=MB",
                        help="absolute peak-RSS ceiling (MB) on a figure's "
                             "recorded peak_rss_mb stat (repeatable)")
    parser.add_argument("figures", nargs="*",
                        help="figure names to check (e.g. fig04_descendants)")
    args = parser.parse_args(argv)

    if args.print_newest:
        print(newest_baseline())
        return 0
    if not args.current or not (args.figures or args.budget
                                or args.rss_budget):
        parser.error("--current and at least one FIGURE, --budget, or "
                     "--rss-budget are required (or use --print-newest)")

    budgets = parse_budgets(args.budget, "--budget", parser)
    rss_budgets = parse_budgets(args.rss_budget, "--rss-budget", parser)

    baseline_path = args.baseline or newest_baseline()
    baseline = load_trajectory(baseline_path)
    current = load_trajectory(args.current)
    failures = []
    for figure in args.figures:
        if figure not in baseline:
            failures.append(f"{figure}: missing from baseline "
                            f"{baseline_path}")
            continue
        if figure not in current:
            failures.append(f"{figure}: missing from current {args.current} "
                            "(bench did not run?)")
            continue
        old_s, new_s = baseline[figure], current[figure]
        ratio = new_s / old_s if old_s > 0 else float("inf")
        verdict = "ok"
        if new_s > max(old_s * args.max_ratio, args.min_wall):
            failures.append(f"{figure}: {new_s:.3f}s vs baseline "
                            f"{old_s:.3f}s ({ratio:.2f}x > "
                            f"{args.max_ratio:.2f}x allowed)")
            verdict = "FAIL"
        print(f"{figure}: baseline {old_s:.3f}s, current {new_s:.3f}s "
              f"({ratio:.2f}x) {verdict}")

    for figure, budget_s in sorted(budgets.items()):
        if figure not in current:
            failures.append(f"{figure}: missing from current {args.current} "
                            "(bench did not run?)")
            continue
        new_s = current[figure]
        verdict = "ok"
        if new_s > budget_s:
            failures.append(f"{figure}: {new_s:.3f}s over its "
                            f"{budget_s:.3f}s budget")
            verdict = "FAIL"
        print(f"{figure}: budget {budget_s:.3f}s, current {new_s:.3f}s "
              f"{verdict}")

    if rss_budgets:
        current_rss = load_stat(args.current, "peak_rss_mb")
        for figure, budget_mb in sorted(rss_budgets.items()):
            if figure not in current_rss:
                failures.append(f"{figure}: no peak_rss_mb in current "
                                f"{args.current} (bench did not run?)")
                continue
            rss_mb = current_rss[figure]
            verdict = "ok"
            if rss_mb > budget_mb:
                failures.append(f"{figure}: peak RSS {rss_mb:.0f} MB over "
                                f"its {budget_mb:.0f} MB budget")
                verdict = "FAIL"
            print(f"{figure}: RSS budget {budget_mb:.0f} MB, current "
                  f"{rss_mb:.0f} MB {verdict}")

    if failures:
        print("\nbench regression guard failed:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    checked = len(args.figures) + len(budgets) + len(rss_budgets)
    print(f"\nall {checked} figure(s) within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
