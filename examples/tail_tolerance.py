#!/usr/bin/env python3
"""Scenario: taming a heavy-tailed service's P99 — hedging vs better LB.

F1-style services execute queries of wildly varying cost through one RPC
method (the paper's Fig. 14c shows a 10x P95/median). Two classic
mitigations are (a) hedged requests and (b) load-aware replica selection.
This script measures both on the same workload, including hedging's price
in wasted (cancelled) cycles — the effect behind Fig. 23.

Run:  python examples/tail_tolerance.py
"""

import numpy as np

from repro.core.report import fmt_seconds, format_table
from repro.fleet.topology import FleetSpec, build_fleet
from repro.net.latency import NetworkModel
from repro.obs.dapper import DapperCollector
from repro.rpc.errors import StatusCode
from repro.rpc.hedging import NO_HEDGING, HedgingPolicy
from repro.rpc.loadbalancer import LeastLoadedPolicy, RandomPolicy
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.workloads.drivers import (
    DeploymentConfig,
    OpenLoopDriver,
    ServiceDeployment,
)
from repro.workloads.services import SERVICE_SPECS


def run(policy, hedging, seed=99, duration_s=3.0):
    sim = Simulator()
    fleet = build_fleet(FleetSpec(), seed=seed)
    dapper = DapperCollector(sampling_rate=1.0)
    dep = ServiceDeployment(
        sim, SERVICE_SPECS["F1"], fleet.clusters[:1], NetworkModel(),
        dapper=dapper, rngs=RngRegistry(seed),
        config=DeploymentConfig(server_machines_per_cluster=4,
                                hedging=hedging),
    )
    driver = OpenLoopDriver(dep, fleet.clusters[0], policy=policy)
    driver.start(duration_s)
    sim.run_until(duration_s + 25.0)
    ok = np.array([s.completion_time for s in dapper.ok_spans()])
    cancelled = sum(s.status is StatusCode.CANCELLED for s in dapper.spans)
    return {
        "p50": float(np.percentile(ok, 50)),
        "p95": float(np.percentile(ok, 95)),
        "p99": float(np.percentile(ok, 99)),
        "extra_work": cancelled / max(len(dapper.spans), 1),
    }


def main() -> None:
    # Deliberately aggressive (fires around P85-P90): aggressive hedging
    # under blind load balancing backfires — one of this script's lessons.
    hedge = HedgingPolicy.from_percentile_estimate(
        p95_latency_s=8 * SERVICE_SPECS["F1"].app_median_s
    )
    configs = {
        "random LB, no hedging": (RandomPolicy(), NO_HEDGING),
        "least-loaded LB": (LeastLoadedPolicy(d=2), NO_HEDGING),
        "random LB + hedging": (RandomPolicy(), hedge),
        "least-loaded + hedging": (LeastLoadedPolicy(d=2), hedge),
    }
    print("Simulating an F1-style service under four tail strategies ...")
    rows = []
    for name, (policy, hedging) in configs.items():
        r = run(policy, hedging)
        rows.append((name, fmt_seconds(r["p50"]), fmt_seconds(r["p95"]),
                     fmt_seconds(r["p99"]), f"{r['extra_work']:.1%}"))
    print(format_table(
        ("strategy", "P50", "P95", "P99", "cancelled work"),
        rows, title="Tail tolerance for a heavy-tailed RPC method",
    ))
    print(
        "\nTwo lessons: (1) hedging pays for its tail wins in duplicated"
        "\nwork — the paper measures cancellations at 45% of errors and 55%"
        "\nof error-wasted cycles, mostly from this pattern; (2) aggressive"
        "\nhedging with *blind* load balancing can backfire outright — the"
        "\nduplicated load inflates the very queues that caused the tail."
    )


if __name__ == "__main__":
    main()
