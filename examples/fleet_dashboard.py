#!/usr/bin/env python3
"""Scenario: the SRE console view of a running service.

Runs a short Bigtable study across two clusters, then renders what an
operator would watch: a run heartbeat (events/s, sim-time rate, RPCs
completed — fed by a probe on the engine), Monarch sparklines of each
machine's exogenous state and the service's own CPU usage — the raw
feeds behind Figs. 17, 18 and 22 — plus the service's live latency
summary from Dapper.

Run:  python examples/fleet_dashboard.py
"""

import time

import numpy as np

from repro.core.report import fmt_seconds, format_table
from repro.obs.dashboard import render_heartbeat, render_panel, render_series
from repro.obs.telemetry import HeartbeatProbe
from repro.studies import run_service_study


def main() -> None:
    print("Running Bigtable on two clusters (3 s, scraping every 0.25 s) ...\n")
    heartbeat = HeartbeatProbe(wall_clock=time.perf_counter)
    study = run_service_study(services=["Bigtable"], n_clusters=2,
                              duration_s=3.0, seed=19,
                              scrape_interval_s=0.25, dapper_sampling=1.0,
                              probe=heartbeat)
    print(render_heartbeat(heartbeat.snapshot(), "Bigtable x2 clusters"))
    print()

    for metric in ("machine/cpu_util", "machine/cycles_per_inst",
                   "server/rpc_util"):
        print(render_panel(study.monarch, metric, {"service": "Bigtable"},
                           group_label="machine", width=36, max_rows=8))
        print()

    spans = study.dapper.spans_for_method("Bigtable", "SearchValue")
    lat = np.array([s.completion_time for s in spans])
    by_cluster = {}
    for s in spans:
        by_cluster.setdefault(s.server_cluster, []).append(s.completion_time)
    rows = [("fleet", len(spans), fmt_seconds(float(np.median(lat))),
             fmt_seconds(float(np.percentile(lat, 99))))]
    for cluster, vals in sorted(by_cluster.items()):
        arr = np.array(vals)
        rows.append((cluster, len(arr), fmt_seconds(float(np.median(arr))),
                     fmt_seconds(float(np.percentile(arr, 99)))))
    print(format_table(("scope", "RPCs", "P50", "P99"), rows,
                       title="Bigtable latency (from Dapper)"))
    print("\nThese are the exact feeds the Fig. 17/18/22 analyses consume.")


if __name__ == "__main__":
    main()
