#!/usr/bin/env python3
"""Scenario: the SRE console during a latency regression.

Runs Bigtable on two clusters for 6 simulated seconds with a declarative
SLO attached ("99% of SearchValue calls within 5 ms"). Halfway through,
every Bigtable server's handler service time is doubled — a bad rollout.
The observability control plane reacts on its own:

- the Monarch scraper exports per-interval latency *sketches* (with tail
  exemplar trace ids) every 0.25 s;
- the alert manager evaluates multi-window burn rates and walks
  pending → firing → resolved, deterministically on the sim clock;
- the incident report links the firing alerts to the exact Dapper trace
  ids behind the worst latencies, whose span trees show the inflated
  server-application component.

The run is fully deterministic: the same seed produces a byte-identical
incident report (the heartbeat panel, which reads the host clock, is
printed separately and never enters the report).

Run:  python examples/fleet_dashboard.py
"""

import time

import numpy as np

from repro.core.report import fmt_seconds, format_table
from repro.obs.alerting import SloSpec
from repro.obs.dashboard import (
    render_heartbeat,
    render_incident_report,
    render_panel,
)
from repro.obs.telemetry import HeartbeatProbe
from repro.studies import run_service_study

SEED = 19
DURATION_S = 6.0
REGRESSION_AT_S = 3.0
REGRESSION_SCALE = 2.0
SCRAPE_INTERVAL_S = 0.25


def build_slo() -> SloSpec:
    """The service SLO: 99% of SearchValue calls within 5 ms.

    5 ms sits at the healthy run's p99, so the error budget burns at
    ~1x before the regression; the doubled handler time saturates the
    servers and pushes the bad fraction towards 100%, blowing through
    the 14.4x page rule within two evaluation intervals.
    """
    return SloSpec(
        name="bigtable-search-latency",
        threshold_s=0.005,
        window_s=720.0,
        target=0.99,
        labels={"method": "Bigtable/SearchValue"},
    )


def inject_regression(sim, deployments) -> None:
    """At REGRESSION_AT_S, double every Bigtable server's handler time."""
    servers = [
        server
        for cluster_servers in
        deployments["Bigtable"].servers_by_cluster.values()
        for server in cluster_servers
    ]

    def degrade() -> None:
        for server in servers:
            server.app_scale *= REGRESSION_SCALE

    sim.at(REGRESSION_AT_S, degrade)


def run_incident(seed: int = SEED, probe=None):
    """Run the incident scenario; returns (study, incident_report)."""
    study = run_service_study(
        services=["Bigtable"], n_clusters=2, duration_s=DURATION_S,
        seed=seed, scrape_interval_s=SCRAPE_INTERVAL_S, dapper_sampling=1.0,
        probe=probe, slos=[build_slo()], on_setup=inject_regression,
    )
    report = render_incident_report(
        study.alerts.events, study.monarch, traces=study.dapper.traces(),
        title="incident report: Bigtable bad rollout",
    )
    return study, report


def main() -> None:
    print(f"Running Bigtable on two clusters ({DURATION_S:g} s, scraping "
          f"every {SCRAPE_INTERVAL_S:g} s);")
    print(f"at t={REGRESSION_AT_S:g} s every server's handler time doubles "
          f"(a bad rollout) ...\n")
    heartbeat = HeartbeatProbe(wall_clock=time.perf_counter)
    study, report = run_incident(probe=heartbeat)

    print(render_heartbeat(heartbeat.snapshot(), "Bigtable x2 clusters"))
    print()
    print(report)
    print()

    for metric in ("machine/cpu_util", "server/rpc_util"):
        print(render_panel(study.monarch, metric, {"service": "Bigtable"},
                           group_label="machine", width=36, max_rows=8))
        print()

    # The ground truth behind the alert: Dapper latency before vs after.
    spans = study.dapper.spans_for_method("Bigtable", "SearchValue")
    rows = []
    for scope, sel in (("before rollout",
                        lambda s: s.start_time < REGRESSION_AT_S),
                       ("after rollout",
                        lambda s: s.start_time >= REGRESSION_AT_S)):
        lat = np.array([s.breakdown.total() for s in spans if sel(s)])
        rows.append((scope, len(lat), fmt_seconds(float(np.median(lat))),
                     fmt_seconds(float(np.percentile(lat, 99)))))
    print(format_table(("scope", "RPCs", "P50", "P99"), rows,
                       title="Bigtable latency (from Dapper)"))
    print("\nThe exemplar trace ids above can be exported for Perfetto via")
    print("  repro-rpc export-chrome TRACES OUT.json --trace-ids ID [ID ...]")


if __name__ == "__main__":
    main()
