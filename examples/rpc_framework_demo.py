#!/usr/bin/env python3
"""Scenario: a working key-value service on the real RPC framework.

Everything here is live code, not simulation: requests are marshalled
through the protobuf-style wire codec, compressed with LZSS, encrypted
with ChaCha20, dispatched through the server's interceptor chain, and
traced into a Dapper collector whose spans feed the same analyses used
for the paper's figures.

Run:  python examples/rpc_framework_demo.py
"""

import time

from repro.core.report import format_table
from repro.obs.dapper import DapperCollector, Span
from repro.rpc.errors import RpcError, StatusCode
from repro.rpc.framework import Channel, LoopbackTransport, RpcServer, ServiceDef
from repro.rpc.stack import LatencyBreakdown
from repro.rpc.wire import FieldSpec, FieldType, MessageSchema

# ----------------------------------------------------------------------
# Schemas (what a .proto file would generate)
# ----------------------------------------------------------------------
GET_REQ = MessageSchema("GetRequest", [
    FieldSpec(1, "key", FieldType.STRING),
])
GET_RESP = MessageSchema("GetResponse", [
    FieldSpec(1, "value", FieldType.BYTES),
    FieldSpec(2, "version", FieldType.UINT64),
])
PUT_REQ = MessageSchema("PutRequest", [
    FieldSpec(1, "key", FieldType.STRING),
    FieldSpec(2, "value", FieldType.BYTES),
])
PUT_RESP = MessageSchema("PutResponse", [
    FieldSpec(1, "version", FieldType.UINT64),
])
SCAN_REQ = MessageSchema("ScanRequest", [
    FieldSpec(1, "prefix", FieldType.STRING),
    FieldSpec(2, "limit", FieldType.INT64),
])
SCAN_RESP = MessageSchema("ScanResponse", [
    FieldSpec(1, "keys", FieldType.STRING, repeated=True),
])


def build_service():
    """A KV store with versioned puts, gets, and prefix scans."""
    store = {}
    versions = {}
    svc = ServiceDef("KVStore")

    @svc.method("Put", PUT_REQ, PUT_RESP)
    def put(request):
        key = request["key"]
        store[key] = request["value"]
        versions[key] = versions.get(key, 0) + 1
        return {"version": versions[key]}

    @svc.method("Get", GET_REQ, GET_RESP)
    def get(request):
        key = request["key"]
        if key not in store:
            raise RpcError(StatusCode.NOT_FOUND, f"key {key!r} not found")
        return {"value": store[key], "version": versions[key]}

    @svc.method("Scan", SCAN_REQ, SCAN_RESP)
    def scan(request):
        prefix = request.get("prefix", "")
        limit = request.get("limit", 100)
        keys = sorted(k for k in store if k.startswith(prefix))[:limit]
        return {"keys": keys}

    return svc


def main() -> None:
    key, nonce = bytes(range(32)), bytes(12)
    server = RpcServer(key=key, nonce=nonce)
    server.register(build_service())
    channel = Channel(LoopbackTransport(server), key=key, nonce=nonce)

    # A tracing interceptor: every real call becomes a Dapper span.
    dapper = DapperCollector(sampling_rate=1.0)
    timings = {}

    def trace_start(info, request):
        timings[info.span_id] = time.perf_counter()

    channel.add_interceptor(trace_start)

    def traced_call(method, request, req_schema, resp_schema):
        t0 = time.perf_counter()
        try:
            reply = channel.call("KVStore", method, request,
                                 req_schema, resp_schema)
            status = StatusCode.OK
        except RpcError as err:
            reply, status = None, err.status
        elapsed = time.perf_counter() - t0
        dapper.record(Span(
            trace_id=channel.calls_made, span_id=channel.calls_made,
            parent_id=None, service="KVStore", method=method,
            client_cluster="local", server_cluster="local",
            server_machine="loopback", start_time=t0,
            breakdown=LatencyBreakdown(server_application=elapsed),
            status=status,
        ))
        return reply

    print("Writing 500 versioned records through the encrypted channel ...")
    for i in range(500):
        traced_call("Put", {"key": f"user:{i:04d}",
                            "value": f"profile-data-{i}".encode() * 10},
                    PUT_REQ, PUT_RESP)
    print("Reading them back, plus a scan and a miss ...")
    for i in range(0, 500, 7):
        reply = traced_call("Get", {"key": f"user:{i:04d}"},
                            GET_REQ, GET_RESP)
        assert reply["version"] == 1
    scan = traced_call("Scan", {"prefix": "user:000", "limit": 20},
                       SCAN_REQ, SCAN_RESP)
    missing = traced_call("Get", {"key": "ghost"}, GET_REQ, GET_RESP)
    assert missing is None

    ok = dapper.ok_spans()
    errors = [s for s in dapper.spans if not s.ok]
    lat = sorted(s.completion_time for s in ok)
    print(format_table(
        ("metric", "value"),
        [
            ("calls made", channel.calls_made),
            ("server handled", server.calls_served),
            ("bytes on the wire", channel.transport.bytes_sent
             + channel.transport.bytes_received),
            ("scan returned", len(scan["keys"])),
            ("errors (expected 1 NOT_FOUND)",
             f"{len(errors)} ({errors[0].status.name})"),
            ("median call latency", f"{lat[len(lat)//2]*1e6:.0f}us"),
            ("P99 call latency", f"{lat[int(len(lat)*0.99)]*1e6:.0f}us"),
        ],
        title="KVStore over the real RPC stack",
    ))
    print("\nThe same Dapper spans these calls produced feed the paper's "
          "analyses;\nsee examples/storage_service_study.py for the "
          "simulated fleet version.")


if __name__ == "__main__":
    main()
