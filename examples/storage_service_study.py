#!/usr/bin/env python3
"""Scenario: diagnose where a storage service's tail latency comes from.

This is the paper's §3.3 methodology applied end to end: run three
production-profile services (one per bottleneck category) on a simulated
cluster, collect Dapper traces, and answer two operator questions:

 1. Which component of the RPC anatomy dominates each service's latency
    (Fig. 14)?
 2. If I could fix exactly one component, how many of my P95-tail RPCs
    would stop being tail RPCs (Fig. 15's what-if analysis)?

Run:  python examples/storage_service_study.py
"""

from repro.core.breakdown import breakdown_cdf_for_service
from repro.core.report import fmt_seconds, format_table
from repro.core.whatif import what_if_for_service
from repro.studies import run_service_study
from repro.workloads.services import SERVICE_SPECS


def main() -> None:
    services = ["Bigtable", "SSDCache", "KVStore"]
    print(f"Simulating {services} on one cluster (3 s of traffic) ...")
    study = run_service_study(services=services, n_clusters=1,
                              duration_s=3.0, seed=11, dapper_sampling=1.0)
    print(f"  {len(study.dapper):,} spans collected\n")

    rows = []
    for name in services:
        method = SERVICE_SPECS[name].method
        cdf = breakdown_cdf_for_service(study.dapper, name, method)
        rows.append((
            name,
            fmt_seconds(cdf.total_at(50)),
            fmt_seconds(cdf.total_at(95)),
            cdf.dominant_at(50),
            f"{cdf.dominant_share_at(50):.0%}",
            f"{cdf.p95_over_median():.1f}x",
        ))
    print(format_table(
        ("service", "P50", "P95", "dominant component", "share", "P95/P50"),
        rows, title="Fig. 14 — where does the time go?",
    ))
    print()

    for name in services:
        method = SERVICE_SPECS[name].method
        whatif = what_if_for_service(study.dapper, name, method)
        best = whatif.dominant()
        print(f"{name}: fixing '{best}' would rescue "
              f"{whatif.percent_rescued[best]:.0f}% of P95-tail RPCs "
              f"(what-if, Fig. 15)")
    print("\nAs in the paper: the right optimization is service-specific —"
          "\napplication time for storage reads, queueing for overloaded"
          "\ncaches, and the RPC stack for tiny-payload in-memory lookups.")


if __name__ == "__main__":
    main()
