#!/usr/bin/env python3
"""Scenario: tracing a nested three-tier application end to end.

A front end fans out to Bigtable and KV-Store; Bigtable fans out to
Network Disk — the paper's archetypal flow. Every nested call is a real
simulated RPC linked into its parent's Dapper trace, so this script can:

 1. show that trace trees are wider than deep (Figs. 4-5 causally, not
    just statistically),
 2. verify the paper's §2.1 accounting rule — a parent's application time
    contains its children's completion times,
 3. persist the traces with the Dapper storage format and re-analyze them
    offline (the `repro-rpc analyze-traces` workflow),
 4. with ``--telemetry-dir DIR``, export the run as a Perfetto-loadable
    Chrome trace plus a run manifest, and round-trip both through their
    readers/validators (the CI telemetry-artifacts job runs this).

Run:  python examples/three_tier_traces.py [--telemetry-dir DIR]
"""

import argparse
import json
import os
import tempfile
import time

import numpy as np

from repro.core.report import fmt_seconds, format_table
from repro.obs.trace_io import load_collector, write_traces
from repro.studies import run_multitier_study

SEED = 41


def trace_depth(spans):
    by_id = {s.span_id: s for s in spans}
    best = 0
    for s in spans:
        d, node = 0, s
        while node.parent_id is not None:
            node = by_id[node.parent_id]
            d += 1
        best = max(best, d)
    return best


def export_telemetry(study, builder, trace_probe, out_dir: str) -> None:
    """Write + round-trip the Chrome trace and run manifest into ``out_dir``."""
    from repro.obs.chrometrace import (span_trace_events, validate_trace_events,
                                       write_chrome_trace)
    from repro.obs.manifest import read_manifest, write_manifest

    os.makedirs(out_dir, exist_ok=True)
    chrome_path = os.path.join(out_dir, "three_tier.chrome.json")
    manifest_path = os.path.join(out_dir, "three_tier.manifest.json")

    with builder.phase("export-chrome", telemetry=True):
        n_events = write_chrome_trace(chrome_path,
                                      trace_probe.trace_events(),
                                      span_trace_events(study.dapper.spans))
    builder.observe_sim(study.sim)
    builder.add_counts(spans_recorded=len(study.dapper.spans),
                       traces_recorded=len(study.dapper.traces()))
    write_manifest(builder.finish(), manifest_path)

    # Round-trip both artifacts: what CI uploads must be loadable.
    with open(chrome_path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    validate_trace_events(doc["traceEvents"])
    manifest = read_manifest(manifest_path)
    assert manifest.seed == SEED
    assert manifest.counts["spans_recorded"] == len(study.dapper.spans)
    print(f"\ntelemetry: {n_events:,} trace events -> {chrome_path}")
    print(f"telemetry: run manifest -> {manifest_path} "
          f"(events_fired={manifest.counts['events_fired']:,}, "
          f"peak_heap={manifest.peak_heap:,})")
    print("both artifacts round-tripped through their validators.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--telemetry-dir", default=None,
                        help="export Chrome trace + run manifest here")
    args = parser.parse_args()

    trace_probe = None
    builder = None
    if args.telemetry_dir:
        from repro.obs.manifest import ManifestBuilder
        from repro.obs.telemetry import TraceEventProbe

        trace_probe = TraceEventProbe()
        builder = ManifestBuilder("three-tier", seed=SEED,
                                  wall_clock=time.perf_counter)
        builder.set_config(duration_s=2.0, frontend_rps=150.0)

    print("Simulating the three-tier application (2 s of user traffic) ...")
    if builder is not None:
        with builder.phase("simulate"):
            study = run_multitier_study(duration_s=2.0, seed=SEED,
                                        frontend_rps=150.0, probe=trace_probe)
    else:
        study = run_multitier_study(duration_s=2.0, seed=SEED,
                                    frontend_rps=150.0)
    traces = study.dapper.traces()
    sizes = np.array([len(v) for v in traces.values()])
    depths = np.array([trace_depth(v) for v in traces.values()])

    fe = [s for s in study.dapper.spans if s.service == "Frontend"]
    disk = [s for s in study.dapper.spans if s.service == "NetworkDisk"]
    rows = [
        ("traces collected", str(len(traces)), ""),
        ("median spans per trace", f"{np.median(sizes):.0f}",
         "wider than deep (Fig. 4)"),
        ("P99 spans per trace", f"{np.percentile(sizes, 99):.0f}", ""),
        ("median tree depth", f"{np.median(depths):.0f}",
         "shallow (Fig. 5)"),
        ("frontend median latency",
         fmt_seconds(float(np.median([s.completion_time for s in fe]))),
         "includes child waits (§2.1)"),
        ("network-disk median latency",
         fmt_seconds(float(np.median([s.completion_time for s in disk]))),
         "the leaf"),
    ]
    print(format_table(("metric", "value", "note"), rows,
                       title="nested trace anatomy"))

    path = os.path.join(tempfile.gettempdir(), "three_tier.dtrc")
    n = write_traces(study.dapper.spans, path)
    reloaded = load_collector(path)
    print(f"\npersisted {n:,} spans to {path} and reloaded "
          f"{len(reloaded):,} — byte-exact Dapper storage roundtrip.")
    print("try:  repro-rpc analyze-traces " + path)

    if args.telemetry_dir:
        export_telemetry(study, builder, trace_probe, args.telemetry_dir)


if __name__ == "__main__":
    main()
