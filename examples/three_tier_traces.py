#!/usr/bin/env python3
"""Scenario: tracing a nested three-tier application end to end.

A front end fans out to Bigtable and KV-Store; Bigtable fans out to
Network Disk — the paper's archetypal flow. Every nested call is a real
simulated RPC linked into its parent's Dapper trace, so this script can:

 1. show that trace trees are wider than deep (Figs. 4-5 causally, not
    just statistically),
 2. verify the paper's §2.1 accounting rule — a parent's application time
    contains its children's completion times,
 3. persist the traces with the Dapper storage format and re-analyze them
    offline (the `repro-rpc analyze-traces` workflow).

Run:  python examples/three_tier_traces.py
"""

import os
import tempfile

import numpy as np

from repro.core.report import fmt_seconds, format_table
from repro.obs.trace_io import load_collector, write_traces
from repro.studies import run_multitier_study


def trace_depth(spans):
    by_id = {s.span_id: s for s in spans}
    best = 0
    for s in spans:
        d, node = 0, s
        while node.parent_id is not None:
            node = by_id[node.parent_id]
            d += 1
        best = max(best, d)
    return best


def main() -> None:
    print("Simulating the three-tier application (2 s of user traffic) ...")
    study = run_multitier_study(duration_s=2.0, frontend_rps=150.0)
    traces = study.dapper.traces()
    sizes = np.array([len(v) for v in traces.values()])
    depths = np.array([trace_depth(v) for v in traces.values()])

    fe = [s for s in study.dapper.spans if s.service == "Frontend"]
    disk = [s for s in study.dapper.spans if s.service == "NetworkDisk"]
    rows = [
        ("traces collected", str(len(traces)), ""),
        ("median spans per trace", f"{np.median(sizes):.0f}",
         "wider than deep (Fig. 4)"),
        ("P99 spans per trace", f"{np.percentile(sizes, 99):.0f}", ""),
        ("median tree depth", f"{np.median(depths):.0f}",
         "shallow (Fig. 5)"),
        ("frontend median latency",
         fmt_seconds(float(np.median([s.completion_time for s in fe]))),
         "includes child waits (§2.1)"),
        ("network-disk median latency",
         fmt_seconds(float(np.median([s.completion_time for s in disk]))),
         "the leaf"),
    ]
    print(format_table(("metric", "value", "note"), rows,
                       title="nested trace anatomy"))

    path = os.path.join(tempfile.gettempdir(), "three_tier.dtrc")
    n = write_traces(study.dapper.spans, path)
    reloaded = load_collector(path)
    print(f"\npersisted {n:,} spans to {path} and reloaded "
          f"{len(reloaded):,} — byte-exact Dapper storage roundtrip.")
    print("try:  repro-rpc analyze-traces " + path)


if __name__ == "__main__":
    main()
