#!/usr/bin/env python3
"""Scenario: the serve-mode incident loop, end to end, in one process.

Boots the real serve-mode server (repro.serve) on an ephemeral port with
a latency regression scheduled to start 3 s after boot, then drives it
with the open+closed-loop load generator while the observability stack —
the same Monarch scraper, burn-rate alert manager, and adaptive trace
sampler every study runs on simulated time — watches the live traffic on
the wall clock:

1. prewarmed cache-hot traffic serves in single-digit milliseconds;
2. the injected regression pushes p99 past the 50 ms SLO threshold;
3. the page rule fires, carrying exemplar Dapper trace ids;
4. admission control sheds work endpoints (503 + Retry-After) while the
   burn persists — closed-loop users back off, the burn window drains;
5. the alert resolves, shedding recovers, and the shutdown manifest's
   alert timeline validates against the committed golden
   (tests/golden/serve_alert_timeline.json).

Stages are narrated as they happen; the incident report and the live
dashboard are printed at the end. Wall-clock runs jitter, so exact
timestamps differ run to run — the *transition structure* is what the
golden pins, which is exactly what CI's serve-smoke job asserts.

Run:  python examples/serve_dogfood.py          (~15 s, local sockets only)
"""

import asyncio
import json
import os
import tempfile

from repro.obs.dashboard import render_incident_report
from repro.obs.manifest import config_digest, read_manifest, write_manifest
from repro.serve.app import ServeApp, ServeConfig
from repro.serve.loadgen import LoadGenConfig, run_loadgen
from repro.serve.report import check_timeline, render_serve_dashboard

SEED = 7
SCRAPE_INTERVAL_S = 0.2
SLOWDOWN_AFTER_S = 3.0
SLOWDOWN_EXTRA_S = 0.15
SLOWDOWN_DURATION_S = 2.5
LOAD_DURATION_S = 8.0
GOLDEN_PATH = "tests/golden/serve_alert_timeline.json"


async def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serve-dogfood-") as cache_dir:
        app = ServeApp(ServeConfig(
            port=0, seed=SEED, cache_dir=cache_dir,
            scrape_interval_s=SCRAPE_INTERVAL_S,
            whatif_duration_s=1.0,
            slowdown_after_s=SLOWDOWN_AFTER_S,
            slowdown_extra_s=SLOWDOWN_EXTRA_S,
            slowdown_duration_s=SLOWDOWN_DURATION_S))
        print("== stage 1: prewarming the study cache (pre-bind, so the "
              "first request is already cache-hot)")
        await app.start()
        address = app.listen_address
        print(f"   serving on {address}; regression scheduled "
              f"at t={SLOWDOWN_AFTER_S:g}s (+{SLOWDOWN_EXTRA_S * 1e3:g}ms "
              f"per work request for {SLOWDOWN_DURATION_S:g}s)")

        print(f"== stage 2: {LOAD_DURATION_S:g}s of Zipf + diurnal load "
              f"(open loop 60 rps + 3 closed-loop users)")
        loadgen = await run_loadgen("127.0.0.1", app.port, LoadGenConfig(
            duration_s=LOAD_DURATION_S, rate=60.0, users=3, seed=SEED))
        print(loadgen.render())

        print("== stage 3: waiting for the burn to drain (alerts resolve, "
              "admission recovers)")
        quiet = await app.wait_for_quiet(timeout_s=20.0)
        print(f"   quiet={quiet}  shed={app.admission.shed_total}  "
              f"transitions={app.admission.transitions}")
        await app.stop()

        print()
        print(render_serve_dashboard(app.heartbeat_snapshot(), app.monarch,
                                     app.alerts, app.admission,
                                     title=f"serve {address}"))
        print()
        print(render_incident_report(app.alert_timeline(), app.monarch,
                                     traces=app.dapper.traces(),
                                     title="serve incident report"))

        print()
        print("== stage 4: manifest round-trip + golden timeline check")
        manifest_path = os.path.join(cache_dir, "serve.manifest.json")
        write_manifest(app.build_manifest("serve-dogfood"), manifest_path)
        manifest = read_manifest(manifest_path)  # digest-validated
        print(f"   manifest: {manifest.counts['requests_total']} requests, "
              f"{manifest.counts['shed_total']} shed, "
              f"{manifest.counts['alert_events']} alert events "
              f"(config digest {config_digest(manifest.config)[:12]}...)")
        with open(GOLDEN_PATH, encoding="utf-8") as f:
            golden = json.load(f)
        problems = check_timeline(manifest.alerts, golden)
        for problem in problems:
            print(f"   MISMATCH {problem}")
        overhead = app.obs_overhead_fraction()
        print(f"   golden={'ok' if not problems else 'MISMATCH'}  "
              f"obs self-overhead {overhead * 100:.2f}% of uptime "
              f"(bound: 5%)")
        return 1 if problems or overhead >= 0.05 else 0


if __name__ == "__main__":
    raise SystemExit(asyncio.run(main()))
