#!/usr/bin/env python3
"""Scenario: how far away can my clients be? (Fig. 19)

A Spanner-style service runs in one home cluster; clients call it from
clusters across the globe. This script reproduces the paper's Fig. 19
staircase — latency is flat inside a datacenter/country, then the wire
component takes over — and verifies the §3.3.5 cross-check: median WAN
latency closely matches speed-of-light propagation, so moving the *data*,
not fixing the network, is the available optimization.

Run:  python examples/cross_continent_latency.py
"""

from repro.core.crosscluster import analyze_cross_cluster
from repro.core.report import fmt_seconds, format_table
from repro.studies import run_cross_cluster_study


def main() -> None:
    print("Simulating Spanner in one home cluster, clients in 16 clusters "
          "across the globe ...")
    study = run_cross_cluster_study(service="Spanner", n_client_clusters=16,
                                    duration_s=15.0,
                                    calls_per_cluster_rps=30.0)
    home = study.fleet.clusters[0].name
    result = analyze_cross_cluster(
        study.dapper, "Spanner", "ReadRows", study.network,
        study.clusters_by_name(), home, min_spans=20,
    )

    rows = []
    ratios = result.median_wire_vs_propagation()
    for name, pc, total, wf, ratio in zip(
        result.client_clusters, result.path_classes, result.totals(),
        result.wire_fraction, ratios,
    ):
        rows.append((
            name, pc.value, fmt_seconds(total), f"{wf:.0%}",
            "-" if ratio != ratio else f"{ratio:.2f}",
        ))
    print(format_table(
        ("client cluster", "path class", "median RCT", "wire share",
         "wire/propagation"),
        rows, title=f"Fig. 19 — calling {home} from around the world",
    ))
    print(
        "\nTakeaway (matches §3.3.5): wire share grows from near zero to"
        "\ndominant with distance, and the median WAN wire time is within a"
        "\nfew tens of percent of pure propagation — the speed of light,"
        "\nnot congestion, is the bill. Optimize data locality, not TCP."
    )


if __name__ == "__main__":
    main()
