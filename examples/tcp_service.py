#!/usr/bin/env python3
"""Scenario: the RPC framework over real TCP sockets with generated stubs.

Starts a server on localhost, generates a typed client stub (the
``protoc`` role), and drives it over an actual socket — same frames as
the in-process demo, now crossing the kernel's network stack.

Run:  python examples/tcp_service.py
"""

import time

from repro.core.report import format_table
from repro.rpc.errors import RpcError, StatusCode
from repro.rpc.framework import Channel, RpcServer, ServiceDef
from repro.rpc.stubgen import generate_stub_source, make_stub
from repro.rpc.transport import TcpRpcServer, TcpTransport
from repro.rpc.wire import FieldSpec, FieldType, MessageSchema

SEARCH_REQ = MessageSchema("SearchRequest", [
    FieldSpec(1, "query", FieldType.STRING),
    FieldSpec(2, "limit", FieldType.INT64),
])
SEARCH_RESP = MessageSchema("SearchResponse", [
    FieldSpec(1, "results", FieldType.STRING, repeated=True),
    FieldSpec(2, "total", FieldType.INT64),
])

CORPUS = [f"document-{i:04d} about topic-{i % 13}" for i in range(500)]


def build_service() -> ServiceDef:
    svc = ServiceDef("Search")

    @svc.method("Query", SEARCH_REQ, SEARCH_RESP)
    def query(request):
        q = request.get("query", "")
        if not q:
            raise RpcError(StatusCode.INVALID_ARGUMENT, "empty query")
        hits = [d for d in CORPUS if q in d]
        return {"results": hits[: request.get("limit", 10)],
                "total": len(hits)}

    return svc


def main() -> None:
    rpc = RpcServer()
    rpc.register(build_service())
    with TcpRpcServer(rpc) as server:
        host, port = server.address
        print(f"Search service listening on {host}:{port}\n")

        print("Generated stub source (protoc role), first lines:")
        for line in generate_stub_source(build_service()).splitlines()[:8]:
            print("  " + line)
        print()

        with TcpTransport(host, port) as transport:
            stub = make_stub(Channel(transport), build_service())
            t0 = time.perf_counter()
            n_calls = 200
            for i in range(n_calls):
                stub.query({"query": f"topic-{i % 13}", "limit": 5})
            elapsed = time.perf_counter() - t0

            sample = stub.query({"query": "topic-7", "limit": 3})
            try:
                stub.query({"query": ""})
            except RpcError as err:
                bad = err.status.name

            print(format_table(("metric", "value"), [
                ("calls over TCP", n_calls),
                ("mean round trip", f"{elapsed / n_calls * 1e6:.0f}us"),
                ("sample hits for 'topic-7'", sample["total"]),
                ("first hit", sample["results"][0]),
                ("empty query rejected with", bad),
                ("bytes sent / received",
                 f"{transport.bytes_sent} / {transport.bytes_received}"),
            ], title="Search over the socket transport"))


if __name__ == "__main__":
    main()
