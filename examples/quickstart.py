#!/usr/bin/env python3
"""Quickstart: generate a synthetic RPC fleet and reproduce the headline
findings of "A Cloud-Scale Characterization of Remote Procedure Calls"
(SOSP 2023).

Run:  python examples/quickstart.py

What it does:
 1. builds a calibrated catalog of 1,000 RPC methods,
 2. samples every method through the nine-component stack model,
 3. prints the paper's headline tables (latency distribution, popularity
    skew, the RPC latency tax, the cycle tax, the error mix),
 4. demonstrates the real wire codec / compressor / cipher that ground
    the stack's cost model.
"""

import numpy as np

from repro.core.cycles import analyze_cycle_tax
from repro.core.errors import analyze_errors
from repro.core.fleetsample import run_fleet_study
from repro.core.latency import analyze_latency_distribution
from repro.core.popularity import analyze_popularity
from repro.core.tax import analyze_fleet_tax
from repro.rpc import compression, crypto
from repro.rpc.wire import FieldSpec, FieldType, MessageSchema, encode_message
from repro.workloads.catalog import CatalogConfig, build_catalog


def main() -> None:
    print("Building a calibrated 1,000-method catalog ...")
    catalog = build_catalog(CatalogConfig(n_methods=1000, seed=2023))
    print(f"  {len(catalog)} methods across {len(catalog.services())} services\n")

    print("Sampling every method through the RPC stack model ...")
    fleet = run_fleet_study(catalog, np.random.default_rng(0),
                            samples_per_method=200)
    print(f"  {fleet.total_calls_sampled:,} simulated RPCs\n")

    from repro.core.heatmap import render_heatmap
    from repro.core.stats import MethodPercentiles

    latency = analyze_latency_distribution(fleet)
    grid = MethodPercentiles(latency.method_names, latency.percentiles,
                             latency.grid)
    print(render_heatmap(
        grid, title="Fig. 2a — per-method RPC completion time (ASCII)"))
    print()

    for result in (
        latency,
        analyze_popularity(fleet),
        analyze_fleet_tax(fleet),
        analyze_cycle_tax(fleet.gwp),
        analyze_errors(fleet),
    ):
        print(result.render())
        print()

    # ------------------------------------------------------------------
    # The stack's cost model is grounded in real code paths: a protobuf-
    # style codec, an LZSS compressor, and ChaCha20 — here is one request
    # actually making the trip.
    # ------------------------------------------------------------------
    print("One real request through serialize -> compress -> encrypt:")
    schema = MessageSchema("ReadRequest", [
        FieldSpec(1, "table", FieldType.STRING),
        FieldSpec(2, "row_key", FieldType.BYTES),
        FieldSpec(3, "columns", FieldType.STRING, repeated=True),
        FieldSpec(4, "limit", FieldType.INT64),
    ])
    request = {
        "table": "users",
        "row_key": b"user:12345" * 20,
        "columns": ["name", "email", "preferences"] * 10,
        "limit": 100,
    }
    wire_bytes = encode_message(schema, request)
    compressed = compression.compress(wire_bytes)
    key, nonce = bytes(32), bytes(12)
    ciphertext = crypto.chacha20_encrypt(key, nonce, compressed)
    print(f"  serialized:  {len(wire_bytes)} B")
    print(f"  compressed:  {len(compressed)} B "
          f"({len(wire_bytes) / len(compressed):.2f}x)")
    print(f"  encrypted:   {len(ciphertext)} B")
    roundtrip = compression.decompress(
        crypto.chacha20_decrypt(key, nonce, ciphertext)
    )
    assert roundtrip == wire_bytes
    print("  round trip OK")


if __name__ == "__main__":
    main()
