"""Tests for congestion episodes and the flow transfer model."""

import numpy as np
import pytest

from repro.net.congestion import CongestionModel
from repro.net.flows import MTU_BYTES, FlowModel

RNG = np.random.default_rng(9)


class TestCongestion:
    def test_most_samples_are_zero(self):
        m = CongestionModel(base_probability=0.02, modulation_depth=0.0)
        x = m.sample(RNG, 50_000)
        assert abs((x > 0).mean() - 0.02) < 0.005

    def test_probability_modulates_over_time(self):
        m = CongestionModel(base_probability=0.02, modulation_depth=1.0,
                            modulation_period_s=100.0)
        probs = [m.probability(t) for t in np.linspace(0, 100, 50)]
        assert max(probs) > 1.5 * m.base_probability
        assert min(probs) < 0.5 * m.base_probability

    def test_probability_clamped_to_unit_interval(self):
        m = CongestionModel(base_probability=0.9, modulation_depth=1.0)
        for t in np.linspace(0, 1000, 100):
            assert 0.0 <= m.probability(t) <= 1.0

    def test_congested_delays_positive_and_heavy(self):
        m = CongestionModel(base_probability=1.0, modulation_depth=0.0,
                            delay_median_s=1e-3, delay_sigma=1.5)
        x = m.sample(RNG, 20_000)
        assert np.all(x > 0)
        assert np.median(x) == pytest.approx(1e-3, rel=0.1)
        assert np.percentile(x, 99) > 10e-3

    def test_sample_one_scalar(self):
        m = CongestionModel(base_probability=0.5)
        v = m.sample_one(RNG)
        assert isinstance(v, float)


class TestFlows:
    def test_zero_size_single_packet(self):
        f = FlowModel()
        assert f.packets(0) == 1
        assert f.packets(-5) == 1

    def test_packet_count_ceils(self):
        f = FlowModel()
        assert f.packets(1) == 1
        assert f.packets(MTU_BYTES) == 1
        assert f.packets(MTU_BYTES + 1) == 2
        assert f.packets(10 * MTU_BYTES) == 10

    def test_transfer_time_scales_with_size(self):
        f = FlowModel(effective_gbps=8.0)
        t1 = f.transfer_time_s(1_000)
        t2 = f.transfer_time_s(1_000_000)
        assert t2 > 100 * t1 * 0.5
        # 1 MB at 8 Gbps is 1 ms of serialization plus packet overhead.
        assert t2 == pytest.approx(1e-3 + 667 * f.per_packet_overhead_s, rel=0.01)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FlowModel().transfer_time_s(-1)

    def test_mtu_fit_predicate(self):
        f = FlowModel()
        assert f.fits_in_one_mtu(64)
        assert f.fits_in_one_mtu(MTU_BYTES)
        assert not f.fits_in_one_mtu(MTU_BYTES + 1)
        assert not f.fits_in_one_mtu(-1)
