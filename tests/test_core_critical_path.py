"""Tests for the critical-path analysis."""

import numpy as np
import pytest

from repro.core.critical_path import (
    CriticalPath,
    TraceSpan,
    critical_path,
    run_critical_path_study,
    synthesize_trace,
)


def leaf(app=1.0, tax=0.1, depth=1):
    return TraceSpan(method_id=0, depth=depth, local_app_s=app, tax_s=tax)


def test_total_composes_parallel_children():
    root = TraceSpan(method_id=0, depth=0, local_app_s=1.0, tax_s=0.5,
                     children=[leaf(app=2.0), leaf(app=7.0), leaf(app=1.0)])
    # Parent waits for the slowest child only.
    assert root.total_s() == pytest.approx(0.5 + 1.0 + 7.1)


def test_critical_path_follows_slowest_child():
    slow = leaf(app=7.0)
    root = TraceSpan(method_id=0, depth=0, local_app_s=1.0, tax_s=0.5,
                     children=[leaf(app=2.0), slow])
    path = critical_path(root)
    assert path.spans == [root, slow]
    assert path.depth == 2
    assert path.app_s == pytest.approx(8.0)
    assert path.tax_s == pytest.approx(0.6)
    assert path.total_s == pytest.approx(root.total_s())


def test_leaf_only_path():
    node = leaf(app=3.0, tax=1.0, depth=0)
    path = critical_path(node)
    assert path.depth == 1
    assert path.tax_fraction == pytest.approx(0.25)


def test_deep_chain_accumulates_tax():
    # A 5-level chain of identical spans: tax stacks per level.
    node = leaf(app=1.0, tax=0.5, depth=4)
    for d in (3, 2, 1, 0):
        node = TraceSpan(method_id=0, depth=d, local_app_s=1.0, tax_s=0.5,
                         children=[node])
    path = critical_path(node)
    assert path.depth == 5
    assert path.tax_s == pytest.approx(2.5)
    assert path.app_s == pytest.approx(5.0)


def test_synthesize_trace_from_catalog(small_catalog):
    from repro.core.calltree import build_generator
    rng = np.random.default_rng(1)
    gen = build_generator(small_catalog, max_nodes=200)
    roots = [m for m in small_catalog.methods if m.layer < 3]
    tree = gen.generate(roots[0].method_id, rng)
    trace = synthesize_trace(small_catalog, tree, rng)
    assert trace.total_s() > 0
    assert trace.local_app_s >= 0 and trace.tax_s >= 0
    # The composed total is at least the root's own pieces.
    assert trace.total_s() >= trace.local_app_s + trace.tax_s


def test_run_study_shapes(small_catalog):
    r = run_critical_path_study(small_catalog, n_traces=40,
                                rng=np.random.default_rng(2), max_nodes=400)
    assert r.n_traces == 40
    assert r.mean_depth >= 1.0
    assert 0.0 < r.mean_tax_fraction < 1.0
    assert r.mean_total_s > 0
    assert r.render().startswith("Critical-path")
