"""Tests for the minimal asyncio HTTP layer behind serve mode."""

import asyncio

import pytest

from repro.serve.http import (
    MAX_BODY_BYTES,
    MAX_HEADERS,
    BadRequest,
    HttpRequest,
    HttpResponse,
    http_call,
    read_request,
    write_response,
)


def parse(raw: bytes):
    """Feed raw bytes through read_request on a detached stream."""
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)
    return asyncio.run(go())


class TestReadRequest:
    def test_get_with_query(self):
        request = parse(b"GET /v1/whatif?service=Bigtable&seed=7 HTTP/1.1\r\n"
                        b"host: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/whatif"
        assert request.query == {"service": "Bigtable", "seed": "7"}
        assert request.body == b""

    def test_post_with_body(self):
        request = parse(b"POST /v1/study HTTP/1.1\r\n"
                        b"Content-Length: 11\r\n\r\n"
                        b'{"seed": 1}')
        assert request.method == "POST"
        assert request.body == b'{"seed": 1}'

    def test_header_names_lowercased_values_stripped(self):
        request = parse(b"GET / HTTP/1.1\r\nX-Thing:  padded \r\n\r\n")
        assert request.headers["x-thing"] == "padded"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_keep_alive_default_and_close(self):
        assert parse(b"GET / HTTP/1.1\r\n\r\n").keep_alive
        closed = parse(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n")
        assert not closed.keep_alive

    @pytest.mark.parametrize("raw, message", [
        (b"GET /\r\n\r\n", "malformed request line"),
        (b"GET / SPDY/3\r\n\r\n", "malformed request line"),
        (b"BREW /pot HTTP/1.1\r\n\r\n", "unsupported method"),
        (b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n", "malformed header"),
        (b"GET / HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
         "bad content-length"),
        (b"GET / HTTP/1.1\r\ncontent-length: -1\r\n\r\n", "out of bounds"),
        (b"GET / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort",
         "truncated body"),
        (b"GET / HTTP", "truncated request line"),
    ])
    def test_malformed_input_raises_bad_request(self, raw, message):
        with pytest.raises(BadRequest, match=message):
            parse(raw)

    def test_body_size_bound(self):
        raw = (f"POST / HTTP/1.1\r\ncontent-length: "
               f"{MAX_BODY_BYTES + 1}\r\n\r\n").encode()
        with pytest.raises(BadRequest, match="out of bounds"):
            parse(raw)

    def test_header_count_bound(self):
        headers = "".join(f"h{i}: v\r\n" for i in range(MAX_HEADERS + 1))
        with pytest.raises(BadRequest, match="too many headers"):
            parse(f"GET / HTTP/1.1\r\n{headers}\r\n".encode())


class TestWriteResponse:
    def render(self, response: HttpResponse, keep_alive: bool) -> bytes:
        chunks = []

        class FakeWriter:
            def write(self, data):
                chunks.append(data)

        write_response(FakeWriter(), response, keep_alive=keep_alive)
        return b"".join(chunks)

    def test_status_line_and_framing(self):
        raw = self.render(HttpResponse(status=200, body=b'{"a": 1}'),
                          keep_alive=True)
        head, _sep, body = raw.partition(b"\r\n\r\n")
        lines = head.split(b"\r\n")
        assert lines[0] == b"HTTP/1.1 200 OK"
        assert b"content-length: 8" in lines
        assert b"connection: keep-alive" in lines
        assert body == b'{"a": 1}'

    def test_extra_headers_and_close(self):
        raw = self.render(
            HttpResponse(status=503, headers={"retry-after": "1"}),
            keep_alive=False)
        assert raw.startswith(b"HTTP/1.1 503 Service Unavailable")
        assert b"retry-after: 1\r\n" in raw
        assert b"connection: close" in raw

    def test_unknown_status_reason(self):
        assert HttpResponse(status=418).reason == "Unknown"


class TestHttpCallRoundTrip:
    """Client and server halves against each other over a loopback socket."""

    def serve_and_call(self, calls, keep_alive_conn=False):
        """Echo server: answers each request with its method and path."""
        seen = []

        async def on_connection(reader, writer):
            while True:
                request = await read_request(reader)
                if request is None:
                    break
                seen.append(request)
                write_response(writer, HttpResponse(
                    body=f"{request.method} {request.path}".encode(),
                    content_type="text/plain"), keep_alive=True)
                await writer.drain()
            writer.close()

        async def go():
            server = await asyncio.start_server(on_connection,
                                                "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            results = []
            conn = (await asyncio.open_connection("127.0.0.1", port)
                    if keep_alive_conn else None)
            try:
                for method, target, body in calls:
                    results.append(await http_call(
                        "127.0.0.1", port, method, target, body,
                        reader=conn[0] if conn else None,
                        writer=conn[1] if conn else None))
            finally:
                if conn:
                    conn[1].close()
                server.close()
                await server.wait_closed()
            return results

        return asyncio.run(go()), seen

    def test_fresh_connection_per_call(self):
        results, seen = self.serve_and_call(
            [("GET", "/healthz", b""), ("POST", "/v1/study", b"{}")])
        assert [status for status, _h, _b in results] == [200, 200]
        assert results[0][2] == b"GET /healthz"
        assert results[1][2] == b"POST /v1/study"
        assert seen[1].body == b"{}"

    def test_keep_alive_connection_reuse(self):
        results, _seen = self.serve_and_call(
            [("GET", "/a", b""), ("GET", "/b", b"")], keep_alive_conn=True)
        assert [body for _s, _h, body in results] == [b"GET /a", b"GET /b"]
