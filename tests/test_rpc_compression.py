"""Tests for the LZSS compressor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc.compression import (
    MAX_MATCH,
    MIN_MATCH,
    CompressionError,
    compress,
    compression_ratio,
    decompress,
)


def test_empty_roundtrip():
    assert decompress(compress(b"")) == b""


def test_single_byte_roundtrip():
    assert decompress(compress(b"x")) == b"x"


def test_repetitive_data_compresses():
    data = b"abcd" * 1000
    blob = compress(data)
    assert decompress(blob) == data
    assert len(blob) < len(data) / 5


def test_run_of_one_byte_self_overlapping_match():
    data = b"a" * 10_000
    blob = compress(data)
    assert decompress(blob) == data
    assert len(blob) < 200


def test_incompressible_data_roundtrips():
    import numpy as np
    data = np.random.default_rng(0).integers(0, 256, 5000).astype("uint8").tobytes()
    blob = compress(data)
    assert decompress(blob) == data
    # Flag bytes add at most 1/8 overhead plus the header.
    assert len(blob) <= len(data) * 9 / 8 + 16


def test_text_like_payload():
    data = (b"GET /api/v1/users?id=12345 HTTP/1.1\r\n"
            b"Host: service.example.com\r\n" * 40)
    blob = compress(data)
    assert decompress(blob) == data
    assert len(blob) < len(data) / 2


def test_levels_tradeoff_monotone_ratio():
    data = bytes(range(256)) * 100
    sizes = [len(compress(data, level)) for level in (1, 3, 6)]
    # Harder searching can only help (or tie).
    assert sizes[0] >= sizes[1] >= sizes[2]


def test_invalid_level_rejected():
    with pytest.raises(ValueError):
        compress(b"abc", level=0)
    with pytest.raises(ValueError):
        compress(b"abc", level=7)


def test_bad_magic_rejected():
    with pytest.raises(CompressionError):
        decompress(b"XXXX\x00")


def test_truncated_stream_rejected():
    blob = compress(b"hello world, hello world, hello world")
    with pytest.raises(CompressionError):
        decompress(blob[:len(blob) // 2])


def test_corrupt_distance_rejected():
    # A match token pointing before the start of output.
    from repro.rpc.wire import encode_varint
    blob = b"RLZ1" + encode_varint(10) + b"\x01" + b"\xff\x7f\x00"
    with pytest.raises(CompressionError):
        decompress(blob)


def test_compression_ratio_helper():
    assert compression_ratio(b"") == 1.0
    assert compression_ratio(b"a" * 10000) > 20


def test_match_length_bounds_respected():
    # A long run exercises maximum-length matches.
    data = b"z" * (MAX_MATCH * 3 + MIN_MATCH)
    assert decompress(compress(data)) == data


@given(data=st.binary(max_size=2000))
@settings(max_examples=80, deadline=None)
def test_roundtrip_property(data):
    assert decompress(compress(data)) == data


@given(data=st.binary(min_size=1, max_size=500), level=st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_roundtrip_all_levels(data, level):
    assert decompress(compress(data, level)) == data


@given(chunk=st.binary(min_size=1, max_size=30), reps=st.integers(2, 200))
@settings(max_examples=40, deadline=None)
def test_repeated_chunks_roundtrip(chunk, reps):
    data = chunk * reps
    assert decompress(compress(data)) == data
