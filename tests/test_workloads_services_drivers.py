"""Tests for the Table-1 service specs and the DES drivers."""

import numpy as np
import pytest

from repro.fleet.topology import FleetSpec, build_fleet
from repro.net.latency import NetworkModel
from repro.obs.dapper import DapperCollector
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.workloads.drivers import (
    DeploymentConfig,
    DiurnalPattern,
    OpenLoopDriver,
    ServiceDeployment,
    scaled_stack,
)
from repro.workloads.services import (
    CATEGORY_APP,
    CATEGORY_QUEUE,
    CATEGORY_STACK,
    SERVICE_SPECS,
    build_method_runtime,
)


class TestServiceSpecs:
    def test_all_eight_present(self):
        assert set(SERVICE_SPECS) == {
            "Bigtable", "NetworkDisk", "SSDCache", "VideoMetadata",
            "Spanner", "F1", "MLInference", "KVStore",
        }

    def test_table1_request_sizes(self):
        """Table 1's RPC sizes, verbatim."""
        assert SERVICE_SPECS["Bigtable"].request_bytes == 1000
        assert SERVICE_SPECS["NetworkDisk"].request_bytes == 32_000
        assert SERVICE_SPECS["SSDCache"].request_bytes == 400
        assert SERVICE_SPECS["VideoMetadata"].request_bytes == 32_000
        assert SERVICE_SPECS["Spanner"].request_bytes == 800
        assert SERVICE_SPECS["F1"].request_bytes == 75
        assert SERVICE_SPECS["MLInference"].request_bytes == 512
        assert SERVICE_SPECS["KVStore"].request_bytes == 128

    def test_category_assignment_matches_paper(self):
        app = {n for n, s in SERVICE_SPECS.items() if s.category == CATEGORY_APP}
        queue = {n for n, s in SERVICE_SPECS.items() if s.category == CATEGORY_QUEUE}
        stack = {n for n, s in SERVICE_SPECS.items() if s.category == CATEGORY_STACK}
        assert app == {"Bigtable", "NetworkDisk", "F1", "MLInference", "Spanner"}
        assert queue == {"SSDCache", "VideoMetadata"}
        assert stack == {"KVStore"}

    def test_kvstore_runs_on_reserved_cores(self):
        assert SERVICE_SPECS["KVStore"].reserved_cores

    def test_f1_has_largest_handler_variance(self):
        sigmas = {n: s.app_sigma for n, s in SERVICE_SPECS.items()}
        assert max(sigmas, key=sigmas.get) == "F1"

    def test_runtime_conversion(self):
        rt = build_method_runtime(SERVICE_SPECS["Bigtable"])
        assert rt.service == "Bigtable"
        rng = np.random.default_rng(0)
        assert rt.app_time.sample_one(rng) > 0
        assert rt.request_size.sample_one(rng) >= 64

    def test_distributions_positive(self):
        rng = np.random.default_rng(0)
        for spec in SERVICE_SPECS.values():
            assert np.all(spec.app_time().sample(rng, 100) > 0)
            assert np.all(spec.response_size().sample(rng, 100) >= 64)


class TestScaledStack:
    def test_time_constants_scaled_cycles_not(self):
        from repro.rpc.stack import StackCostModel
        base = StackCostModel()
        scaled = scaled_stack(base, 4.0)
        assert scaled.proc_stack_time_s(1000) == pytest.approx(
            4.0 * base.proc_stack_time_s(1000)
        )
        assert scaled.compress_cycles_per_byte == base.compress_cycles_per_byte


class TestDiurnal:
    def test_flat_without_amplitude(self):
        d = DiurnalPattern()
        assert d.multiplier(0) == d.multiplier(40_000) == 1.0

    def test_wave_with_amplitude(self):
        d = DiurnalPattern(amplitude=0.5)
        vals = [d.multiplier(t) for t in np.linspace(0, 86400, 100)]
        assert max(vals) == pytest.approx(1.5, abs=0.01)
        assert min(vals) == pytest.approx(0.5, abs=0.01)
        assert all(v > 0 for v in vals)


class TestDeployment:
    def build(self, service="Bigtable", n_clusters=2):
        sim = Simulator()
        fleet = build_fleet(FleetSpec(), seed=1)
        dep = ServiceDeployment(
            sim, SERVICE_SPECS[service], fleet.clusters[:n_clusters],
            NetworkModel(), dapper=DapperCollector(),
            rngs=RngRegistry(3),
            config=DeploymentConfig(server_machines_per_cluster=2,
                                    client_machines_per_cluster=1),
        )
        return sim, fleet, dep

    def test_builds_servers_and_clients(self):
        sim, fleet, dep = self.build()
        assert len(dep.all_servers()) == 4
        for cluster in fleet.clusters[:2]:
            assert len(dep.servers_by_cluster[cluster.name]) == 2
            assert len(dep.clients_by_cluster[cluster.name]) == 1

    def test_base_rate_positive(self):
        _, _, dep = self.build()
        assert dep.base_rate_per_cluster() > 0

    def test_kvstore_deployment_uses_reserved_cores(self):
        _, _, dep = self.build("KVStore")
        assert dep.profile.reserved_cores
        # Its stack model is scaled by the proc multiplier.
        from repro.rpc.stack import StackCostModel
        assert dep.stack.serialize_base_s > StackCostModel().serialize_base_s

    def test_driver_offers_load_and_spans_recorded(self):
        sim, fleet, dep = self.build()
        driver = OpenLoopDriver(dep, fleet.clusters[0], rate_rps=500.0)
        driver.start(duration_s=1.0)
        sim.run_until(2.0)
        assert driver.calls_offered > 300
        assert len(dep.dapper) > 300

    def test_driver_stops_at_duration(self):
        sim, fleet, dep = self.build()
        driver = OpenLoopDriver(dep, fleet.clusters[0], rate_rps=200.0)
        driver.start(duration_s=0.5)
        sim.run_until(5.0)
        offered_at_stop = driver.calls_offered
        sim.run_until(10.0)
        assert driver.calls_offered == offered_at_stop

    def test_driver_rate_modulation_bounded(self):
        sim, fleet, dep = self.build()
        driver = OpenLoopDriver(dep, fleet.clusters[0], rate_rps=100.0)
        rates = [driver.rate(t) for t in np.linspace(0, 100, 200)]
        burst = SERVICE_SPECS["Bigtable"].burstiness
        assert max(rates) <= 100.0 * burst * 1.01
        assert min(rates) >= 100.0 / burst * 0.99

    def test_cross_cluster_driver_targets_remote(self):
        sim, fleet, dep = self.build(n_clusters=2)
        home, remote = fleet.clusters[0], fleet.clusters[1]
        driver = OpenLoopDriver(dep, remote, target_cluster=home,
                                rate_rps=200.0)
        driver.start(duration_s=1.0)
        sim.run_until(3.0)
        spans = dep.dapper.spans
        assert spans
        assert all(s.server_cluster == home.name for s in spans)
        assert all(s.client_cluster == remote.name for s in spans)

    def test_monarch_collector_yields_exogenous(self):
        sim, fleet, dep = self.build()
        collect = dep.monarch_collectors()
        rows = list(collect(0.0))
        names = {name for name, _, _ in rows}
        assert "machine/cpu_util" in names
        assert "machine/cycles_per_inst" in names

    def test_empty_clusters_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ServiceDeployment(sim, SERVICE_SPECS["Bigtable"], [],
                              NetworkModel())

    def test_zero_rate_rejected(self):
        sim, fleet, dep = self.build()
        with pytest.raises(ValueError):
            OpenLoopDriver(dep, fleet.clusters[0], rate_rps=0.0)
