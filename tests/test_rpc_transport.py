"""Tests for the TCP transport (real sockets on localhost)."""

import socket
import threading

import pytest

from repro.rpc.errors import RpcError, StatusCode
from repro.rpc.framework import Channel, RpcServer, ServiceDef
from repro.rpc.stubgen import make_stub
from repro.rpc.transport import (
    MAX_FRAME_BYTES,
    TcpRpcServer,
    TcpTransport,
    TransportError,
    read_frame,
    write_frame,
)
from repro.rpc.wire import FieldSpec, FieldType, MessageSchema

REQ = MessageSchema("Req", [FieldSpec(1, "x", FieldType.INT64)])
RESP = MessageSchema("Resp", [FieldSpec(1, "y", FieldType.INT64)])


def build_service():
    svc = ServiceDef("Math")

    @svc.method("Double", REQ, RESP)
    def double(request):
        return {"y": 2 * request.get("x", 0)}

    return svc


@pytest.fixture()
def tcp_server():
    rpc = RpcServer()
    rpc.register(build_service())
    server = TcpRpcServer(rpc)
    server.serve_in_background()
    yield server
    server.close()


def test_call_over_real_socket(tcp_server):
    host, port = tcp_server.address
    with TcpTransport(host, port) as transport:
        channel = Channel(transport)
        reply = channel.call("Math", "Double", {"x": 21}, REQ, RESP)
        assert reply == {"y": 42}
        assert transport.bytes_sent > 0
        assert transport.bytes_received > 0


def test_many_sequential_calls_one_connection(tcp_server):
    host, port = tcp_server.address
    with TcpTransport(host, port) as transport:
        channel = Channel(transport)
        for i in range(50):
            assert channel.call("Math", "Double", {"x": i},
                                REQ, RESP) == {"y": 2 * i}
    assert tcp_server.connections_accepted == 1


def test_concurrent_clients(tcp_server):
    host, port = tcp_server.address
    errors = []

    def worker(base):
        try:
            with TcpTransport(host, port) as transport:
                channel = Channel(transport)
                for i in range(20):
                    out = channel.call("Math", "Double", {"x": base + i},
                                       REQ, RESP)
                    assert out == {"y": 2 * (base + i)}
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(k * 1000,))
               for k in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert tcp_server.connections_accepted == 4


def test_stub_over_tcp(tcp_server):
    host, port = tcp_server.address
    with TcpTransport(host, port) as transport:
        stub = make_stub(Channel(transport), build_service())
        assert stub.double({"x": 8}) == {"y": 16}


def test_unknown_method_error_over_tcp(tcp_server):
    host, port = tcp_server.address
    with TcpTransport(host, port) as transport:
        channel = Channel(transport)
        with pytest.raises(RpcError) as err:
            channel.call("Math", "Nope", {"x": 1}, REQ, RESP)
        assert err.value.status is StatusCode.UNIMPLEMENTED


def test_garbage_frame_drops_connection(tcp_server):
    host, port = tcp_server.address
    sock = socket.create_connection((host, port), timeout=2.0)
    write_frame(sock, b"not an rpc frame")
    # The server drops the connection rather than replying.
    sock.settimeout(2.0)
    with pytest.raises((TransportError, socket.timeout, ConnectionError)):
        read_frame(sock)
    sock.close()


def test_frame_helpers_roundtrip():
    a, b = socket.socketpair()
    try:
        write_frame(a, b"hello frames")
        assert read_frame(b) == b"hello frames"
    finally:
        a.close()
        b.close()


def test_oversized_frame_rejected():
    a, b = socket.socketpair()
    try:
        with pytest.raises(TransportError):
            write_frame(a, b"x" * (MAX_FRAME_BYTES + 1))
    finally:
        a.close()
        b.close()


def test_short_read_raises():
    a, b = socket.socketpair()
    try:
        a.sendall(b"\x00\x00\x00\x10abc")  # promises 16 bytes, sends 3
        a.close()
        with pytest.raises(TransportError):
            read_frame(b)
    finally:
        b.close()
