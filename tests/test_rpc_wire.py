"""Tests for the protobuf-style wire codec.

The byte-level fixtures below are the canonical encodings from the
protobuf wire-format specification (e.g. 150 encodes as ``96 01``;
field 1 varint 150 as ``08 96 01``), so compatibility is checked against
the real format, not just round-tripping.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc.wire import (
    FieldSpec,
    FieldType,
    MessageSchema,
    WireError,
    WireType,
    decode_message,
    decode_varint,
    decode_zigzag,
    encode_message,
    encode_varint,
    encode_zigzag,
    iter_fields,
)


# ----------------------------------------------------------------------
# Varints (protobuf spec fixtures)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("value,encoded", [
    (0, b"\x00"),
    (1, b"\x01"),
    (127, b"\x7f"),
    (128, b"\x80\x01"),
    (150, b"\x96\x01"),          # the protobuf docs' canonical example
    (300, b"\xac\x02"),
    (2**64 - 1, b"\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"),
])
def test_varint_fixtures(value, encoded):
    assert encode_varint(value) == encoded
    assert decode_varint(encoded) == (value, len(encoded))


def test_varint_rejects_negative_and_overflow():
    with pytest.raises(WireError):
        encode_varint(-1)
    with pytest.raises(WireError):
        encode_varint(2**64)


def test_decode_varint_truncated():
    with pytest.raises(WireError):
        decode_varint(b"\x80")


def test_decode_varint_too_long():
    with pytest.raises(WireError):
        decode_varint(b"\x80" * 11)


@pytest.mark.parametrize("value,zz", [
    (0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4),
    (2147483647, 4294967294), (-2147483648, 4294967295),
])
def test_zigzag_fixtures(value, zz):
    """The exact table from the protobuf encoding documentation."""
    assert encode_zigzag(value) == zz
    assert decode_zigzag(zz) == value


def test_zigzag_out_of_range():
    with pytest.raises(WireError):
        encode_zigzag(2**63)


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
SCHEMA = MessageSchema("Test", [
    FieldSpec(1, "a", FieldType.INT64),
    FieldSpec(2, "b", FieldType.STRING),
    FieldSpec(3, "c", FieldType.DOUBLE),
    FieldSpec(4, "d", FieldType.BYTES),
    FieldSpec(5, "e", FieldType.BOOL),
    FieldSpec(6, "f", FieldType.SINT64),
    FieldSpec(7, "g", FieldType.UINT64, repeated=True),
    FieldSpec(8, "h", FieldType.FIXED32),
    FieldSpec(9, "i", FieldType.FIXED64),
    FieldSpec(10, "j", FieldType.FLOAT),
])


def test_field1_varint_150_canonical_bytes():
    """protobuf docs: message {a: 150} encodes to 08 96 01."""
    schema = MessageSchema("T1", [FieldSpec(1, "a", FieldType.INT64)])
    assert encode_message(schema, {"a": 150}) == b"\x08\x96\x01"


def test_field2_string_testing_canonical_bytes():
    """protobuf docs: message {b: "testing"} encodes to 12 07 74..67."""
    schema = MessageSchema("T2", [FieldSpec(2, "b", FieldType.STRING)])
    assert encode_message(schema, {"b": "testing"}) == b"\x12\x07testing"


def test_roundtrip_all_types():
    msg = {
        "a": -42,
        "b": "héllo",
        "c": 3.14159,
        "d": b"\x00\x01\x02",
        "e": True,
        "f": -7,
        "g": [1, 2, 300],
        "h": 123456,
        "i": 2**40,
        "j": 1.5,
    }
    blob = encode_message(SCHEMA, msg)
    out = decode_message(SCHEMA, blob)
    assert out["a"] == -42
    assert out["b"] == "héllo"
    assert out["c"] == pytest.approx(3.14159)
    assert out["d"] == b"\x00\x01\x02"
    assert out["e"] is True
    assert out["f"] == -7
    assert out["g"] == [1, 2, 300]
    assert out["h"] == 123456
    assert out["i"] == 2**40
    assert out["j"] == pytest.approx(1.5)


def test_missing_fields_omitted():
    blob = encode_message(SCHEMA, {"a": 5})
    assert decode_message(SCHEMA, blob) == {"a": 5}


def test_unknown_key_rejected_on_encode():
    with pytest.raises(WireError):
        encode_message(SCHEMA, {"zzz": 1})


def test_unknown_field_skipped_on_decode():
    rich = MessageSchema("Rich", [
        FieldSpec(1, "a", FieldType.INT64),
        FieldSpec(99, "x", FieldType.STRING),
    ])
    poor = MessageSchema("Poor", [FieldSpec(1, "a", FieldType.INT64)])
    blob = encode_message(rich, {"a": 7, "x": "ignored"})
    assert decode_message(poor, blob) == {"a": 7}


def test_last_singular_occurrence_wins():
    schema = MessageSchema("T", [FieldSpec(1, "a", FieldType.INT64)])
    blob = encode_message(schema, {"a": 1}) + encode_message(schema, {"a": 2})
    assert decode_message(schema, blob) == {"a": 2}


def test_nested_message():
    inner = MessageSchema("Inner", [FieldSpec(1, "x", FieldType.INT64)])
    outer = MessageSchema("Outer", [
        FieldSpec(1, "name", FieldType.STRING),
        FieldSpec(2, "inner", FieldType.MESSAGE, message_schema=inner),
    ])
    msg = {"name": "n", "inner": {"x": 9}}
    assert decode_message(outer, encode_message(outer, msg)) == msg


def test_repeated_nested_messages():
    inner = MessageSchema("Inner", [FieldSpec(1, "x", FieldType.INT64)])
    outer = MessageSchema("Outer", [
        FieldSpec(1, "items", FieldType.MESSAGE, repeated=True,
                  message_schema=inner),
    ])
    msg = {"items": [{"x": 1}, {"x": 2}]}
    assert decode_message(outer, encode_message(outer, msg)) == msg


def test_message_type_requires_schema():
    with pytest.raises(WireError):
        FieldSpec(1, "m", FieldType.MESSAGE)


def test_duplicate_field_number_rejected():
    with pytest.raises(WireError):
        MessageSchema("Bad", [
            FieldSpec(1, "a", FieldType.INT64),
            FieldSpec(1, "b", FieldType.INT64),
        ])


def test_repeated_requires_list():
    with pytest.raises(WireError):
        encode_message(SCHEMA, {"g": 5})


def test_wire_type_mismatch_rejected():
    s1 = MessageSchema("A", [FieldSpec(1, "a", FieldType.INT64)])
    s2 = MessageSchema("B", [FieldSpec(1, "a", FieldType.STRING)])
    blob = encode_message(s1, {"a": 5})
    with pytest.raises(WireError):
        decode_message(s2, blob)


def test_truncated_length_delimited():
    with pytest.raises(WireError):
        decode_message(SCHEMA, b"\x12\x0aab")  # says 10 bytes, has 2


def test_iter_fields_schemaless_walk():
    blob = encode_message(SCHEMA, {"a": 5, "b": "hi"})
    fields = list(iter_fields(blob))
    assert fields[0] == (1, WireType.VARINT, 5)
    assert fields[1] == (2, WireType.LENGTH_DELIMITED, b"hi")


# ----------------------------------------------------------------------
# Property-based round trips
# ----------------------------------------------------------------------
@given(value=st.integers(0, 2**64 - 1))
@settings(max_examples=200, deadline=None)
def test_varint_roundtrip(value):
    assert decode_varint(encode_varint(value)) == (value, len(encode_varint(value)))


@given(value=st.integers(-(2**63), 2**63 - 1))
@settings(max_examples=200, deadline=None)
def test_zigzag_roundtrip(value):
    assert decode_zigzag(encode_zigzag(value)) == value


@given(
    a=st.integers(-(2**63), 2**63 - 1),
    b=st.text(max_size=80),
    d=st.binary(max_size=100),
    e=st.booleans(),
    g=st.lists(st.integers(0, 2**64 - 1), max_size=10),
)
@settings(max_examples=100, deadline=None)
def test_message_roundtrip_property(a, b, d, e, g):
    msg = {"a": a, "b": b, "d": d, "e": e, "g": g}
    if not g:
        del msg["g"]  # empty repeated fields are omitted on the wire
    out = decode_message(SCHEMA, encode_message(SCHEMA, msg))
    assert out.get("a") == a
    assert out.get("b") == b
    assert out.get("d") == d
    assert out.get("e") == e
    assert out.get("g", []) == g
