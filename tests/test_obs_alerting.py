"""Tests for SLO burn-rate alerting and adaptive trace sampling."""

import json

import numpy as np
import pytest

from repro.obs.alerting import (
    AdaptiveSamplingController,
    AlertEvent,
    AlertManager,
    SloSpec,
    load_slo_specs,
)
from repro.obs.dapper import DapperCollector
from repro.obs.monarch import Monarch
from repro.obs.sketch import LatencySketch
from repro.sim.engine import Simulator

METRIC = "telemetry/rpc_latency_s"
LABELS = {"method": "Bigtable/SearchValue"}


def make_sketch(value: float, n: int = 100) -> LatencySketch:
    sketch = LatencySketch()
    sketch.observe_many(np.full(n, value))
    return sketch


def make_spec(**overrides) -> SloSpec:
    kwargs = dict(name="search-latency", threshold_s=0.01, window_s=720.0,
                  target=0.99, labels=dict(LABELS))
    kwargs.update(overrides)
    return SloSpec(**kwargs)


class TestSloSpec:
    def test_validates_fields(self):
        with pytest.raises(ValueError, match="target"):
            make_spec(target=1.0)
        with pytest.raises(ValueError, match="target"):
            make_spec(target=0.0)
        with pytest.raises(ValueError, match="threshold_s"):
            make_spec(threshold_s=0.0)
        with pytest.raises(ValueError, match="window_s"):
            make_spec(window_s=-1.0)

    def test_compile_rule_shapes(self):
        rules = make_spec(window_s=8640.0).compile()
        assert [r.severity for r in rules] == ["page", "ticket"]
        page, ticket = rules
        assert page.factor == 14.4
        assert page.long_window_s == pytest.approx(8640.0 / 720.0)
        assert page.short_window_s == pytest.approx(1.0)
        # for_s defaults to the rule's own short window (the debounce).
        assert page.for_s == pytest.approx(page.short_window_s)
        assert ticket.factor == 6.0
        assert ticket.long_window_s == pytest.approx(72.0)
        assert ticket.short_window_s == pytest.approx(6.0)
        assert ticket.for_s == pytest.approx(6.0)

    def test_compile_explicit_for_s(self):
        rules = make_spec(for_s=2.5).compile()
        assert all(r.for_s == 2.5 for r in rules)

    def test_compile_rejects_infeasible_target(self):
        # 14.4 * (1 - 0.9) = 1.44 > 1: the page rule could never fire.
        with pytest.raises(ValueError, match="infeasible"):
            make_spec(target=0.9).compile()

    def test_dict_round_trip(self):
        spec = make_spec(for_s=3.0)
        clone = SloSpec.from_dict(spec.to_dict())
        assert clone == spec
        # for_s omitted from the doc when unset, defaulted on load.
        doc = make_spec().to_dict()
        assert "for_s" not in doc
        assert SloSpec.from_dict(doc).for_s is None

    def test_from_dict_rejects_unknown_and_missing_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            SloSpec.from_dict({"name": "x", "threshold_s": 1.0,
                               "window_s": 1.0, "burn": 2})
        with pytest.raises(ValueError, match="window_s"):
            SloSpec.from_dict({"name": "x", "threshold_s": 1.0})

    def test_load_slo_specs_formats(self, tmp_path):
        docs = [make_spec().to_dict(), make_spec(name="other").to_dict()]
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(docs))
        assert [s.name for s in load_slo_specs(str(bare))] == \
            ["search-latency", "other"]
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"slos": docs}))
        assert len(load_slo_specs(str(wrapped))) == 2
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"nope": 1}))
        with pytest.raises(ValueError, match="expected a list"):
            load_slo_specs(str(bad))


class TestAlertEvent:
    def test_dict_round_trip(self):
        event = AlertEvent(
            t=2.5, slo="s", severity="page", state="firing",
            burn_long=100.123456789, burn_short=99.0,
            labels=(("method", "A/B"),), exemplars=((0.2, 7), (0.1, 9)))
        doc = event.to_dict()
        assert doc["burn_long"] == pytest.approx(100.123457)
        assert doc["exemplars"] == [[0.2, 7], [0.1, 9]]
        clone = AlertEvent.from_dict(doc)
        assert clone.slo == "s" and clone.state == "firing"
        assert clone.labels == (("method", "A/B"),)
        assert clone.exemplars == ((0.2, 7), (0.1, 9))


def run_incident_scenario():
    """A canned breach: good traffic at 0.5s, bad at 1.5-3.5s, then quiet.

    With window_s=720 the page rule compiles to (long 1.0s, short 0.083s
    -> clamped to the 1s eval interval); the ticket rule to (6s, 0.5s ->
    clamped). Evaluations run at t=1..5.
    """
    monarch = Monarch()
    monarch.write_sketch(METRIC, LABELS, 0.5, make_sketch(0.001))
    for t in (1.5, 2.5, 3.5):
        monarch.write_sketch(METRIC, LABELS, t, make_sketch(0.1),
                             exemplars=((0.1, int(t * 10)),))
    sim = Simulator()
    manager = AlertManager(sim, monarch, [make_spec()], interval_s=1.0)
    sim.run_until(5.2)
    return monarch, manager


class TestAlertManager:
    def test_validates_interval(self):
        with pytest.raises(ValueError, match="interval_s"):
            AlertManager(Simulator(), Monarch(), [make_spec()], interval_s=0)

    def test_state_machine_pending_firing_resolved(self):
        _monarch, manager = run_incident_scenario()
        seq = [(e.t, e.severity, e.state) for e in manager.events]
        assert seq == [
            (2.0, "page", "pending"), (2.0, "ticket", "pending"),
            (3.0, "page", "firing"), (3.0, "ticket", "firing"),
            (5.0, "page", "resolved"), (5.0, "ticket", "resolved"),
        ]
        assert manager.evaluations == 5
        assert manager.firing() == []  # all resolved by the end

    def test_firing_events_carry_exemplars(self):
        _monarch, manager = run_incident_scenario()
        by_state = {}
        for e in manager.events:
            by_state.setdefault(e.state, []).append(e)
        # Only firing transitions attach exemplars, from the long window.
        assert all(e.exemplars == () for e in by_state["pending"])
        assert all(e.exemplars == () for e in by_state["resolved"])
        page_firing = [e for e in by_state["firing"]
                       if e.severity == "page"][0]
        # Long window [2, 3] holds the bad point at 2.5 (trace id 25).
        assert [tid for _v, tid in page_firing.exemplars] == [25]
        assert page_firing.labels == (("method", "Bigtable/SearchValue"),)
        assert page_firing.burn_long >= 14.4

    def test_alert_series_written_to_monarch(self):
        monarch, _manager = run_incident_scenario()
        labels = {"slo": "search-latency", "severity": "page"}
        _times, states = monarch.read("alerts/state", labels)
        assert list(states) == [0.0, 1.0, 2.0, 2.0, 0.0]
        _times, burn = monarch.read("alerts/burn_rate_long", labels)
        assert len(burn) == 5
        assert burn[0] == 0.0 and burn[1] >= 14.4 and burn[4] == 0.0
        _times, short = monarch.read("alerts/burn_rate_short", labels)
        assert len(short) == 5

    def test_short_window_clamped_to_eval_interval(self):
        # The compiled page short window (0.083s) is far narrower than
        # the 1s eval cadence; without clamping it could never contain a
        # scrape point and the rule would be silently disabled. The
        # scenario firing at all proves the clamp works.
        _monarch, manager = run_incident_scenario()
        assert any(e.state == "firing" and e.severity == "page"
                   for e in manager.events)

    def test_firing_method_filters_during_incident(self):
        monarch = Monarch()
        monarch.write_sketch(METRIC, LABELS, 0.5, make_sketch(0.001))
        for t in (1.5, 2.5, 3.5):
            monarch.write_sketch(METRIC, LABELS, t, make_sketch(0.1))
        sim = Simulator()
        fleet_wide = make_spec(name="fleet", labels={})
        manager = AlertManager(sim, monarch, [make_spec(), fleet_wide],
                               interval_s=1.0)
        captured = []
        sim.at(3.5, lambda: captured.extend(manager.firing_method_filters()))
        sim.run_until(5.2)
        # Both specs fire on page+ticket; the labelled one names the
        # method, the fleet-wide one contributes None.
        assert captured.count("Bigtable/SearchValue") == 2
        assert captured.count(None) == 2

    def test_no_traffic_means_no_events(self):
        sim = Simulator()
        manager = AlertManager(sim, Monarch(), [make_spec()], interval_s=1.0)
        sim.run_until(10.0)
        assert manager.events == []
        assert manager.evaluations == 10

    def test_wall_clock_measures_overhead(self):
        ticks = iter(range(1000))
        sim = Simulator()
        manager = AlertManager(sim, Monarch(), [make_spec()], interval_s=1.0,
                               wall_clock=lambda: float(next(ticks)))
        sim.run_until(3.5)
        assert manager.eval_wall_s == pytest.approx(3.0)  # 1 tick per eval

    def test_stop_halts_evaluation(self):
        sim = Simulator()
        manager = AlertManager(sim, Monarch(), [make_spec()], interval_s=1.0)
        sim.at(2.5, manager.stop)
        sim.run_until(10.0)
        assert manager.evaluations == 2


class StubAlerts:
    def __init__(self, filters):
        self._filters = filters

    def firing_method_filters(self):
        return self._filters


class TestAdaptiveSamplingController:
    def test_validates_args(self):
        sim, dapper = Simulator(), DapperCollector()
        with pytest.raises(ValueError, match="interval_s"):
            AdaptiveSamplingController(sim, dapper, interval_s=0.0,
                                       trace_budget=10.0)
        with pytest.raises(ValueError, match="trace_budget"):
            AdaptiveSamplingController(sim, dapper, interval_s=1.0,
                                       trace_budget=0.0)
        with pytest.raises(ValueError, match="min_rate"):
            AdaptiveSamplingController(sim, dapper, interval_s=1.0,
                                       trace_budget=10.0, min_rate=1.5)

    def test_steers_hot_methods_down_cold_methods_stay(self):
        sim = Simulator()
        dapper = DapperCollector(rng=np.random.default_rng(0))
        ctl = AdaptiveSamplingController(sim, dapper, interval_s=1.0,
                                         trace_budget=10.0)
        for i in range(200):
            dapper.sample_root(1000 + i, "S/Hot")
        for i in range(5):
            dapper.sample_root(2000 + i, "S/Cold")
        sim.run_until(1.1)
        assert dapper.method_rate("S/Hot") == pytest.approx(0.05)
        assert dapper.method_rate("S/Cold") == 1.0
        assert ctl.history == [(1.0, "S/Cold", 1.0), (1.0, "S/Hot", 0.05)]

    def test_min_rate_floor(self):
        sim = Simulator()
        dapper = DapperCollector(rng=np.random.default_rng(0))
        AdaptiveSamplingController(sim, dapper, interval_s=1.0,
                                   trace_budget=1.0, min_rate=0.02)
        for i in range(1000):
            dapper.sample_root(i + 1, "S/Hot")
        sim.run_until(1.1)
        assert dapper.method_rate("S/Hot") == 0.02

    def test_boost_while_alert_fires_on_method(self):
        sim = Simulator()
        dapper = DapperCollector(rng=np.random.default_rng(0))
        alerts = StubAlerts(["S/Hot"])
        AdaptiveSamplingController(sim, dapper, interval_s=1.0,
                                   trace_budget=10.0, alerts=alerts,
                                   boost_rate=1.0)
        for i in range(200):
            dapper.sample_root(1000 + i, "S/Hot")
        for i in range(200):
            dapper.sample_root(3000 + i, "S/Other")
        sim.run_until(1.1)
        # The alerted method is boosted to full tracing; the other is
        # thinned toward the budget as usual.
        assert dapper.method_rate("S/Hot") == 1.0
        assert dapper.method_rate("S/Other") == pytest.approx(0.05)

    def test_fleet_wide_alert_boosts_every_method(self):
        sim = Simulator()
        dapper = DapperCollector(rng=np.random.default_rng(0))
        AdaptiveSamplingController(sim, dapper, interval_s=1.0,
                                   trace_budget=10.0,
                                   alerts=StubAlerts([None]))
        for i in range(200):
            dapper.sample_root(1000 + i, "S/Hot")
        sim.run_until(1.1)
        assert dapper.method_rate("S/Hot") == 1.0

    def test_rates_decay_back_after_resolution(self):
        sim = Simulator()
        dapper = DapperCollector(rng=np.random.default_rng(0))
        alerts = StubAlerts(["S/Hot"])
        AdaptiveSamplingController(sim, dapper, interval_s=1.0,
                                   trace_budget=10.0, alerts=alerts)
        for i in range(200):
            dapper.sample_root(1000 + i, "S/Hot")
        sim.at(1.5, lambda: alerts._filters.clear())
        sim.at(1.5, lambda: [dapper.sample_root(5000 + i, "S/Hot")
                             for i in range(200)])
        sim.run_until(2.1)
        # Boosted during the incident, steered back down after it.
        assert dapper.method_rate("S/Hot") == pytest.approx(0.05)


class TestAdaptiveSamplingUnderBursts:
    """Bursty open-loop arrivals: clipping, recovery, incident boost."""

    @staticmethod
    def offer(dapper, base, n, method="S/Burst"):
        for i in range(n):
            dapper.sample_root(base + i, method)

    def make_rig(self, alerts=None, min_rate=0.02):
        sim = Simulator()
        dapper = DapperCollector(rng=np.random.default_rng(0))
        ctl = AdaptiveSamplingController(sim, dapper, interval_s=1.0,
                                         trace_budget=10.0, alerts=alerts,
                                         min_rate=min_rate)
        return sim, dapper, ctl

    def schedule_poisson_arrivals(self, sim, dapper, interval_rates,
                                  seed=3):
        """One Poisson offer batch per interval, mid-interval."""
        rng = np.random.default_rng(seed)
        base = [10_000]
        for index, rate in enumerate(interval_rates):
            count = int(rng.poisson(rate))

            def fire(count=count):
                self.offer(dapper, base[0], count)
                base[0] += count
            sim.at(index + 0.5, fire)

    def test_burst_clips_to_min_rate_then_recovers_to_cap(self):
        sim, dapper, ctl = self.make_rig()
        # Quiet (~8/interval, under budget), a ~1200-offer burst, quiet.
        self.schedule_poisson_arrivals(sim, dapper, [8, 1200, 8])
        sim.run_until(3.1)
        rates = [rate for _t, _method, rate in ctl.history]
        assert rates[0] == 1.0          # under budget: capped at 1.0
        assert rates[1] == 0.02         # burst: clipped at min_rate
        assert rates[2] == 1.0          # budget recovered after burst
        assert dapper.method_rate("S/Burst") == 1.0

    def test_between_boundaries_rate_tracks_budget(self):
        sim, dapper, ctl = self.make_rig()
        self.offer(dapper, 1000, 40)
        sim.run_until(1.1)
        # 10 budget / 40 offered: thinned but nowhere near either clip.
        assert dapper.method_rate("S/Burst") == pytest.approx(0.25)

    def test_sustained_burst_stays_clipped_each_interval(self):
        sim, dapper, ctl = self.make_rig()
        self.schedule_poisson_arrivals(sim, dapper, [900, 900, 900])
        sim.run_until(3.1)
        assert [rate for _t, _m, rate in ctl.history] == [0.02] * 3

    def test_firing_alert_boosts_through_the_burst(self):
        alerts = StubAlerts(["S/Burst"])
        sim, dapper, ctl = self.make_rig(alerts=alerts)
        self.schedule_poisson_arrivals(sim, dapper, [1200, 1200, 30])
        # The incident resolves after interval 2; offers keep coming.
        sim.at(2.6, lambda: alerts._filters.clear())
        sim.run_until(3.1)
        rates = [rate for _t, _method, rate in ctl.history]
        # Boosted to full tracing while firing, despite the burst; then
        # steered back toward the budget once the alert resolves.
        assert rates[0] == 1.0 and rates[1] == 1.0
        assert rates[2] == pytest.approx(10.0 / 30.0, rel=0.5)
        assert rates[2] < 1.0

    def test_burst_offers_still_counted_while_thinned(self):
        # Offers made at a clipped 2% rate must still drive the next
        # interval's decision (the offer count is pre-sampling).
        sim, dapper, ctl = self.make_rig()
        self.offer(dapper, 1000, 1000)
        sim.run_until(1.1)
        assert dapper.method_rate("S/Burst") == 0.02
        self.offer(dapper, 5000, 1000)
        sim.run_until(2.1)
        assert ctl.history[-1][2] == 0.02
