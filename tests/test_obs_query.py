"""Tests for the vectorized span-warehouse query layer."""

import numpy as np
import pytest

from repro.obs.dapper import DapperCollector, Span
from repro.obs.query import (
    SpanFilter,
    SpanListSource,
    group_by_method,
    method_matrix,
    spans_matching,
    trace_spans,
    traces,
    tree_shape_stats,
)
from repro.obs.spanstore import ingest_spans
from repro.rpc.errors import StatusCode
from repro.rpc.stack import APP_COMPONENT, COMPONENTS, LatencyBreakdown


def make_span(span_id, trace_id=1, parent_id=None, service="KVStore",
              method="Get", status=StatusCode.OK, same_cluster=True,
              server_application=1e-3, **overrides) -> Span:
    kwargs = dict(
        trace_id=trace_id, span_id=span_id, parent_id=parent_id,
        service=service, method=method,
        client_cluster="dc0",
        server_cluster="dc0" if same_cluster else "dc1",
        server_machine="dc0-m1",
        start_time=float(span_id),
        breakdown=LatencyBreakdown(
            server_application=server_application,
            request_network_wire=2e-3 * (span_id % 3 + 1),
            response_network_wire=1e-3,
            server_recv_queue=0.5e-3,
        ),
        status=status,
        request_bytes=100 * span_id, response_bytes=50 * span_id,
        cpu_cycles=1e4 * span_id,
        annotations={"exo_cpu_util": span_id / 100.0},
    )
    kwargs.update(overrides)
    return Span(**kwargs)


@pytest.fixture
def mixed_spans():
    spans = []
    sid = 1
    for trace_id in range(1, 7):
        root = make_span(sid, trace_id=trace_id,
                         service="Frontend", method="Serve")
        spans.append(root)
        sid += 1
        for child in range(trace_id % 3 + 1):
            spans.append(make_span(
                sid, trace_id=trace_id, parent_id=root.span_id,
                service="KVStore" if child % 2 else "Spanner",
                method="Get" if child % 2 else "ReadRows",
                status=(StatusCode.OK if sid % 5
                        else StatusCode.UNAVAILABLE),
                same_cluster=sid % 4 != 0))
            sid += 1
    return spans


def sharded(tmp_path, spans, shard_size=4):
    return ingest_spans(spans, tmp_path, "q", shard_size=shard_size)


def test_group_by_is_merge_order_free(tmp_path, mixed_spans):
    # The same corpus queried unsharded and split into tiny shards must
    # produce identical aggregates: the fold contract.
    one = group_by_method(SpanListSource(mixed_spans))
    many = group_by_method(sharded(tmp_path, mixed_spans, shard_size=3))
    assert set(one) == set(many)
    for key, a in one.items():
        b = many[key]
        assert a.count == b.count
        assert a.error_count == b.error_count
        assert a.sum_value_s == pytest.approx(b.sum_value_s, rel=1e-12)
        assert np.allclose(a.component_sums, b.component_sums)
        assert np.array_equal(a.sketch.counts, b.sketch.counts)
        assert a.quantile(0.95) == b.quantile(0.95)


def test_parallel_fold_is_bit_identical(tmp_path, mixed_spans):
    # The multiprocess fold merges per-shard partials in shard order,
    # replaying the serial left-fold's float adds exactly — so equality
    # here is exact, not approximate.
    warehouse = sharded(tmp_path, mixed_spans, shard_size=3)
    serial = group_by_method(warehouse)
    for jobs in (2, 4, 16):  # more workers than shards is fine too
        parallel = group_by_method(warehouse, jobs=jobs)
        assert set(parallel) == set(serial)
        for key, a in serial.items():
            b = parallel[key]
            assert b.count == a.count
            assert b.error_count == a.error_count
            assert b.sum_value_s == a.sum_value_s
            assert np.array_equal(b.component_sums, a.component_sums)
            assert np.array_equal(b.sketch.counts, a.sketch.counts)
            assert b.sketch.sum == a.sketch.sum


def test_parallel_fold_respects_filters_and_metrics(tmp_path, mixed_spans):
    warehouse = sharded(tmp_path, mixed_spans, shard_size=3)
    where = SpanFilter(service="Frontend", ok_only=False)
    serial = group_by_method(warehouse, where, metric="tax")
    parallel = group_by_method(warehouse, where, metric="tax", jobs=2)
    assert set(parallel) == set(serial)
    for key, a in serial.items():
        assert parallel[key].count == a.count
        assert parallel[key].sum_value_s == a.sum_value_s
    # Unknown-name filters stay an empty result through the pool path.
    assert group_by_method(warehouse, SpanFilter(service="NoSuch"),
                           jobs=2) == {}


def test_parallel_fold_falls_back_for_list_sources(mixed_spans):
    # jobs > 1 on a non-warehouse source (or a single shard) quietly
    # runs the serial fold: there is nothing to parallelize over.
    source = SpanListSource(mixed_spans)
    assert group_by_method(source, jobs=4).keys() == (
        group_by_method(source).keys())


def test_group_by_counts_and_errors(mixed_spans):
    groups = group_by_method(SpanListSource(mixed_spans))
    ok = [s for s in mixed_spans if s.status is StatusCode.OK]
    errors = [s for s in mixed_spans if s.status is not StatusCode.OK]
    assert sum(g.count for g in groups.values()) == len(ok)
    assert sum(g.error_count for g in groups.values()) == len(errors)
    frontend = groups[("Frontend", "Serve")]
    assert frontend.full_method == "Frontend/Serve"
    expect = [s.completion_time for s in ok if s.service == "Frontend"]
    assert frontend.count == len(expect)
    assert frontend.mean_value_s == pytest.approx(float(np.mean(expect)))


def test_group_by_metric_variants(mixed_spans):
    source = SpanListSource(mixed_spans)
    tax = group_by_method(source, metric="tax")
    cycles = group_by_method(source, metric="cycles")
    app = group_by_method(source, metric=f"component:{APP_COMPONENT}")
    for key in tax:
        # total = tax + application, per definition of the tax metric.
        total = group_by_method(source)[key]
        assert tax[key].sum_value_s + app[key].sum_value_s == pytest.approx(
            total.sum_value_s)
        assert cycles[key].count == total.count
    with pytest.raises(KeyError, match="unknown metric"):
        group_by_method(source, metric="bogus")
    with pytest.raises(KeyError, match="unknown component"):
        group_by_method(source, metric="component:bogus")


def test_filters_compile_to_masks(tmp_path, mixed_spans):
    warehouse = sharded(tmp_path, mixed_spans)
    only_kv = spans_matching(
        warehouse, SpanFilter(service="KVStore", ok_only=False))
    assert only_kv == [s for s in mixed_spans if s.service == "KVStore"]
    intra = spans_matching(
        warehouse, SpanFilter(ok_only=False, intra_cluster_only=True))
    assert intra == [s for s in mixed_spans
                     if s.client_cluster == s.server_cluster]
    # Unknown names are an empty result, not an error.
    assert spans_matching(warehouse, SpanFilter(service="NoSuch")) == []
    assert group_by_method(warehouse, SpanFilter(service="NoSuch")) == {}


def test_method_matrix_matches_collector_bit_for_bit(tmp_path, mixed_spans):
    collector = DapperCollector(sampling_rate=1.0)
    for s in mixed_spans:
        collector.record(s)
    warehouse = sharded(tmp_path, mixed_spans)
    for service, method in (("Frontend", "Serve"), ("Spanner", "ReadRows")):
        engine = collector.matrix_for_method(f"{service}/{method}")
        observer = method_matrix(warehouse, service, method)
        assert np.array_equal(engine.values, observer.values)
    empty = method_matrix(warehouse, "NoSuch", "Method")
    assert empty.values.shape == (0, len(COMPONENTS))


def test_trace_reassembly_across_shards(tmp_path, mixed_spans):
    warehouse = sharded(tmp_path, mixed_spans, shard_size=3)
    by_trace = traces(warehouse)
    assert set(by_trace) == {s.trace_id for s in mixed_spans}
    for tid, spans in by_trace.items():
        assert spans == [s for s in mixed_spans if s.trace_id == tid]
        assert trace_spans(warehouse, tid) == spans
    newest = traces(warehouse, limit=2)
    assert sorted(newest, reverse=True) == sorted(by_trace, reverse=True)[:2]


def test_tree_shape_stats(tmp_path, mixed_spans):
    warehouse = sharded(tmp_path, mixed_spans, shard_size=5)
    shape = tree_shape_stats(warehouse)
    assert shape.n_traces == 6
    assert shape.n_spans == len(mixed_spans)
    assert shape.n_orphans == 0
    # Every trace here is a root plus direct children: depth exactly 2.
    assert list(shape.depths) == [2] * 6
    assert shape.size_quantile(1.0) == max(
        sum(1 for s in mixed_spans if s.trace_id == t) for t in range(1, 7))
    assert shape.depth_quantile(0.5) == 2.0


def test_tree_shape_orphans_counted_as_roots():
    # A child whose parent span was never stored (head-sampled partial
    # tree): treated as a root, counted as an orphan.
    orphan = make_span(99, trace_id=5, parent_id=12345)
    shape = tree_shape_stats(SpanListSource([orphan]))
    assert shape.n_orphans == 1
    assert shape.n_traces == 1
    assert list(shape.depths) == [1]


def test_deep_chain_depth_resolution():
    spans = [make_span(1, trace_id=9)]
    for i in range(2, 40):
        spans.append(make_span(i, trace_id=9, parent_id=i - 1))
    shape = tree_shape_stats(SpanListSource(spans))
    assert list(shape.sizes) == [39]
    assert list(shape.depths) == [39]


def test_span_list_source_empty():
    source = SpanListSource([])
    assert source.n_spans == 0
    assert group_by_method(source) == {}
    assert tree_shape_stats(source).n_traces == 0
