"""Tests for the columnar on-disk span warehouse."""

import json

import numpy as np
import pytest

from repro.obs.dapper import Span
from repro.obs.spanstore import (
    SpanColumns,
    SpanStore,
    SpanStoreError,
    SpanStoreSink,
    SpanWarehouse,
    StringTables,
    ingest_spans,
    ingest_trace_file,
)
from repro.obs.trace_io import write_traces
from repro.rpc.errors import StatusCode
from repro.rpc.stack import COMPONENTS, LatencyBreakdown


def make_span(span_id=1, trace_id=42, parent_id=7, status=StatusCode.OK,
              **overrides) -> Span:
    kwargs = dict(
        trace_id=trace_id, span_id=span_id, parent_id=parent_id,
        service="Spanner", method="ReadRows",
        client_cluster="us-central-dc0-c0",
        server_cluster="europe-west-dc1-c2",
        server_machine="europe-west-dc1-c2-m3",
        start_time=123.456 + span_id,
        breakdown=LatencyBreakdown(
            server_application=1.5e-3, request_network_wire=40e-3,
            response_network_wire=41e-3, server_recv_queue=0.2e-3,
        ),
        status=status,
        request_bytes=800, response_bytes=2500, cpu_cycles=0.031,
        annotations={"exo_cpu_util": 0.62, "hedge_attempt": float(span_id)},
    )
    kwargs.update(overrides)
    return Span(**kwargs)


def corpus(n=25):
    # A few traces, mixed services/statuses, some annotation-free spans.
    spans = []
    for i in range(n):
        spans.append(make_span(
            span_id=i + 1,
            trace_id=100 + i // 5,
            parent_id=(i % 5) or None,   # first span of each trace is a root
            service="Spanner" if i % 3 else "KVStore",
            method="ReadRows" if i % 2 else "SearchValue",
            status=StatusCode.OK if i % 7 else StatusCode.DEADLINE_EXCEEDED,
            annotations={} if i % 4 == 0 else {"exo_cpu_util": i / n},
        ))
    return spans


def test_span_columns_roundtrip_is_lossless():
    spans = corpus(17)
    tables = StringTables()
    columns = SpanColumns.from_spans(spans, tables)
    assert columns.n_spans == 17
    back = columns.to_spans(tables)
    assert back == spans  # Span is a dataclass: field-exact equality


def test_sink_spills_shards_and_commits_manifest(tmp_path):
    spans = corpus(25)
    sink = SpanStoreSink(SpanStore(tmp_path, "run"), shard_size=10)
    for s in spans:
        assert sink.record(s) is True
    assert sink.spans_spilled == 20          # two full shards
    assert sink.n_spans == 25                # plus the buffered tail
    assert not sink.closed

    # Pre-commit the run is unreadable: no manifest, readers refuse.
    with pytest.raises(SpanStoreError, match="no committed span warehouse"):
        SpanWarehouse.open(tmp_path, "run")

    warehouse = sink.close()
    assert sink.closed
    assert warehouse.n_shards == 3
    assert warehouse.n_spans == 25
    assert [c.n_spans for c in warehouse.iter_columns()] == [10, 10, 5]
    assert list(warehouse.iter_spans()) == spans
    # Closing twice is idempotent; recording after close raises.
    sink.close()
    with pytest.raises(SpanStoreError, match="closed"):
        sink.record(spans[0])


def test_sink_live_view_sees_spilled_and_buffered(tmp_path):
    spans = corpus(25)
    sink = SpanStoreSink(SpanStore(tmp_path, "run"), shard_size=10)
    sink.record_all(spans)
    live = [c.n_spans for c in sink.iter_columns()]
    assert live == [10, 10, 5]
    got = []
    for c in sink.iter_columns():
        got.extend(c.to_spans(sink.tables))
    assert got == spans


def test_sink_context_manager_commits_only_on_clean_exit(tmp_path):
    with SpanStoreSink(SpanStore(tmp_path, "ok"), shard_size=4) as sink:
        sink.record_all(corpus(9))
    assert SpanWarehouse.open(tmp_path, "ok").n_spans == 9

    with pytest.raises(RuntimeError):
        with SpanStoreSink(SpanStore(tmp_path, "crash"), shard_size=4) as s2:
            s2.record_all(corpus(9))
            raise RuntimeError("writer died")
    with pytest.raises(SpanStoreError):
        SpanWarehouse.open(tmp_path, "crash")


def test_corrupt_shard_is_a_miss_not_garbage(tmp_path):
    warehouse = ingest_spans(corpus(25), tmp_path, "run", shard_size=10)
    # Truncate one column of shard 1: the whole shard must read as a miss
    # and its files must be unlinked, never surfaced as partial rows.
    victim = warehouse.store.shard_paths(1)["span_ids"]
    victim.write_bytes(victim.read_bytes()[:16])
    seen = [c.n_spans for c in warehouse.iter_columns()]
    assert seen == [10, 5]
    assert warehouse.missing_shards == [1]
    assert not victim.exists()
    # n_spans still reports the manifest count (misses are surfaced, not
    # silently deducted).
    assert warehouse.n_spans == 25


def test_shard_with_wrong_span_count_is_dropped(tmp_path):
    warehouse = ingest_spans(corpus(25), tmp_path, "run", shard_size=10)
    store = warehouse.store
    # Overwrite shard 0 with a shard of the wrong length (manifest says 10).
    tables = StringTables()
    store.put(0, SpanColumns.from_spans(corpus(3), tables))
    assert [c.n_spans for c in warehouse.iter_columns()] == [10, 5]
    assert warehouse.missing_shards == [0]


def test_manifest_rejects_foreign_and_corrupt(tmp_path):
    ingest_spans(corpus(5), tmp_path, "run", shard_size=10)
    # Foreign run_key: the manifest names another run.
    doc = json.loads((tmp_path / "run" / "manifest.json").read_text())
    assert doc["run_key"] == "run"
    other = SpanStore(tmp_path, "other")
    assert other.manifest() is None
    # Corrupt JSON reads as missing.
    (tmp_path / "run" / "manifest.json").write_text("{not json")
    with pytest.raises(SpanStoreError):
        SpanWarehouse.open(tmp_path, "run")


def test_ingest_trace_file_matches_direct_ingest(tmp_path):
    spans = corpus(25)
    trace_file = tmp_path / "spans.dtrc"
    write_traces(spans, str(trace_file))
    via_file = ingest_trace_file(str(trace_file), tmp_path, "from-file",
                                 shard_size=8)
    via_spans = ingest_spans(spans, tmp_path, "direct", shard_size=8)
    assert via_file.n_spans == via_spans.n_spans == 25
    assert list(via_file.iter_spans()) == list(via_spans.iter_spans()) == spans


def test_columns_helpers_match_span_semantics():
    spans = corpus(20)
    tables = StringTables()
    columns = SpanColumns.from_spans(spans, tables)
    assert np.allclose(columns.totals(),
                       [s.completion_time for s in spans])
    assert list(columns.ok_mask()) == [s.status is StatusCode.OK
                                       for s in spans]
    matrix = columns.matrix(columns.ok_mask())
    assert matrix.values.shape == (sum(columns.ok_mask()), len(COMPONENTS))
    key_id = tables.ann_keys.id_of("exo_cpu_util")
    rows, values = columns.annotation_values(key_id)
    expect = [(i, s.annotations["exo_cpu_util"])
              for i, s in enumerate(spans) if "exo_cpu_util" in s.annotations]
    assert list(rows) == [r for r, _ in expect]
    assert list(values) == [v for _, v in expect]


def test_validation_errors():
    with pytest.raises(ValueError, match="run_key"):
        SpanStore("/tmp", "a/b")
    with pytest.raises(ValueError, match="shard_size"):
        SpanStoreSink(SpanStore("/tmp", "x"), shard_size=0)
