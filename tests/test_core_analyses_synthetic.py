"""Exact-answer tests for the Tier-A analyzers on hand-built samples.

The fixture-based tests check shapes on realistic data; these pin the
arithmetic with tiny synthetic fleets whose statistics are known in
closed form.
"""

import numpy as np
import pytest

from repro.core.cycles import analyze_method_cycles
from repro.core.fleetsample import FleetSample, MethodSummary, _PCTS
from repro.core.popularity import analyze_popularity
from repro.core.tax import analyze_fleet_tax, analyze_netstack, analyze_queueing
from repro.obs.gwp import GwpProfiler
from repro.rpc.errors import StatusCode


def make_summary(name: str, median_rct: float, popularity: float,
                 queue_p99: float = 1e-3,
                 netstack_p99: float = 5e-3) -> MethodSummary:
    """A summary whose percentile ladders are simple multiples."""
    def ladder(median, p99):
        # Piecewise-linear through (p1, p50, p99) anchor indices, so the
        # p50 and p99 columns hold exactly the requested values.
        idx = np.arange(len(_PCTS), dtype=float)
        anchors_x = [0.0, float(_PCTS.index(50)), float(len(_PCTS) - 1)]
        anchors_y = [median * 0.1, median, p99]
        return np.interp(idx, anchors_x, anchors_y)

    return MethodSummary(
        full_method=f"Svc/{name}", service="Svc", popularity=popularity,
        median_app_s=median_rct, n_samples=100,
        rct=ladder(median_rct, median_rct * 10),
        queueing=ladder(queue_p99 / 10, queue_p99),
        netstack=ladder(netstack_p99 / 10, netstack_p99),
        tax_ratio=np.linspace(0.01, 0.5, len(_PCTS)),
        request_bytes=ladder(1000, 10000),
        response_bytes=ladder(300, 3000),
        size_ratio=np.linspace(0.1, 5.0, len(_PCTS)),
        cycles=ladder(0.02, 0.2),
        mean_rct=median_rct * 1.5, mean_tax=median_rct * 0.03,
        mean_queue=median_rct * 0.01, mean_wire=median_rct * 0.015,
        mean_proc=median_rct * 0.005,
        mean_request_bytes=2000.0, mean_response_bytes=600.0,
        mean_cycles=0.05, mean_app_cycles=0.04,
    )


def make_fleet(summaries) -> FleetSample:
    return FleetSample(
        methods=list(summaries), gwp=GwpProfiler(),
        fleet_mean_rct=sum(m.popularity * m.mean_rct for m in summaries),
        fleet_mean_tax=sum(m.popularity * m.mean_tax for m in summaries),
        fleet_mean_queue=sum(m.popularity * m.mean_queue for m in summaries),
        fleet_mean_wire=sum(m.popularity * m.mean_wire for m in summaries),
        fleet_mean_proc=sum(m.popularity * m.mean_proc for m in summaries),
        tail_mean_rct=1.0, tail_mean_tax=0.3, tail_mean_queue=0.1,
        tail_mean_wire=0.15, tail_mean_proc=0.05,
        error_counts={StatusCode.CANCELLED: 0.9, StatusCode.NOT_FOUND: 0.1},
        error_wasted_cycles={StatusCode.CANCELLED: 0.95,
                             StatusCode.NOT_FOUND: 0.05},
        total_calls_sampled=1000,
    )


@pytest.fixture()
def tiny_fleet():
    # Three methods: hot+fast, medium, cold+slow.
    return make_fleet([
        make_summary("fast", 1e-3, 0.7, queue_p99=0.5e-3, netstack_p99=2e-3),
        make_summary("mid", 30e-3, 0.25, queue_p99=5e-3, netstack_p99=50e-3),
        make_summary("slow", 1.0, 0.05, queue_p99=200e-3, netstack_p99=800e-3),
    ])


def test_fleet_tax_exact(tiny_fleet):
    r = analyze_fleet_tax(tiny_fleet)
    # tax fraction = sum(pop*mean_tax)/sum(pop*mean_rct) = 0.03/1.5 = 0.02
    assert r.tax_fraction == pytest.approx(0.02)
    f = r.component_fractions
    assert f["network_wire"] == pytest.approx(0.01)
    assert f["queueing"] == pytest.approx(0.02 / 3)
    assert f["proc_stack"] == pytest.approx(0.01 / 3)
    assert r.tail_tax_fraction == pytest.approx(0.3)


def test_netstack_quantiles_exact(tiny_fleet):
    r = analyze_netstack(tiny_fleet)
    # Three methods: P99 netstack values are 2ms / 50ms / 800ms.
    assert r.p99_quantiles[0.50] == pytest.approx(50e-3)
    # With three methods, the 1%/99% quantiles interpolate slightly
    # inward from the extreme methods.
    assert r.p99_quantiles[0.01] == pytest.approx(2e-3, rel=0.5)
    assert r.p99_quantiles[0.99] == pytest.approx(800e-3, rel=0.5)


def test_queueing_fractions_exact(tiny_fleet):
    r = analyze_queueing(tiny_fleet)
    # Medians are p99/10: 0.05ms, 0.5ms, 20ms -> two of three <= 360us.
    assert r.frac_median_under_360us == pytest.approx(1 / 3)
    # P99s: 0.5ms, 5ms, 200ms -> all <= 102ms except the slow one.
    assert r.frac_p99_under_102ms == pytest.approx(2 / 3)


def test_popularity_shares_exact(tiny_fleet):
    r = analyze_popularity(tiny_fleet)
    assert r.top1_share == pytest.approx(0.7)
    assert r.top10_share == pytest.approx(1.0)
    # Time shares: pop*mean_rct = 1.05e-3, 11.25e-3, 75e-3.
    slow_share = 75e-3 / (1.05e-3 + 11.25e-3 + 75e-3)
    assert r.slowest_time_share == pytest.approx(slow_share)


def test_method_cycles_bands(tiny_fleet):
    r = analyze_method_cycles(tiny_fleet)
    # All methods share the same cycles ladder: bands collapse.
    lo, hi = r.p10_band
    assert lo == pytest.approx(hi)
    assert r.p99_over_median_median == pytest.approx(0.2 / 0.02)
