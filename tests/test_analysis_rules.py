"""Per-rule tests: each rule fires on a known-bad fixture and stays
silent on a known-good one."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.config import LintConfig
from repro.analysis.runner import lint_paths

NO_BASELINE = Path("/nonexistent-baseline.json")


def lint_snippet(tmp_path, source, *, subpath="repro/mod.py", **config_kwargs):
    """Write ``source`` under tmp_path and lint it with a bare config."""
    target = tmp_path / subpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    config_kwargs.setdefault("root", str(tmp_path))
    config_kwargs.setdefault("baseline", None)
    config_kwargs.setdefault("wallclock_allow_paths", ())
    config_kwargs.setdefault("random_allow_paths", ())
    config = LintConfig(**config_kwargs)
    return lint_paths([target], config, baseline_path=NO_BASELINE)


def codes(report):
    return [f.code for f in report.findings]


class TestRL001WallClock:
    def test_fires_on_time_calls(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            import time
            start = time.perf_counter()
            time.sleep(0.1)
        """)
        assert codes(report) == ["RL001", "RL001"]

    def test_fires_on_aliased_and_from_imports(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            import time as t
            from time import monotonic
            a = t.time()
            b = monotonic()
        """)
        assert codes(report) == ["RL001", "RL001"]

    def test_fires_on_datetime_now(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            from datetime import datetime
            stamp = datetime.now()
        """)
        assert codes(report) == ["RL001"]

    def test_fires_on_uncalled_reference(self, tmp_path):
        # `clock=time.monotonic` as a default smuggles in the wall clock
        # without a call expression.
        report = lint_snippet(tmp_path, """\
            import time
            def f(clock=time.monotonic):
                return clock()
        """)
        assert codes(report) == ["RL001"]

    def test_silent_on_engine_clock_and_benign_time(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            import time
            def f(sim):
                return sim.now, time.strftime("%Y")
        """)
        assert codes(report) == []

    def test_silent_under_allowlisted_path(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            import time
            t0 = time.perf_counter()
        """, subpath="benchmarks/bench.py",
            wallclock_allow_paths=("benchmarks/",))
        assert codes(report) == []


class TestRL002GlobalRandom:
    def test_fires_on_stdlib_random(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            import random
            x = random.randint(0, 10)
            random.seed(4)
        """)
        assert codes(report) == ["RL002", "RL002"]

    def test_fires_on_numpy_global_draws(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            import numpy as np
            x = np.random.rand(3)
            np.random.seed(0)
        """)
        assert codes(report) == ["RL002", "RL002"]

    def test_fires_on_unseeded_default_rng(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert codes(report) == ["RL002"]

    def test_silent_on_seeded_generators(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            import numpy as np
            def f(rng: np.random.Generator, seed: int):
                backup = np.random.default_rng(seed)
                return rng.normal(), backup.normal()
        """)
        assert codes(report) == []

    def test_silent_under_allowlisted_path(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            import numpy as np
            rng = np.random.default_rng()
        """, subpath="repro/sim/random.py",
            random_allow_paths=("repro/sim/random.py",))
        assert codes(report) == []


class TestRL003Units:
    def test_fires_on_missing_suffix(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            def f(latency, queue_delay):
                total_rtt = latency + queue_delay
                return total_rtt
        """)
        assert codes(report).count("RL003") == 3

    def test_fires_on_mixed_unit_arithmetic(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            def f(wait_us, service_ms):
                return wait_us + service_ms
        """)
        [finding] = report.findings
        assert finding.code == "RL003"
        assert "_us" in finding.message and "_ms" in finding.message

    def test_fires_on_mixed_dimension_comparison(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            def f(wait_ms, payload_bytes):
                return wait_ms > payload_bytes
        """)
        [finding] = report.findings
        assert "dimensions" in finding.message

    def test_fires_on_augmented_assignment(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            def f(total_us, extra_ms):
                total_us += extra_ms
                return total_us
        """)
        assert codes(report) == ["RL003"]

    def test_silent_on_consistent_units_and_conversion(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            def f(wait_us, service_us, budget_ms):
                total_us = wait_us + service_us
                return total_us < budget_ms * 1000.0
        """)
        assert codes(report) == []

    def test_silent_on_dimensionless_names(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            def f(xs, ys):
                latency_corr = 0.5
                hedge_ratio_latency = 0.1
                return latency_corr, hedge_ratio_latency
        """)
        assert codes(report) == []


class TestRL004Layering:
    def test_fires_on_upward_import(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            from repro.obs.dapper import Span
        """, subpath="repro/rpc/channel.py")
        [finding] = report.findings
        assert finding.code == "RL004"
        assert "upward import" in finding.message

    def test_silent_on_downward_and_same_layer_imports(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            from repro.sim.engine import Simulator
            from repro.net.latency import NetworkModel
        """, subpath="repro/rpc/stack.py")
        assert codes(report) == []

    def test_standalone_package_may_not_import_layers(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            from repro.sim.engine import Simulator
        """, subpath="repro/analysis/runner.py")
        [finding] = report.findings
        assert finding.code == "RL004"
        assert "standalone" in finding.message

    def test_layers_may_not_import_standalone(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            from repro.analysis import lint_paths
        """, subpath="repro/core/report.py")
        [finding] = report.findings
        assert finding.code == "RL004"

    def test_skips_files_outside_root_package(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            from repro.studies import run_all
        """, subpath="scripts/driver.py")
        assert codes(report) == []


class TestRL005MutableDefaults:
    def test_fires_on_literal_defaults(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            def f(items=[], mapping={}, tags=set()):
                return items, mapping, tags
        """)
        assert codes(report) == ["RL005", "RL005", "RL005"]

    def test_fires_on_kwonly_and_constructor_defaults(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            def f(*, cache=dict(), queue=list()):
                return cache, queue
        """)
        assert codes(report) == ["RL005", "RL005"]

    def test_silent_on_immutable_defaults(self, tmp_path):
        report = lint_snippet(tmp_path, """\
            def f(items=(), name="x", count=0, other=None, flags=frozenset()):
                return items, name, count, other, flags
        """)
        assert codes(report) == []


class TestParseErrors:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        report = lint_snippet(tmp_path, "def broken(:\n")
        [finding] = report.findings
        assert finding.code == "RL000"
        assert "cannot parse" in finding.message
