"""The linter's contract with this repository: ``repro-lint src/repro``
is clean, the shipped baseline is empty, and every pragma in the tree
carries a justification."""

import json
import re
from pathlib import Path

from repro.analysis.cli import main
from repro.analysis.config import load_config
from repro.analysis.runner import lint_paths

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def test_repo_lints_clean():
    config = load_config(pyproject=REPO / "pyproject.toml")
    report = lint_paths([SRC], config)
    assert report.findings == [], "\n".join(f.render() for f in report.findings)
    assert report.files_scanned > 70


def test_cli_exits_zero_on_repo(capsys):
    assert main([str(SRC), "--config", str(REPO / "pyproject.toml"),
                 "--format=json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["clean"] is True


def test_shipped_baseline_is_empty():
    baseline = json.loads(
        (REPO / "tools" / "repro_lint_baseline.json").read_text())
    assert baseline == {"version": 1, "findings": []}


def test_every_pragma_carries_a_justification():
    pragma = re.compile(r"#\s*repro-lint:\s*disable(?:-file)?=[A-Za-z0-9,]+")
    for path in sorted(SRC.rglob("*.py")):
        if (SRC / "analysis") in path.parents:
            continue  # the linter's own docs/docstrings describe the syntax
        for i, line in enumerate(path.read_text().splitlines(), 1):
            match = pragma.search(line)
            if match is None:
                continue
            trailer = line[match.end():].strip()
            assert trailer.startswith("- "), (
                f"{path}:{i}: pragma without '- <justification>' trailer")
