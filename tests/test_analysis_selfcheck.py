"""The linter's contract with this repository: ``repro-lint src/repro``
is clean, the shipped baseline is empty, and every pragma in the tree
carries a justification."""

import json
import re
from pathlib import Path

from repro.analysis.cli import main
from repro.analysis.config import load_config
from repro.analysis.runner import lint_paths

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def test_repo_lints_clean():
    config = load_config(pyproject=REPO / "pyproject.toml")
    report = lint_paths([SRC], config)
    assert report.findings == [], "\n".join(f.render() for f in report.findings)
    assert report.files_scanned > 70


def test_whole_repo_lints_clean_including_program_rules():
    # The CI gate's scope: src + tools + benchmarks, every rule family.
    config = load_config(pyproject=REPO / "pyproject.toml")
    report = lint_paths([SRC.parent, REPO / "tools", REPO / "benchmarks"],
                        config)
    assert report.findings == [], "\n".join(f.render() for f in report.findings)
    # The cross-module families are live, not vacuously clean: the
    # worker-state and cache-key pragmas in core/parallel.py are
    # suppressing real findings.
    assert report.suppressed_pragma >= 4


def test_program_rules_find_the_pragmad_state_when_unsuppressed():
    # Re-lint just the parallel runner with RL006/RL007 selected and the
    # pragmas intact: clean.  The suppressed findings are the worker
    # globals and the deliberately unkeyed jobs/catalog — prove they are
    # still detected by checking a pragma-stripped copy would fire.
    import textwrap
    import tempfile
    source = (SRC / "core" / "parallel.py").read_text()
    stripped = re.sub(r"\s*# repro-lint: disable=[^\n]*", "", source)
    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "src" / "repro" / "core" / "parallel.py"
        target.parent.mkdir(parents=True)
        target.write_text(textwrap.dedent(stripped))
        config = load_config(pyproject=REPO / "pyproject.toml")
        from dataclasses import replace
        config = replace(config, root=tmp, baseline=None,
                         select=("RL006", "RL007"))
        report = lint_paths([target], config,
                            baseline_path=Path("/nonexistent-baseline.json"))
    found = {f.code for f in report.findings}
    assert found == {"RL006", "RL007"}, "\n".join(
        f.render() for f in report.findings)


def test_cli_exits_zero_on_repo(capsys):
    assert main([str(SRC), "--config", str(REPO / "pyproject.toml"),
                 "--format=json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["clean"] is True


def test_shipped_baseline_is_empty():
    baseline = json.loads(
        (REPO / "tools" / "repro_lint_baseline.json").read_text())
    assert baseline == {"version": 1, "findings": []}


def test_every_pragma_carries_a_justification():
    pragma = re.compile(r"#\s*repro-lint:\s*disable(?:-file)?=[A-Za-z0-9,]+")
    for path in sorted(SRC.rglob("*.py")):
        if (SRC / "analysis") in path.parents:
            continue  # the linter's own docs/docstrings describe the syntax
        for i, line in enumerate(path.read_text().splitlines(), 1):
            match = pragma.search(line)
            if match is None:
                continue
            trailer = line[match.end():].strip()
            assert trailer.startswith("- "), (
                f"{path}:{i}: pragma without '- <justification>' trailer")
