"""Tests for Dapper trace serialization."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.dapper import Span
from repro.obs.trace_io import (
    TraceIOError,
    TraceWriter,
    load_collector,
    read_traces,
    span_from_bytes,
    span_to_bytes,
    write_traces,
)
from repro.rpc.errors import StatusCode
from repro.rpc.stack import COMPONENTS, LatencyBreakdown


def make_span(span_id=1, **overrides) -> Span:
    kwargs = dict(
        trace_id=42, span_id=span_id, parent_id=7,
        service="Spanner", method="ReadRows",
        client_cluster="us-central-dc0-c0",
        server_cluster="europe-west-dc1-c2",
        server_machine="europe-west-dc1-c2-m3",
        start_time=123.456,
        breakdown=LatencyBreakdown(
            server_application=1.5e-3, request_network_wire=40e-3,
            response_network_wire=41e-3, server_recv_queue=0.2e-3,
        ),
        status=StatusCode.OK,
        request_bytes=800, response_bytes=2500, cpu_cycles=0.031,
        annotations={"exo_cpu_util": 0.62, "hedge_attempt": 0.0},
    )
    kwargs.update(overrides)
    return Span(**kwargs)


def test_span_roundtrip():
    span = make_span()
    back = span_from_bytes(span_to_bytes(span))
    assert back.trace_id == span.trace_id
    assert back.span_id == span.span_id
    assert back.parent_id == span.parent_id
    assert back.full_method == span.full_method
    assert back.server_machine == span.server_machine
    assert back.status is StatusCode.OK
    assert back.breakdown == span.breakdown
    assert back.annotations == span.annotations
    assert back.completion_time == pytest.approx(span.completion_time)


def test_root_span_parent_none():
    span = make_span(parent_id=None)
    assert span_from_bytes(span_to_bytes(span)).parent_id is None


def test_trace_writer_byte_identical_to_one_shot():
    spans = [make_span(span_id=i) for i in range(100)]
    one_shot = io.BytesIO()
    write_traces(spans, one_shot)
    for flush_every in (1, 7, 512):
        streamed = io.BytesIO()
        with TraceWriter(streamed, flush_every=flush_every) as writer:
            for span in spans:
                writer.append(span)
        assert streamed.getvalue() == one_shot.getvalue(), flush_every


def test_trace_writer_flushed_prefix_is_readable(tmp_path):
    # Because records are length-prefixed, every flushed prefix must be a
    # complete, readable trace file — the crash-durability property.
    path = str(tmp_path / "partial.dtrc")
    writer = TraceWriter(path, flush_every=10)
    for i in range(25):
        writer.append(make_span(span_id=i))
    # 20 spans flushed (two batches of 10), 5 still staged.
    with open(path, "rb") as f:
        prefix = f.read()
    assert [s.span_id for s in read_traces(prefix)] == list(range(20))
    writer.close()
    assert [s.span_id for s in read_traces(path)] == list(range(25))


def test_trace_writer_byte_threshold_flushes(tmp_path):
    path = str(tmp_path / "bytes.dtrc")
    writer = TraceWriter(path, flush_every=10_000, max_buffer_bytes=1)
    writer.append(make_span())
    # Every append overflows a 1-byte buffer: nothing stays staged.
    with open(path, "rb") as f:
        assert list(read_traces(f.read()))
    writer.close()


def test_trace_writer_is_a_span_sink(tmp_path):
    path = str(tmp_path / "sink.dtrc")
    with TraceWriter(path) as writer:
        assert writer.record(make_span(span_id=9)) is True
        assert writer.spans_written == 1
    assert [s.span_id for s in read_traces(path)] == [9]


def test_trace_writer_close_is_idempotent_append_after_raises(tmp_path):
    path = str(tmp_path / "closed.dtrc")
    writer = TraceWriter(path)
    writer.append(make_span())
    writer.close()
    writer.close()
    with pytest.raises(TraceIOError, match="closed"):
        writer.append(make_span())


def test_trace_writer_does_not_close_caller_streams():
    buf = io.BytesIO()
    with TraceWriter(buf) as writer:
        writer.append(make_span())
    assert not buf.closed  # caller-owned stream stays open
    assert list(read_traces(buf.getvalue()))


def test_trace_writer_validates_thresholds():
    with pytest.raises(ValueError, match="flush_every"):
        TraceWriter(io.BytesIO(), flush_every=0)
    with pytest.raises(ValueError, match="max_buffer_bytes"):
        TraceWriter(io.BytesIO(), max_buffer_bytes=0)


def test_error_status_preserved():
    span = make_span(status=StatusCode.CANCELLED)
    assert span_from_bytes(span_to_bytes(span)).status is StatusCode.CANCELLED


def test_file_roundtrip(tmp_path):
    spans = [make_span(span_id=i) for i in range(20)]
    path = str(tmp_path / "traces.dtrc")
    assert write_traces(spans, path) == 20
    loaded = list(read_traces(path))
    assert len(loaded) == 20
    assert [s.span_id for s in loaded] == list(range(20))


def test_buffer_roundtrip():
    buf = io.BytesIO()
    write_traces([make_span()], buf)
    loaded = list(read_traces(buf.getvalue()))
    assert len(loaded) == 1


def test_empty_trace_file():
    buf = io.BytesIO()
    assert write_traces([], buf) == 0
    assert list(read_traces(buf.getvalue())) == []


def test_bad_magic_rejected():
    with pytest.raises(TraceIOError, match=r"bad trace magic b'XXXX'"):
        list(read_traces(b"XXXX\x01"))


def test_too_short_for_magic():
    with pytest.raises(TraceIOError, match="need at least the 4-byte"):
        list(read_traces(b"DT"))
    with pytest.raises(TraceIOError, match="need at least the 4-byte"):
        list(read_traces(b""))


def test_truncated_header_varint():
    # A continuation bit with no following byte: the version varint never
    # terminates.
    with pytest.raises(TraceIOError, match="truncated trace header"):
        list(read_traces(b"DTRC\x80"))


def test_unsupported_version():
    with pytest.raises(TraceIOError, match="unsupported trace version 99"):
        list(read_traces(b"DTRC\x63"))


def test_truncated_record_rejected():
    buf = io.BytesIO()
    write_traces([make_span()], buf)
    data = buf.getvalue()
    with pytest.raises(TraceIOError,
                       match=r"truncated span record #0 at byte"):
        list(read_traces(data[:-5]))


def test_truncated_length_prefix():
    buf = io.BytesIO()
    write_traces([], buf)
    data = buf.getvalue() + b"\x80"  # unterminated length varint
    with pytest.raises(TraceIOError,
                       match=r"truncated length prefix for span record #0"):
        list(read_traces(data))


def test_corrupt_record_mid_stream():
    buf = io.BytesIO()
    write_traces([make_span(span_id=1), make_span(span_id=2)], buf)
    data = bytearray(buf.getvalue())
    # Find the second record and trample its payload so field decoding
    # fails; the error must name record #1 and wrap the codec error.
    first = span_to_bytes(make_span(span_id=1))
    second_start = data.index(first) + len(first) + 1  # + its length prefix
    for i in range(second_start, min(second_start + 8, len(data))):
        data[i] = 0xFF
    with pytest.raises(TraceIOError, match=r"span record #1 at byte"):
        list(read_traces(bytes(data)))


def test_wrong_component_count_is_trace_error():
    span = make_span()
    record = span_to_bytes(span)
    # Re-encode with a truncated components vector.
    from repro.obs.trace_io import SPAN_SCHEMA
    from repro.rpc.wire import decode_message, encode_message

    msg = decode_message(SPAN_SCHEMA, record)
    msg["components"] = msg["components"][:3]
    with pytest.raises(TraceIOError, match="3 components"):
        span_from_bytes(encode_message(SPAN_SCHEMA, msg))


def test_unknown_status_code_is_trace_error():
    from repro.obs.trace_io import SPAN_SCHEMA
    from repro.rpc.wire import decode_message, encode_message

    msg = decode_message(SPAN_SCHEMA, span_to_bytes(make_span()))
    msg["status"] = 9999
    with pytest.raises(TraceIOError, match="unknown status code 9999"):
        span_from_bytes(encode_message(SPAN_SCHEMA, msg))


def test_errors_never_leak_bare_wire_error():
    from repro.rpc.wire import WireError

    corrupt_streams = [b"", b"DT", b"XXXX\x01", b"DTRC\x80",
                       b"DTRC\x01\x80", b"DTRC\x01\x05\xff\xff"]
    for data in corrupt_streams:
        with pytest.raises(TraceIOError):
            list(read_traces(data))
        # TraceIOError subclasses WireError, so except WireError still
        # works for callers — but the type must be the specific one.
        try:
            list(read_traces(data))
        except WireError as err:
            assert isinstance(err, TraceIOError), data


def test_load_collector_supports_queries():
    buf = io.BytesIO()
    write_traces([make_span(span_id=i) for i in range(150)], buf)
    collector = load_collector(buf.getvalue())
    assert len(collector) == 150
    assert collector.methods() == ["Spanner/ReadRows"]
    matrix = collector.matrix_for_method("Spanner/ReadRows")
    assert len(matrix) == 150


@given(
    components=st.lists(st.floats(0, 10, allow_nan=False),
                        min_size=9, max_size=9),
    req=st.integers(0, 2**40),
    status=st.sampled_from(list(StatusCode)),
)
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(components, req, status):
    span = make_span(
        breakdown=LatencyBreakdown(**dict(zip(COMPONENTS, components))),
        request_bytes=req, status=status,
    )
    back = span_from_bytes(span_to_bytes(span))
    assert back.breakdown == span.breakdown
    assert back.request_bytes == req
    assert back.status is status
