"""Tests for the vectorized generator, parallel runner, and study cache.

Covers the PR's reproducibility contracts: vectorized and scalar tree
generation agree on shape-statistic *distributions*; `--jobs N` is
bit-identical to `--jobs 1` with spill on or off; a corrupt spill
segment is regenerated rather than trusted; and a warm cache hit
performs no tree generation at all.
"""

import numpy as np
import pytest

from repro.core.cache import StudyCache, study_key
from repro.core.calltree import build_generator, run_tree_study
from repro.core.parallel import (DEFAULT_SHARD_SIZE,
                                 run_critical_path_study_parallel,
                                 run_tree_study_cached,
                                 run_tree_study_parallel, shard_layout,
                                 spill_run_key)
from repro.core.shardstore import ShardStore
from repro.rpc.calltree import CallTreeGenerator, collect_shape_samples
from repro.sim.instrument import Probe
from repro.workloads.catalog import LAYER_LEAF


def _results_identical(a, b) -> bool:
    """Bitwise equality of two TreeShapeResults (per-method arrays too)."""
    if set(a.per_method_descendants) != set(b.per_method_descendants):
        return False
    for mid in a.per_method_descendants:
        if not np.array_equal(a.per_method_descendants[mid],
                              b.per_method_descendants[mid]):
            return False
        if not np.array_equal(a.per_method_ancestors[mid],
                              b.per_method_ancestors[mid]):
            return False
    return (a.descendants_median_q50 == b.descendants_median_q50
            and a.descendants_p90_q10 == b.descendants_p90_q10
            and a.descendants_p99_q10 == b.descendants_p99_q10
            and a.ancestors_p99_q50 == b.ancestors_p99_q50
            and a.max_depth_seen == b.max_depth_seen)


class TestVectorizedEquivalence:
    def _forest_stats(self, small_catalog, vectorized: bool):
        gen = build_generator(small_catalog, max_nodes=2000,
                              vectorized=vectorized)
        rng = np.random.default_rng(99)
        roots = [m.method_id for m in small_catalog.methods
                 if m.layer < LAYER_LEAF]
        chosen = np.asarray(roots * 4)
        stats = collect_shape_samples(gen, chosen, rng)
        desc = np.concatenate([np.asarray(v)
                               for v in stats.descendants.values()])
        anc = np.concatenate([np.asarray(v) for v in stats.ancestors.values()])
        return desc, anc

    def test_same_shape_distributions(self, small_catalog):
        """Vectorized and scalar paths draw from identical distributions.

        The RNG streams differ (batched vs per-node draws), so we compare
        distributions, not trees: means and quantiles of descendant and
        ancestor counts across a few hundred trees must agree within
        sampling noise.
        """
        vec_desc, vec_anc = self._forest_stats(small_catalog, True)
        sca_desc, sca_anc = self._forest_stats(small_catalog, False)
        assert np.isclose(vec_anc.mean(), sca_anc.mean(), rtol=0.15)
        assert abs(np.median(vec_anc) - np.median(sca_anc)) <= 1
        # Descendant tails are heavy; compare medians and log-means.
        assert abs(np.median(vec_desc) - np.median(sca_desc)) <= 2
        assert np.isclose(np.log1p(vec_desc).mean(),
                          np.log1p(sca_desc).mean(), rtol=0.2)

    def test_scalar_path_used_when_not_vectorized(self, small_catalog):
        gen = build_generator(small_catalog, vectorized=False)
        assert gen.children_batch is None and gen.fanout_batch is None
        vec = build_generator(small_catalog, vectorized=True)
        assert vec.children_batch is not None and vec.fanout_batch is not None


class TestShardLayout:
    def test_covers_forest(self):
        layout = shard_layout(150, shard_size=64)
        assert layout == [(0, 64), (1, 64), (2, 22)]

    def test_exact_multiple(self):
        assert shard_layout(128, shard_size=64) == [(0, 64), (1, 64)]

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            shard_layout(0)
        with pytest.raises(ValueError):
            shard_layout(10, shard_size=0)


class TestParallelDeterminism:
    def test_jobs_bit_identical(self, small_catalog):
        # shard_size=32 forces 4 shards so the merge order actually
        # differs between the two runs.
        r1 = run_tree_study_parallel(small_catalog, n_trees=100, seed=4,
                                     jobs=1, max_nodes=2000, shard_size=32)
        r2 = run_tree_study_parallel(small_catalog, n_trees=100, seed=4,
                                     jobs=2, max_nodes=2000, shard_size=32)
        assert _results_identical(r1, r2)

    def test_shard_size_is_part_of_the_result(self, small_catalog):
        """Shard boundaries seed the per-shard RNG streams, so shard_size
        is a study parameter, not a tuning knob — changing it changes the
        (valid) sample drawn."""
        r1 = run_tree_study_parallel(small_catalog, n_trees=100, seed=4,
                                     jobs=1, max_nodes=2000, shard_size=32)
        r2 = run_tree_study_parallel(small_catalog, n_trees=100, seed=4,
                                     jobs=1, max_nodes=2000, shard_size=64)
        assert not _results_identical(r1, r2)

    def test_seed_changes_result(self, small_catalog):
        r1 = run_tree_study_parallel(small_catalog, n_trees=100, seed=4,
                                     jobs=1, max_nodes=2000)
        r2 = run_tree_study_parallel(small_catalog, n_trees=100, seed=5,
                                     jobs=1, max_nodes=2000)
        assert not _results_identical(r1, r2)

    def test_matches_sequential_study_distribution(self, small_catalog):
        """Sharded runner agrees with run_tree_study distributionally."""
        sharded = run_tree_study_parallel(small_catalog, n_trees=200, seed=4,
                                          jobs=1, max_nodes=2000)
        threaded = run_tree_study(small_catalog, n_trees=200,
                                  rng=np.random.default_rng(4),
                                  max_nodes=2000)
        assert abs(sharded.ancestors_p99_q50
                   - threaded.ancestors_p99_q50) <= 3
        assert sharded.n_trees == threaded.n_trees == 200


class _SpillProbe(Probe):
    """Counts spill/fold events emitted by the streaming pipeline."""

    def __init__(self):
        self.spilled = []
        self.folded = []

    def shard_spilled(self, shard_index, n_trees, n_nodes, n_bytes):
        self.spilled.append((shard_index, n_trees, n_nodes, n_bytes))

    def shard_folded(self, shard_index, n_trees, n_nodes):
        self.folded.append((shard_index, n_trees, n_nodes))


class TestStreamingSpill:
    def test_spill_bit_identical_to_in_memory(self, small_catalog, tmp_path):
        mem = run_tree_study_parallel(small_catalog, n_trees=100, seed=4,
                                      jobs=1, max_nodes=2000, shard_size=32)
        spilled = run_tree_study_parallel(small_catalog, n_trees=100, seed=4,
                                          jobs=1, max_nodes=2000,
                                          shard_size=32,
                                          spill_dir=str(tmp_path))
        assert _results_identical(mem, spilled)

    def test_spill_with_jobs_bit_identical(self, small_catalog, tmp_path):
        mem = run_tree_study_parallel(small_catalog, n_trees=100, seed=4,
                                      jobs=1, max_nodes=2000, shard_size=32)
        spilled = run_tree_study_parallel(small_catalog, n_trees=100, seed=4,
                                          jobs=2, max_nodes=2000,
                                          shard_size=32,
                                          spill_dir=str(tmp_path))
        assert _results_identical(mem, spilled)

    def test_spill_reuse_generates_zero_trees(self, small_catalog, tmp_path,
                                              monkeypatch):
        first = run_tree_study_parallel(small_catalog, n_trees=100, seed=4,
                                        jobs=1, max_nodes=2000, shard_size=32,
                                        spill_dir=str(tmp_path))

        def exploding_forest(self, root_methods, rng):
            raise AssertionError("spill replay must not generate trees")

        monkeypatch.setattr(CallTreeGenerator, "generate_forest_flat",
                            exploding_forest)
        replay = run_tree_study_parallel(small_catalog, n_trees=100, seed=4,
                                         jobs=1, max_nodes=2000,
                                         shard_size=32,
                                         spill_dir=str(tmp_path))
        assert _results_identical(first, replay)

    def test_corrupt_spill_segment_regenerated(self, small_catalog,
                                               tmp_path):
        """A chopped column behaves as a miss: that shard (and only that
        shard) is regenerated from its derived seed, and the study result
        is still bit-identical."""
        first = run_tree_study_parallel(small_catalog, n_trees=100, seed=4,
                                        jobs=1, max_nodes=2000, shard_size=32,
                                        spill_dir=str(tmp_path))
        key = spill_run_key(small_catalog.config, seed=4, n_trees=100,
                            shard_size=32, max_nodes=2000)
        store = ShardStore(tmp_path, run_key=key)
        victim = store.shard_paths(1)["parents"]
        data = victim.read_bytes()
        victim.write_bytes(data[: len(data) // 2])

        probe = _SpillProbe()
        again = run_tree_study_parallel(small_catalog, n_trees=100, seed=4,
                                        jobs=1, max_nodes=2000, shard_size=32,
                                        spill_dir=str(tmp_path), probe=probe)
        assert _results_identical(first, again)
        # Exactly the corrupt shard was respilled; all four were folded.
        assert [s[0] for s in probe.spilled] == [1]
        assert [f[0] for f in probe.folded] == [0, 1, 2, 3]
        assert store.get(1, expect_trees=32) is not None  # healed on disk

    def test_probe_sees_every_shard_on_a_cold_run(self, small_catalog,
                                                  tmp_path):
        probe = _SpillProbe()
        run_tree_study_parallel(small_catalog, n_trees=100, seed=4, jobs=1,
                                max_nodes=2000, shard_size=32,
                                spill_dir=str(tmp_path), probe=probe)
        assert [s[0] for s in probe.spilled] == [0, 1, 2, 3]
        assert [s[1] for s in probe.spilled] == [32, 32, 32, 4]
        assert all(s[3] > 0 for s in probe.spilled)  # real bytes on disk
        assert [f[:2] for f in probe.folded] == [(0, 32), (1, 32), (2, 32),
                                                 (3, 4)]

    def test_critical_path_spill_and_jobs_bit_identical(self, small_catalog,
                                                        tmp_path):
        mem = run_critical_path_study_parallel(small_catalog, n_traces=60,
                                               seed=9, jobs=1,
                                               max_nodes=2000, shard_size=16)
        spilled = run_critical_path_study_parallel(
            small_catalog, n_traces=60, seed=9, jobs=2, max_nodes=2000,
            shard_size=16, spill_dir=str(tmp_path))
        assert np.array_equal(mem.path_depths, spilled.path_depths)
        assert np.array_equal(mem.path_tax_s, spilled.path_tax_s)
        assert mem.mean_tax_fraction == spilled.mean_tax_fraction
        assert mem.mean_total_s == spilled.mean_total_s
        assert mem.tax_fraction_by_depth == spilled.tax_fraction_by_depth

    def test_shape_and_critical_path_share_a_spill_run(self, small_catalog,
                                                       tmp_path):
        """Both studies key the spill by generation inputs only, so a
        critical-path run replays shards a shape run spilled."""
        run_tree_study_parallel(small_catalog, n_trees=64, seed=4, jobs=1,
                                max_nodes=2000, shard_size=32,
                                spill_dir=str(tmp_path))
        probe = _SpillProbe()
        run_critical_path_study_parallel(small_catalog, n_traces=64, seed=4,
                                         jobs=1, max_nodes=2000,
                                         shard_size=32,
                                         spill_dir=str(tmp_path), probe=probe)
        assert probe.spilled == []  # pure replay, nothing regenerated
        assert [f[0] for f in probe.folded] == [0, 1]


class TestStudyCache:
    def test_store_load_roundtrip(self, tmp_path):
        cache = StudyCache(tmp_path)
        key = study_key("demo", seed=1, config={"n": 3})
        assert cache.load(key) is None
        cache.store(key, {"x": [1, 2, 3]})
        assert cache.load(key) == {"x": [1, 2, 3]}
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = StudyCache(tmp_path)
        key = study_key("demo", seed=1, config={"n": 3})
        cache.store(key, "fine")
        cache.path(key).write_bytes(b"\x80\x04 truncated garbage")
        assert cache.load(key) is None
        assert not cache.path(key).exists()

    def test_key_covers_every_input(self):
        base = study_key("tree-shape", seed=1, config={"n": 5},
                         params={"n_trees": 10})
        assert base != study_key("tree-shape", seed=2, config={"n": 5},
                                 params={"n_trees": 10})
        assert base != study_key("tree-shape", seed=1, config={"n": 6},
                                 params={"n_trees": 10})
        assert base != study_key("tree-shape", seed=1, config={"n": 5},
                                 params={"n_trees": 11})
        assert base != study_key("other", seed=1, config={"n": 5},
                                 params={"n_trees": 10})
        assert base == study_key("tree-shape", seed=1, config={"n": 5},
                                 params={"n_trees": 10})

    def test_warm_hit_generates_zero_trees(self, tmp_path, small_catalog,
                                           monkeypatch):
        cache = StudyCache(tmp_path)
        cold, hit = run_tree_study_cached(small_catalog, n_trees=80, seed=4,
                                          max_nodes=2000, cache=cache)
        assert not hit

        def exploding_generate_flat(self, root_method, rng):
            raise AssertionError("warm cache hit must not generate trees")

        def exploding_forest(self, root_methods, rng):
            raise AssertionError("warm cache hit must not generate forests")

        monkeypatch.setattr(CallTreeGenerator, "generate_flat",
                            exploding_generate_flat)
        monkeypatch.setattr(CallTreeGenerator, "generate_forest_flat",
                            exploding_forest)
        warm, hit = run_tree_study_cached(small_catalog, n_trees=80, seed=4,
                                          max_nodes=2000, cache=cache)
        assert hit
        assert _results_identical(cold, warm)

    def test_no_cache_recomputes(self, small_catalog):
        result, hit = run_tree_study_cached(small_catalog, n_trees=40, seed=4,
                                            max_nodes=2000, cache=None)
        assert not hit and result.n_trees == 40
