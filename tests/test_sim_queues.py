"""Tests for the server-pool queue model."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.queues import Job, ServerPool


def test_single_server_serializes_jobs():
    sim = Simulator()
    pool = ServerPool(sim, servers=1)
    done = []
    pool.submit(Job(1.0, on_done=lambda w: done.append((sim.now, w))))
    pool.submit(Job(1.0, on_done=lambda w: done.append((sim.now, w))))
    sim.run()
    assert done == [(1.0, 0.0), (2.0, 1.0)]


def test_parallel_servers_run_concurrently():
    sim = Simulator()
    pool = ServerPool(sim, servers=2)
    done = []
    for _ in range(2):
        pool.submit(Job(1.0, on_done=lambda w: done.append(sim.now)))
    sim.run()
    assert done == [1.0, 1.0]


def test_fifo_order():
    sim = Simulator()
    pool = ServerPool(sim, servers=1)
    order = []
    for i in range(4):
        pool.submit(Job(0.5, on_done=lambda w, i=i: order.append(i)))
    sim.run()
    assert order == [0, 1, 2, 3]


def test_wait_accounting():
    sim = Simulator()
    pool = ServerPool(sim, servers=1)
    for _ in range(3):
        pool.submit(Job(2.0))
    sim.run()
    assert pool.stats.jobs_completed == 3
    # Waits: 0, 2, 4 seconds.
    assert pool.stats.total_wait == pytest.approx(6.0)
    assert pool.stats.mean_wait == pytest.approx(2.0)
    assert pool.stats.mean_service == pytest.approx(2.0)


def test_record_waits_list():
    sim = Simulator()
    pool = ServerPool(sim, servers=1, record_waits=True)
    for _ in range(3):
        pool.submit(Job(1.0))
    sim.run()
    assert pool.stats.waits == [0.0, 1.0, 2.0]


def test_queue_depth_and_busy():
    sim = Simulator()
    pool = ServerPool(sim, servers=1)
    for _ in range(3):
        pool.submit(Job(1.0))
    assert pool.busy_servers == 1
    assert pool.queue_depth == 2
    assert pool.stats.max_queue_depth == 2
    sim.run()
    assert pool.busy_servers == 0
    assert pool.queue_depth == 0


def test_utilization_integral():
    sim = Simulator()
    pool = ServerPool(sim, servers=2)
    pool.mark()
    pool.submit(Job(1.0))
    pool.submit(Job(1.0))
    sim.run()
    sim.run_until(2.0)
    # Both servers busy for 1s out of a 2s window with 2 servers => 0.5.
    assert pool.utilization(since=0.0) == pytest.approx(0.5)


def test_utilization_after_mark_resets():
    sim = Simulator()
    pool = ServerPool(sim, servers=1)
    pool.submit(Job(1.0))
    sim.run()
    pool.mark()
    sim.run_until(2.0)
    assert pool.utilization(since=1.0) == pytest.approx(0.0)


def test_jobs_started_later_by_event():
    sim = Simulator()
    pool = ServerPool(sim, servers=1)
    done = []
    sim.after(5.0, lambda: pool.submit(Job(1.0, on_done=lambda w: done.append(sim.now))))
    sim.run()
    assert done == [6.0]


def test_on_start_callback_receives_wait():
    sim = Simulator()
    pool = ServerPool(sim, servers=1)
    starts = []
    pool.submit(Job(1.0, on_start=lambda w: starts.append(w)))
    pool.submit(Job(1.0, on_start=lambda w: starts.append(w)))
    sim.run()
    assert starts == [0.0, 1.0]


def test_negative_service_time_rejected():
    sim = Simulator()
    pool = ServerPool(sim, servers=1)
    with pytest.raises(ValueError):
        pool.submit(Job(-1.0))


def test_zero_servers_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        ServerPool(sim, servers=0)


def test_submit_callable_convenience():
    sim = Simulator()
    pool = ServerPool(sim, servers=1)
    done = []
    job = pool.submit_callable(0.7, on_done=lambda w: done.append(sim.now))
    sim.run()
    assert done == [0.7]
    assert job.started_at == 0.0


class TestDisciplines:
    def test_invalid_discipline_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ServerPool(sim, servers=1, discipline="bogus")

    def test_sjf_runs_short_jobs_first(self):
        sim = Simulator()
        pool = ServerPool(sim, servers=1, discipline="sjf")
        order = []
        pool.submit(Job(1.0, on_done=lambda w: order.append("first")))
        # Queued while busy: the 0.1s job must jump the 5s job.
        pool.submit(Job(5.0, on_done=lambda w: order.append("long")))
        pool.submit(Job(0.1, on_done=lambda w: order.append("short")))
        sim.run()
        assert order == ["first", "short", "long"]

    def test_lifo_runs_newest_first(self):
        sim = Simulator()
        pool = ServerPool(sim, servers=1, discipline="lifo")
        order = []
        pool.submit(Job(1.0, on_done=lambda w: order.append(0)))
        for i in (1, 2, 3):
            pool.submit(Job(1.0, on_done=lambda w, i=i: order.append(i)))
        sim.run()
        assert order == [0, 3, 2, 1]

    def test_sjf_ties_broken_fifo(self):
        sim = Simulator()
        pool = ServerPool(sim, servers=1, discipline="sjf")
        order = []
        pool.submit(Job(1.0, on_done=lambda w: order.append("a")))
        pool.submit(Job(2.0, on_done=lambda w: order.append("b")))
        pool.submit(Job(2.0, on_done=lambda w: order.append("c")))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_queue_depth_counts_sjf_heap(self):
        sim = Simulator()
        pool = ServerPool(sim, servers=1, discipline="sjf")
        pool.submit(Job(1.0))
        pool.submit(Job(1.0))
        pool.submit(Job(1.0))
        assert pool.queue_depth == 2
        sim.run()
        assert pool.queue_depth == 0

    def test_sjf_reduces_mean_wait_for_heavy_tails(self):
        import numpy as np
        rng = np.random.default_rng(0)
        services = rng.lognormal(0.0, 1.5, 300)
        waits = {}
        for disc in ("fifo", "sjf"):
            sim = Simulator()
            pool = ServerPool(sim, servers=1, discipline=disc,
                              record_waits=True)
            for s in services:
                pool.submit(Job(float(s)))
            sim.run()
            waits[disc] = np.mean(pool.stats.waits)
        assert waits["sjf"] < waits["fifo"]
