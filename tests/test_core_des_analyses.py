"""Tests for the DES-based analyses (Figs. 14-19, 22) and the studies glue."""

import numpy as np
import pytest

from repro.core.breakdown import (
    analyze_cluster_breakdowns,
    breakdown_cdf,
    breakdown_cdf_for_service,
    dominant_component,
)
from repro.core.crosscluster import analyze_cross_cluster
from repro.core.errors import analyze_span_errors
from repro.core.exogenous import (
    EXOGENOUS_VARIABLES,
    correlation,
    diurnal_series,
    exogenous_curve,
    exogenous_curves,
)
from repro.core.loadbalance import analyze_load_balance
from repro.core.whatif import what_if_components, what_if_for_service
from repro.net.latency import PathClass
from repro.rpc.stack import APP_COMPONENT, COMPONENTS, ComponentMatrix


# ----------------------------------------------------------------------
# Fig. 14
# ----------------------------------------------------------------------
class TestBreakdownCdf:
    def test_bigtable_application_dominant(self, service_study):
        b = breakdown_cdf_for_service(service_study.dapper, "Bigtable",
                                      "SearchValue")
        assert b.dominant_at(50) == APP_COMPONENT
        assert 0.2 < b.dominant_share_at(50) < 0.95

    def test_kvstore_stack_dominant(self, service_study):
        b = breakdown_cdf_for_service(service_study.dapper, "KVStore",
                                      "SearchValue")
        assert b.dominant_at(50) in ("response_proc_stack",
                                     "request_proc_stack")

    def test_ssdcache_queue_dominant_at_tail(self, service_study):
        b = breakdown_cdf_for_service(service_study.dapper, "SSDCache",
                                      "LookupStream")
        assert b.dominant_at(95) == "server_recv_queue"

    def test_totals_monotone_in_percentile(self, service_study):
        b = breakdown_cdf_for_service(service_study.dapper, "Bigtable",
                                      "SearchValue")
        totals = b.component_values.sum(axis=1)
        # Monotone up to bin-averaging noise.
        assert totals[-1] > totals[0]
        assert b.total_at(95) > b.total_at(50)

    def test_p95_over_median_in_paper_band(self, service_study):
        b = breakdown_cdf_for_service(service_study.dapper, "Bigtable",
                                      "SearchValue")
        assert 1.3 < b.p95_over_median() < 40
        # Queue-heavy services have burst-driven tails: the ratio can far
        # exceed the app-heavy band, but must still show a heavy tail.
        b = breakdown_cdf_for_service(service_study.dapper, "SSDCache",
                                      "LookupStream")
        assert b.p95_over_median() > 1.3

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            breakdown_cdf(ComponentMatrix(np.zeros((0, 9))))

    def test_render_contains_percentiles(self, service_study):
        out = breakdown_cdf_for_service(service_study.dapper, "Bigtable",
                                        "SearchValue").render()
        assert "P95" in out

    def test_dominant_component_helper(self):
        values = np.zeros((5, 9))
        values[:, COMPONENTS.index("server_recv_queue")] = 1.0
        assert dominant_component(ComponentMatrix(values)) == "server_recv_queue"


# ----------------------------------------------------------------------
# Fig. 15
# ----------------------------------------------------------------------
class TestWhatIf:
    def test_dominant_component_rescues_most_tail(self, service_study):
        r = what_if_for_service(service_study.dapper, "SSDCache",
                                "LookupStream")
        # Queue-heavy service: fixing the recv queue rescues the most.
        assert r.dominant() == "server_recv_queue"
        assert r.percent_rescued["server_recv_queue"] > 20

    def test_percentages_bounded(self, service_study):
        r = what_if_for_service(service_study.dapper, "Bigtable",
                                "SearchValue")
        for v in r.percent_rescued.values():
            assert 0.0 <= v <= 100.0

    def test_synthetic_known_answer(self):
        rng = np.random.default_rng(0)
        values = np.zeros((1000, 9))
        app_idx = COMPONENTS.index(APP_COMPONENT)
        queue_idx = COMPONENTS.index("server_recv_queue")
        values[:, app_idx] = 1.0
        # Queue is zero except for ~4% of calls where it dominates (these
        # are exactly the >P95 tail).
        spikes = rng.random(1000) < 0.04
        values[spikes, queue_idx] = 10.0
        r = what_if_components(ComponentMatrix(values), tail_percentile=95.0)
        assert r.percent_rescued["server_recv_queue"] == 100.0
        assert r.percent_rescued[APP_COMPONENT] == 0.0

    def test_small_input_rejected(self):
        with pytest.raises(ValueError):
            what_if_components(ComponentMatrix(np.ones((5, 9))))


# ----------------------------------------------------------------------
# Fig. 16
# ----------------------------------------------------------------------
class TestClusterBreakdowns:
    def test_spread_across_clusters(self, multi_cluster_study):
        r = analyze_cluster_breakdowns(multi_cluster_study.dapper,
                                       "Bigtable", "SearchValue")
        assert len(r.clusters) >= 2
        assert r.spread >= 1.0
        # P95 totals sorted ascending by construction.
        totals = r.totals()
        assert np.all(np.diff(totals) >= 0)

    def test_requires_multiple_clusters(self, service_study):
        with pytest.raises(ValueError):
            analyze_cluster_breakdowns(service_study.dapper, "Bigtable",
                                       "SearchValue")


# ----------------------------------------------------------------------
# Fig. 17-18
# ----------------------------------------------------------------------
class TestExogenous:
    def test_curve_buckets_and_totals(self, multi_cluster_study):
        spans = multi_cluster_study.dapper.spans_for_method("Bigtable",
                                                            "SearchValue")
        r = exogenous_curve(spans, "exo_cpu_util", n_buckets=5)
        assert len(r.bucket_centers) >= 3
        assert np.all(r.totals() > 0)
        assert np.all(np.diff(r.bucket_centers) > 0)

    def test_cpu_util_positively_correlates(self, multi_cluster_study):
        """The paper's Fig. 17 headline for an app-heavy service: latency
        rises with server CPU utilization."""
        spans = multi_cluster_study.dapper.spans_for_method("Bigtable",
                                                            "SearchValue")
        r = exogenous_curve(spans, "exo_cpu_util", n_buckets=6)
        assert r.correlation > 0.1

    def test_cpi_positively_correlates(self, multi_cluster_study):
        spans = multi_cluster_study.dapper.spans_for_method("Bigtable",
                                                            "SearchValue")
        r = exogenous_curve(spans, "exo_cycles_per_inst", n_buckets=6)
        assert r.correlation > 0.1

    def test_batch_curves_bit_identical_to_scalar(self, multi_cluster_study):
        """exogenous_curves hoists span extraction out of the variable loop
        but must produce exactly the scalar function's curves."""
        spans = multi_cluster_study.dapper.spans_for_method("Bigtable",
                                                            "SearchValue")
        batch = exogenous_curves(spans, EXOGENOUS_VARIABLES,
                                 service="Bigtable", n_buckets=5)
        assert set(batch) == set(EXOGENOUS_VARIABLES)
        for var in EXOGENOUS_VARIABLES:
            one = exogenous_curve(spans, var, service="Bigtable", n_buckets=5)
            got = batch[var]
            assert got.service == one.service
            assert got.variable == one.variable
            assert np.array_equal(got.bucket_centers, one.bucket_centers)
            assert np.array_equal(got.component_values, one.component_values)
            assert np.array_equal(got.counts, one.counts)
            assert got.correlation == one.correlation

    def test_batch_curves_rejects_unknown_and_sparse(self, multi_cluster_study):
        spans = multi_cluster_study.dapper.spans_for_method("Bigtable",
                                                            "SearchValue")
        with pytest.raises(KeyError):
            exogenous_curves(spans, ("exo_cpu_util", "bogus"))
        with pytest.raises(ValueError):
            exogenous_curves(spans[:12], ("exo_cpu_util",), n_buckets=8)

    def test_unknown_variable_rejected(self, multi_cluster_study):
        spans = multi_cluster_study.dapper.spans_for_method("Bigtable",
                                                            "SearchValue")
        with pytest.raises(KeyError):
            exogenous_curve(spans, "bogus")

    def test_diurnal_series_windows(self, multi_cluster_study):
        spans = multi_cluster_study.dapper.spans_for_method("Bigtable",
                                                            "SearchValue")
        cluster = spans[0].server_cluster
        r = diurnal_series(spans, cluster, window_s=0.25)
        assert len(r.window_starts) >= 4
        assert set(r.correlations) == set(EXOGENOUS_VARIABLES)

    def test_correlation_helper_degenerate(self):
        assert correlation(np.array([1.0, 1.0]), np.array([1.0, 2.0])) == 0.0
        assert correlation(np.array([1.0]), np.array([1.0])) == 0.0


# ----------------------------------------------------------------------
# Fig. 19
# ----------------------------------------------------------------------
class TestCrossCluster:
    def test_distance_staircase(self, cross_study):
        home = cross_study.fleet.clusters[0].name
        r = analyze_cross_cluster(
            cross_study.dapper, "Spanner", "ReadRows",
            cross_study.network, cross_study.clusters_by_name(), home,
            min_spans=20,
        )
        assert len(r.client_clusters) >= 3
        # Totals sorted ascending; the same-cluster client is fastest.
        totals = r.totals()
        assert np.all(np.diff(totals) >= 0)
        assert r.path_classes[0] == PathClass.SAME_CLUSTER

    def test_wire_share_grows_with_distance(self, cross_study):
        home = cross_study.fleet.clusters[0].name
        r = analyze_cross_cluster(
            cross_study.dapper, "Spanner", "ReadRows",
            cross_study.network, cross_study.clusters_by_name(), home,
            min_spans=20,
        )
        wan = [i for i, c in enumerate(r.path_classes) if c == PathClass.WAN]
        local = [i for i, c in enumerate(r.path_classes)
                 if c == PathClass.SAME_CLUSTER]
        if wan and local:
            assert r.wire_fraction[wan[-1]] > r.wire_fraction[local[0]]
            assert r.wire_fraction[wan[-1]] > 0.5  # network dominates far away

    def test_median_wan_wire_tracks_propagation(self, cross_study):
        """§3.3.5: median cross-cluster latency ~= wire propagation (the
        typical WAN RPC is not congested)."""
        home = cross_study.fleet.clusters[0].name
        r = analyze_cross_cluster(
            cross_study.dapper, "Spanner", "ReadRows",
            cross_study.network, cross_study.clusters_by_name(), home,
            min_spans=20,
        )
        ratios = r.median_wire_vs_propagation()
        for pc, ratio in zip(r.path_classes, ratios):
            if pc == PathClass.WAN:
                assert 0.7 < ratio < 1.8


# ----------------------------------------------------------------------
# Fig. 22
# ----------------------------------------------------------------------
class TestLoadBalance:
    def test_cluster_vs_machine_spread(self, multi_cluster_study):
        r = analyze_load_balance(multi_cluster_study.monarch, "Bigtable")
        assert len(r.cluster_usage) == 3
        assert np.all(r.cluster_usage >= 0)
        assert r.mean_machine_spread >= 0

    def test_missing_service_rejected(self, multi_cluster_study):
        with pytest.raises(ValueError):
            analyze_load_balance(multi_cluster_study.monarch, "Nope")


# ----------------------------------------------------------------------
# Error mix from spans
# ----------------------------------------------------------------------
def test_span_error_mix(service_study):
    r = analyze_span_errors(service_study.dapper.spans)
    # No error model was configured in the fixture: error rate ~0.
    assert r.error_rate == pytest.approx(0.0, abs=0.01)


# ----------------------------------------------------------------------
# Studies glue
# ----------------------------------------------------------------------
class TestStudies:
    def test_all_services_recorded(self, service_study):
        services = {s.service for s in service_study.dapper.spans}
        assert services == {"Bigtable", "SSDCache", "KVStore"}

    def test_monarch_scraped_exogenous(self, service_study):
        keys = service_study.monarch.series_keys("machine/cpu_util")
        assert keys

    def test_gwp_attributed(self, service_study):
        assert service_study.gwp.rpcs_profiled > 100
        assert service_study.gwp.cycle_tax_fraction() > 0

    def test_unknown_service_rejected(self):
        from repro.studies import run_service_study
        with pytest.raises(KeyError):
            run_service_study(services=["Bogus"], duration_s=0.1)
