"""Tests for the serve-mode load generator."""

import asyncio

import numpy as np
import pytest

from repro.serve.http import HttpResponse, read_request, write_response
from repro.serve.loadgen import (
    EndpointSpec,
    LoadGenConfig,
    LoadGenResult,
    ZipfPopularity,
    default_endpoints,
    run_loadgen,
)


class TestZipfPopularity:
    def test_probabilities_rank_ordered(self):
        zipf = ZipfPopularity(5, 1.2, np.random.default_rng(0))
        probs = zipf.probabilities
        assert probs.sum() == pytest.approx(1.0)
        assert all(a > b for a, b in zip(probs, probs[1:]))

    def test_alpha_zero_is_uniform(self):
        zipf = ZipfPopularity(4, 0.0, np.random.default_rng(0))
        assert np.allclose(zipf.probabilities, 0.25)

    def test_draws_deterministic_and_skewed(self):
        draws_a = [ZipfPopularity(4, 1.2, np.random.default_rng(7)).draw()
                   for _ in range(1)]
        draws_b = [ZipfPopularity(4, 1.2, np.random.default_rng(7)).draw()
                   for _ in range(1)]
        assert draws_a == draws_b
        zipf = ZipfPopularity(4, 1.5, np.random.default_rng(7))
        counts = np.bincount([zipf.draw() for _ in range(2000)],
                             minlength=4)
        assert counts[0] > counts[1] > counts[3]

    def test_validates_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="at least one"):
            ZipfPopularity(0, 1.0, rng)
        with pytest.raises(ValueError, match="alpha"):
            ZipfPopularity(3, -0.1, rng)


class TestDefaultEndpoints:
    def test_ranked_hottest_first(self):
        endpoints = default_endpoints(seed=3)
        assert [e.name for e in endpoints] == \
            ["study", "healthz", "whatif", "metrics"]
        study = endpoints[0]
        assert study.method == "POST" and b'"seed": 3' in study.body
        assert "seed=3" in endpoints[2].target


class TestLoadGenResult:
    def test_record_classifies_statuses(self):
        result = LoadGenResult(duration_s=2.0)
        result.record("study", 200, 0.01)
        result.record("study", 200, 0.03)
        result.record("study", 503, 0.001)
        result.record("study", 500, 0.001)
        result.record("study", 0, 0.0)
        assert (result.sent, result.ok, result.shed, result.errors) == \
            (5, 2, 1, 2)
        assert result.status_counts[200] == 2
        # Only OK exchanges contribute latency samples.
        assert len(result.latencies_s["study"]) == 2
        assert result.achieved_rps == pytest.approx(1.0)

    def test_percentiles(self):
        result = LoadGenResult(duration_s=1.0)
        for latency_s in (0.01, 0.02, 0.03):
            result.record("whatif", 200, latency_s)
        assert result.percentile_s("whatif", 50) == pytest.approx(0.02)
        assert result.percentile_s("absent", 99) == 0.0

    def test_render_summary(self):
        result = LoadGenResult(duration_s=1.0)
        result.record("healthz", 200, 0.005)
        result.record("study", 503, 0.001)
        text = result.render()
        assert "healthz" in text
        assert "sent 2  ok 1  shed 1  errors 0" in text


class _StubServer:
    """A scripted endpoint: each connection answers via ``responder``."""

    def __init__(self, responder):
        self.responder = responder
        self.requests_seen = 0
        self._server = None

    async def __aenter__(self):
        async def on_connection(reader, writer):
            try:
                while True:
                    request = await read_request(reader)
                    if request is None:
                        break
                    self.requests_seen += 1
                    write_response(writer, self.responder(request),
                                   keep_alive=True)
                    await writer.drain()
            except (ConnectionError, OSError):
                pass
            finally:
                writer.close()

        self._server = await asyncio.start_server(on_connection,
                                                  "127.0.0.1", 0)
        return self._server.sockets[0].getsockname()[1]

    async def __aexit__(self, *exc):
        self._server.close()
        await self._server.wait_closed()


ENDPOINTS = [EndpointSpec("ping", "GET", "/ping"),
             EndpointSpec("pong", "GET", "/pong")]


class TestRunLoadgen:
    def test_requires_some_load(self):
        config = LoadGenConfig(rate=0.0, users=0)
        with pytest.raises(ValueError, match="rate > 0 or users > 0"):
            asyncio.run(run_loadgen("127.0.0.1", 1, config))

    def test_open_loop_against_stub(self):
        async def go():
            stub = _StubServer(lambda request: HttpResponse(body=b"{}"))
            async with stub as port:
                config = LoadGenConfig(duration_s=1.0, rate=80.0,
                                       users=0, seed=3,
                                       endpoints=ENDPOINTS)
                result = await run_loadgen("127.0.0.1", port, config)
            return stub, result

        stub, result = asyncio.run(go())
        assert result.sent == stub.requests_seen
        assert result.sent > 20  # ~80 rps for 1s, diurnal-modulated
        assert result.ok == result.sent and result.errors == 0
        # Zipf popularity: the rank-0 endpoint dominates.
        assert len(result.latencies_s.get("ping", [])) > \
            len(result.latencies_s.get("pong", []))

    def test_closed_loop_honors_retry_after(self):
        shed_first = 5

        def responder(request):
            if responder.count[0] < shed_first:
                responder.count[0] += 1
                return HttpResponse(status=503,
                                    headers={"retry-after": "0.01"})
            return HttpResponse(body=b"{}")
        responder.count = [0]

        async def go():
            async with _StubServer(responder) as port:
                config = LoadGenConfig(duration_s=1.0, rate=0.0, users=2,
                                       think_s=0.005, seed=3,
                                       endpoints=ENDPOINTS)
                return await run_loadgen("127.0.0.1", port, config)

        result = asyncio.run(go())
        assert result.shed == shed_first
        assert result.ok > 0

    def test_connection_refused_counts_as_error(self):
        async def go():
            # Bind-then-close: a port nothing listens on.
            server = await asyncio.start_server(lambda r, w: None,
                                                "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            config = LoadGenConfig(duration_s=0.3, rate=30.0, users=0,
                                   seed=3, endpoints=ENDPOINTS)
            return await run_loadgen("127.0.0.1", port, config)

        result = asyncio.run(go())
        assert result.sent > 0
        assert result.errors == result.sent
        assert result.status_counts.get(0, 0) == result.sent
