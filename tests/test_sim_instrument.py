"""Tests for the engine probe interface (`repro.sim.instrument`)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.instrument import NullProbe, Probe, ProbeGroup, resolve_probe
from repro.sim.queues import Job, ServerPool


class RecordingProbe(Probe):
    def __init__(self):
        self.calls = []

    def event_scheduled(self, time_s, heap_size):
        self.calls.append(("scheduled", time_s, heap_size))

    def event_fired(self, time_s, heap_size):
        self.calls.append(("fired", time_s, heap_size))

    def event_cancelled(self, time_s):
        self.calls.append(("cancelled", time_s))

    def job_enqueued(self, pool, time_s, depth):
        self.calls.append(("enqueued", pool, time_s, depth))

    def job_started(self, pool, time_s, wait_s):
        self.calls.append(("started", pool, time_s, wait_s))

    def job_finished(self, pool, time_s, service_s):
        self.calls.append(("finished", pool, time_s, service_s))


def of_kind(probe, kind):
    return [c for c in probe.calls if c[0] == kind]


# ---------------------------------------------------------------- resolve
def test_resolve_probe_folds_inert_probes_to_none():
    assert resolve_probe(None) is None
    assert resolve_probe(NullProbe()) is None
    assert resolve_probe(ProbeGroup()) is None
    assert resolve_probe(ProbeGroup(None, NullProbe())) is None


def test_resolve_probe_keeps_real_probes():
    p = RecordingProbe()
    assert resolve_probe(p) is p
    group = ProbeGroup(NullProbe(), p)
    assert resolve_probe(group) is group
    assert group.probes == (p,)


def test_null_probe_subclass_is_not_folded():
    # Only the exact sentinel type is free; a subclass may override hooks.
    class Counting(NullProbe):
        pass

    p = Counting()
    assert resolve_probe(p) is p


def test_simulator_folds_probe_at_install():
    assert Simulator(probe=NullProbe()).probe is None
    sim = Simulator()
    assert sim.probe is None
    sim.set_probe(NullProbe())
    assert sim.probe is None


# ---------------------------------------------------------------- engine
def test_engine_hooks_fire_in_order():
    p = RecordingProbe()
    sim = Simulator(probe=p)
    sim.at(1.0, lambda: None)
    sim.at(2.0, lambda: None)
    sim.run_until(5.0)
    assert [c[0] for c in p.calls] == ["scheduled", "scheduled",
                                       "fired", "fired"]
    # event_fired reports the post-pop heap size.
    assert of_kind(p, "fired")[0] == ("fired", 1.0, 1)
    assert of_kind(p, "fired")[1] == ("fired", 2.0, 0)


def test_engine_reports_cancellations():
    p = RecordingProbe()
    sim = Simulator(probe=p)
    handle = sim.at(1.0, lambda: None)
    sim.at(2.0, lambda: None)
    handle.cancel()
    sim.run_until(5.0)
    assert of_kind(p, "cancelled") == [("cancelled", 1.0)]
    assert len(of_kind(p, "fired")) == 1
    assert sim.events_cancelled == 1


def test_engine_counts_cancellations_without_probe():
    sim = Simulator()
    h = sim.at(1.0, lambda: None)
    h.cancel()
    sim.run_until(2.0)
    assert sim.events_cancelled == 1
    assert sim.events_fired == 0


def test_max_heap_size_tracked_unconditionally():
    sim = Simulator()
    for i in range(10):
        sim.at(float(i + 1), lambda: None)
    assert sim.max_heap_size == 10
    sim.run_until(20.0)
    assert sim.max_heap_size == 10


def test_probe_group_fans_out():
    a, b = RecordingProbe(), RecordingProbe()
    sim = Simulator(probe=ProbeGroup(a, b))
    sim.at(1.0, lambda: None)
    sim.run_until(2.0)
    assert a.calls == b.calls
    assert len(a.calls) == 2


# ---------------------------------------------------------------- queues
def test_pool_hooks_report_depth_wait_service():
    p = RecordingProbe()
    sim = Simulator(probe=p)
    pool = ServerPool(sim, servers=1, name="srv")
    sim.at(0.0, lambda: pool.submit(Job(service_time=1.0)))
    sim.at(0.0, lambda: pool.submit(Job(service_time=0.5)))
    sim.run_until(10.0)

    enqueued = of_kind(p, "enqueued")
    started = of_kind(p, "started")
    finished = of_kind(p, "finished")
    assert [e[1] for e in enqueued] == ["srv", "srv"]
    assert [e[3] for e in enqueued] == [0, 1]  # depth after enqueue
    assert started[0][3] == pytest.approx(0.0)  # first job never waits
    assert started[1][3] == pytest.approx(1.0)  # second waits for first
    assert [f[3] for f in finished] == [pytest.approx(1.0),
                                        pytest.approx(0.5)]


# ----------------------------------------------------------- determinism
def test_probe_does_not_change_results():
    def run(probe):
        sim = Simulator(probe=probe)
        pool = ServerPool(sim, servers=2, name="w", record_waits=True)
        for i in range(50):
            sim.at(0.01 * i, lambda: pool.submit(Job(service_time=0.03)))
        sim.run_until(10.0)
        return (sim.now, sim.events_fired, pool.stats.jobs_completed,
                tuple(pool.stats.waits))

    baseline = run(None)
    assert run(NullProbe()) == baseline
    assert run(RecordingProbe()) == baseline


def test_base_probe_hooks_are_noops():
    p = Probe()
    p.event_scheduled(0.0, 1)
    p.event_fired(0.0, 0)
    p.event_cancelled(0.0)
    p.job_enqueued("x", 0.0, 1)
    p.job_started("x", 0.0, 0.0)
    p.job_finished("x", 0.0, 0.1)
    p.rpc_attempt("S/m", 0.0, 1)
    p.rpc_hedge("S/m", 0.0)
    p.rpc_completed("S/m", 0.0, "OK", 0.001, 1)
    p.rpc_stage("server/handler", 0.0)
    p.rpc_deadline_hit("S/m", 1.0, 0.5)
