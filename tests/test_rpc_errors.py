"""Tests for the status codes and fleet error model."""

import numpy as np
import pytest

from repro.rpc.errors import (
    DEFAULT_ERROR_MIX,
    ErrorModel,
    FLEET_ERROR_RATE,
    RpcError,
    StatusCode,
)

RNG = np.random.default_rng(3)


def test_ok_is_not_error():
    assert not StatusCode.OK.is_error
    assert StatusCode.CANCELLED.is_error
    assert StatusCode.NOT_FOUND.is_error


def test_rpc_error_requires_error_status():
    with pytest.raises(ValueError):
        RpcError(StatusCode.OK)
    err = RpcError(StatusCode.NOT_FOUND, "missing row")
    assert err.status is StatusCode.NOT_FOUND
    assert "missing row" in str(err)


def test_default_mix_normalized():
    m = ErrorModel()
    assert sum(m.mix.values()) == pytest.approx(1.0)


def test_error_rate_matches_paper_default():
    assert ErrorModel().error_rate == FLEET_ERROR_RATE == 0.019


def test_sampled_error_rate():
    m = ErrorModel(error_rate=0.05)
    out = m.sample_outcomes(RNG, 100_000)
    errored = np.array([s.is_error for s in out])
    assert abs(errored.mean() - 0.05) < 0.005


def test_sampled_mix_matches_configuration():
    m = ErrorModel(error_rate=1.0)  # every call errors: mix is observable
    out = m.sample_outcomes(RNG, 100_000)
    cancelled = np.mean([s is StatusCode.CANCELLED for s in out])
    not_found = np.mean([s is StatusCode.NOT_FOUND for s in out])
    assert cancelled == pytest.approx(DEFAULT_ERROR_MIX[StatusCode.CANCELLED],
                                      abs=0.01)
    assert not_found == pytest.approx(DEFAULT_ERROR_MIX[StatusCode.NOT_FOUND],
                                      abs=0.01)


def test_zero_error_rate_all_ok():
    m = ErrorModel(error_rate=0.0)
    out = m.sample_outcomes(RNG, 1000)
    assert all(s is StatusCode.OK for s in out)


def test_invalid_error_rate_rejected():
    with pytest.raises(ValueError):
        ErrorModel(error_rate=1.5)


def test_custom_mix_renormalized():
    m = ErrorModel(mix={StatusCode.CANCELLED: 2.0, StatusCode.INTERNAL: 2.0})
    assert m.mix[StatusCode.CANCELLED] == pytest.approx(0.5)


def test_empty_mix_rejected():
    with pytest.raises(ValueError):
        ErrorModel(mix={StatusCode.CANCELLED: 0.0})


def test_wasted_cycle_factor_zero_for_ok():
    assert ErrorModel().wasted_cycle_factor(StatusCode.OK) == 0.0


def test_expected_cycle_shares_hit_fig23():
    """The default factors must imply Fig. 23's cancellation skew:
    ~45 % of errors but ~55 % of wasted cycles."""
    shares = ErrorModel().expected_cycle_shares()
    assert shares[StatusCode.CANCELLED] == pytest.approx(0.55, abs=0.03)
    assert shares[StatusCode.NOT_FOUND] == pytest.approx(0.21, abs=0.03)


def test_cancelled_outsized_cycle_share():
    m = ErrorModel()
    shares = m.expected_cycle_shares()
    # Fig. 23's key qualitative point: cancellations burn more than their
    # count share.
    assert shares[StatusCode.CANCELLED] > m.mix[StatusCode.CANCELLED]
