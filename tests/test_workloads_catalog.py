"""Tests for the calibrated method catalog.

Calibration anchors are checked with generous bands — the contract is that
the *shape* of each paper finding reproduces at small catalog sizes, with
the full-scale comparison recorded by the benchmarks.
"""

import numpy as np
import pytest

from repro.workloads.catalog import (
    Catalog,
    CatalogConfig,
    MethodSpec,
    build_catalog,
    sample_method_calls,
)

CFG = CatalogConfig(n_methods=400, seed=12)
CAT = build_catalog(CFG)
RNG = np.random.default_rng(0)


def test_catalog_size_and_identity():
    assert len(CAT) == 400
    names = {m.full_method for m in CAT}
    assert len(names) == 400


def test_build_is_deterministic():
    a = build_catalog(CatalogConfig(n_methods=50, seed=5))
    b = build_catalog(CatalogConfig(n_methods=50, seed=5))
    assert [m.median_app_s for m in a] == [m.median_app_s for m in b]
    assert [m.popularity for m in a] == [m.popularity for m in b]


def test_different_seeds_differ():
    a = build_catalog(CatalogConfig(n_methods=50, seed=5))
    b = build_catalog(CatalogConfig(n_methods=50, seed=6))
    assert [m.median_app_s for m in a] != [m.median_app_s for m in b]


def test_too_small_catalog_rejected():
    with pytest.raises(ValueError):
        build_catalog(CatalogConfig(n_methods=5))


def test_popularity_normalized():
    assert CAT.popularity_weights().sum() == pytest.approx(1.0)


def test_head_method_share():
    assert CAT.popularity_weights().max() == pytest.approx(0.28, abs=0.001)


def test_top10_top100_shares():
    srt = np.sort(CAT.popularity_weights())[::-1]
    assert srt[:10].sum() == pytest.approx(0.58, abs=0.02)
    assert srt[:100].sum() == pytest.approx(0.91, abs=0.03)


def test_popularity_anticorrelates_with_latency():
    meds = np.array([m.median_app_s for m in CAT])
    pops = CAT.popularity_weights()
    order = np.argsort(meds)
    fast_half = pops[order[:200]].sum()
    assert fast_half > 0.75  # most calls go to the fast half


def test_median_latency_quantile_anchors():
    meds = np.array([m.median_app_s for m in CAT])
    # q10 anchor: 10.7 ms (within quantile-construction tolerance).
    assert np.quantile(meds, 0.10) == pytest.approx(10.7e-3, rel=0.25)
    assert np.quantile(meds, 0.50) == pytest.approx(31e-3, rel=0.25)
    assert meds.max() < 15.0


def test_locality_probabilities_valid():
    for m in CAT:
        p_local, p_region, p_wan = m.locality
        assert p_local >= 0 and p_region >= 0 and p_wan >= 0
        assert p_local + p_region + p_wan == pytest.approx(1.0)


def test_slow_methods_cross_wan_more():
    by_lat = CAT.sorted_by_median_latency()
    fast_wan = np.mean([m.locality[2] for m in by_lat[:50]])
    slow_wan = np.mean([m.locality[2] for m in by_lat[-50:]])
    assert slow_wan > 3 * fast_wan


def test_head_services_assigned():
    services = CAT.services()
    for svc in ("NetworkDisk", "Spanner", "KVStore", "F1", "MLInference"):
        assert svc in services


def test_network_disk_call_share():
    shares = {}
    for m in CAT:
        shares[m.service] = shares.get(m.service, 0.0) + m.popularity
    assert shares["NetworkDisk"] == pytest.approx(0.35, abs=0.05)


def test_leaf_methods_mostly_zero_fanout():
    """Storage leaves are usually true leaves, with a minority replication
    mode (near-critical branching gives the heavy descendant tails)."""
    from repro.workloads.catalog import LAYER_LEAF
    rng = np.random.default_rng(1)
    draws = []
    for m in CAT:
        if m.layer == LAYER_LEAF:
            draws.extend(m.fanout.sample(rng, 40))
    draws = np.array(draws)
    zero_frac = (draws == 0.0).mean()
    assert 0.6 < zero_frac < 0.9
    assert draws.mean() < 1.1  # subcritical on average


def test_layers_present():
    layers = {m.layer for m in CAT}
    assert layers == {0, 1, 2, 3}


class TestSampling:
    def test_sample_shapes(self):
        s = sample_method_calls(CAT.methods[0], RNG, 500, config=CFG)
        assert len(s) == 500
        assert s.request_bytes.shape == (500,)
        assert s.response_bytes.shape == (500,)
        assert s.cycles.shape == (500,)
        assert len(s.statuses) == 500

    def test_sizes_respect_floor_and_cap(self):
        for spec in CAT.methods[:20]:
            s = sample_method_calls(spec, RNG, 200, config=CFG)
            assert s.request_bytes.min() >= 64
            assert s.request_bytes.max() <= 8e6
            assert s.response_bytes.min() >= 64

    def test_components_nonnegative(self):
        s = sample_method_calls(CAT.methods[3], RNG, 300, config=CFG)
        assert np.all(s.matrix.values >= 0)

    def test_app_median_near_spec(self):
        spec = CAT.sorted_by_median_latency()[len(CAT) // 2]
        s = sample_method_calls(spec, RNG, 4000, config=CFG)
        app = s.matrix.application()
        # The fast (cache-hit) mode drags the mixture median below the main
        # mode's median by up to ~40 % at the largest fast-mode weights.
        med = np.median(app)
        assert 0.45 * spec.median_app_s < med < 1.25 * spec.median_app_s

    def test_cycles_floor_under_every_call(self):
        s = sample_method_calls(CAT.methods[0], RNG, 500, config=CFG)
        assert s.cycles.min() >= CFG.cycles_floor

    def test_statuses_mostly_ok(self):
        spec = CAT.methods[0]
        s = sample_method_calls(spec, RNG, 5000, config=CFG)
        err = np.mean([st.is_error for st in s.statuses])
        assert err == pytest.approx(0.019, abs=0.01)

    def test_proc_stack_correlates_with_size(self):
        spec = CAT.methods[1]
        s = sample_method_calls(spec, RNG, 3000, config=CFG)
        sizes = s.request_bytes + s.response_bytes
        proc = s.matrix.proc_stack()
        big = sizes > np.percentile(sizes, 90)
        assert proc[big].mean() > proc[~big].mean()
