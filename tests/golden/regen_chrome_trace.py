#!/usr/bin/env python3
"""Regenerate chrome_trace_spans.json from the fixed span tree.

Run after an intentional exporter format change, then review the diff:
    PYTHONPATH=src python tests/golden/regen_chrome_trace.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from test_obs_chrometrace import GOLDEN_PATH, golden_spans  # noqa: E402

from repro.obs.chrometrace import span_trace_events, write_chrome_trace


def main() -> None:
    n = write_chrome_trace(GOLDEN_PATH, span_trace_events(golden_spans()))
    print(f"wrote {n} events to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
