"""Tests for the in-process RPC framework (the runnable Stubby-alike)."""

import pytest

from repro.rpc.errors import RpcError, StatusCode
from repro.rpc.framework import (
    Channel,
    FrameError,
    LoopbackTransport,
    RpcServer,
    ServiceDef,
    decode_frame,
    encode_frame,
)
from repro.rpc.wire import FieldSpec, FieldType, MessageSchema

ECHO_REQ = MessageSchema("EchoRequest", [
    FieldSpec(1, "text", FieldType.STRING),
    FieldSpec(2, "repeat", FieldType.INT64),
])
ECHO_RESP = MessageSchema("EchoResponse", [
    FieldSpec(1, "text", FieldType.STRING),
    FieldSpec(2, "length", FieldType.INT64),
])


def make_service() -> ServiceDef:
    svc = ServiceDef("Echo")

    @svc.method("Say", ECHO_REQ, ECHO_RESP)
    def say(request):
        text = request.get("text", "") * max(request.get("repeat", 1), 1)
        return {"text": text, "length": len(text)}

    @svc.method("Fail", ECHO_REQ, ECHO_RESP)
    def fail(request):
        raise RpcError(StatusCode.NOT_FOUND, "no such row")

    @svc.method("Crash", ECHO_REQ, ECHO_RESP)
    def crash(request):
        raise RuntimeError("handler bug")

    return svc


def make_stack(**kwargs):
    server = RpcServer(**{k: v for k, v in kwargs.items()
                          if k in ("key", "nonce")})
    server.register(make_service())
    transport = LoopbackTransport(server)
    channel = Channel(transport, **kwargs)
    return server, channel


class TestFraming:
    def test_roundtrip_plain(self):
        frame = encode_frame({"method": "/E/S", "trace_id": 7}, b"payload")
        header, body = decode_frame(frame)
        assert header["method"] == "/E/S"
        assert header["trace_id"] == 7
        assert body == b"payload"

    def test_roundtrip_compressed(self):
        body = b"abc" * 500
        frame = encode_frame({"method": "/E/S"}, body, compress=True)
        assert len(frame) < len(body)
        _, decoded = decode_frame(frame)
        assert decoded == body

    def test_roundtrip_encrypted(self):
        key, nonce = bytes(32), bytes(12)
        frame = encode_frame({"method": "/E/S"}, b"secret", key=key,
                             nonce=nonce)
        assert b"secret" not in frame
        _, body = decode_frame(frame, key=key, nonce=nonce)
        assert body == b"secret"

    def test_encrypted_frame_requires_key(self):
        key, nonce = bytes(32), bytes(12)
        frame = encode_frame({"method": "/E/S"}, b"x", key=key, nonce=nonce)
        with pytest.raises(FrameError):
            decode_frame(frame)

    def test_bad_magic(self):
        with pytest.raises(FrameError):
            decode_frame(b"XXXX\x00\x00\x00")

    def test_truncated_frame(self):
        frame = encode_frame({"method": "/E/S"}, b"payload")
        with pytest.raises(FrameError):
            decode_frame(frame[:-3])


class TestCalls:
    def test_successful_call(self):
        _, channel = make_stack()
        reply = channel.call("Echo", "Say", {"text": "hi", "repeat": 3},
                             ECHO_REQ, ECHO_RESP)
        assert reply == {"text": "hihihi", "length": 6}

    def test_large_payload_roundtrip_compressed(self):
        _, channel = make_stack()
        text = "lorem ipsum " * 1000
        reply = channel.call("Echo", "Say", {"text": text, "repeat": 1},
                             ECHO_REQ, ECHO_RESP)
        assert reply["length"] == len(text)

    def test_encrypted_channel(self):
        key, nonce = bytes(range(32)), bytes(12)
        _, channel = make_stack(key=key, nonce=nonce)
        reply = channel.call("Echo", "Say", {"text": "x", "repeat": 2},
                             ECHO_REQ, ECHO_RESP)
        assert reply["text"] == "xx"

    def test_application_error_propagates_status(self):
        _, channel = make_stack()
        with pytest.raises(RpcError) as err:
            channel.call("Echo", "Fail", {"text": "x"}, ECHO_REQ, ECHO_RESP)
        assert err.value.status is StatusCode.NOT_FOUND
        assert "no such row" in str(err.value)

    def test_handler_crash_becomes_internal(self):
        server, channel = make_stack()
        with pytest.raises(RpcError) as err:
            channel.call("Echo", "Crash", {"text": "x"}, ECHO_REQ, ECHO_RESP)
        assert err.value.status is StatusCode.INTERNAL
        assert server.calls_served == 1  # the server survived

    def test_unknown_method_unimplemented(self):
        _, channel = make_stack()
        with pytest.raises(RpcError) as err:
            channel.call("Echo", "Nope", {}, ECHO_REQ, ECHO_RESP)
        assert err.value.status is StatusCode.UNIMPLEMENTED

    def test_unknown_service_unimplemented(self):
        _, channel = make_stack()
        with pytest.raises(RpcError) as err:
            channel.call("Ghost", "Say", {}, ECHO_REQ, ECHO_RESP)
        assert err.value.status is StatusCode.UNIMPLEMENTED

    def test_deadline_exceeded(self):
        server = RpcServer()
        server.register(make_service())
        transport = LoopbackTransport(server, latency_s=0.05)
        channel = Channel(transport)
        with pytest.raises(RpcError) as err:
            channel.call("Echo", "Say", {"text": "x"}, ECHO_REQ, ECHO_RESP,
                         deadline_s=0.01)
        assert err.value.status is StatusCode.DEADLINE_EXCEEDED

    def test_deadline_not_exceeded(self):
        _, channel = make_stack()
        reply = channel.call("Echo", "Say", {"text": "x"}, ECHO_REQ,
                             ECHO_RESP, deadline_s=5.0)
        assert reply["text"] == "x"

    def test_counters(self):
        server, channel = make_stack()
        for _ in range(3):
            channel.call("Echo", "Say", {"text": "x"}, ECHO_REQ, ECHO_RESP)
        assert channel.calls_made == 3
        assert server.calls_served == 3
        assert channel.transport.bytes_sent > 0
        assert channel.transport.bytes_received > 0


class TestInterceptors:
    def test_client_interceptor_sees_call_info(self):
        _, channel = make_stack()
        seen = []
        channel.add_interceptor(lambda info, req: seen.append(info))
        channel.call("Echo", "Say", {"text": "x"}, ECHO_REQ, ECHO_RESP)
        assert seen[0].full_method == "/Echo/Say"
        assert seen[0].trace_id == seen[0].span_id

    def test_server_interceptor_sees_request(self):
        server, channel = make_stack()
        seen = []
        server.add_interceptor(lambda info, req: seen.append((info, req)))
        channel.call("Echo", "Say", {"text": "ping"}, ECHO_REQ, ECHO_RESP)
        info, req = seen[0]
        assert info.full_method == "/Echo/Say"
        assert req["text"] == "ping"

    def test_trace_context_propagates(self):
        server, channel = make_stack()
        seen = []
        server.add_interceptor(lambda info, req: seen.append(info))
        channel.call("Echo", "Say", {"text": "x"}, ECHO_REQ, ECHO_RESP,
                     trace_id=4242, parent_id=7)
        assert seen[0].trace_id == 4242
        assert seen[0].parent_id == 7

    def test_duplicate_service_rejected(self):
        server = RpcServer()
        server.register(make_service())
        with pytest.raises(ValueError):
            server.register(make_service())
