"""Tests for the Monarch text dashboards."""

import numpy as np
import pytest

from repro.obs.dashboard import render_panel, render_series, sparkline
from repro.obs.monarch import Monarch


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_flat(self):
        out = sparkline([5.0] * 10)
        assert len(set(out)) == 1

    def test_monotone_series_rises(self):
        out = sparkline(np.linspace(0, 1, 20))
        # First char is the lowest tick, last is the highest.
        assert out[0] < out[-1]

    def test_downsampled_to_width(self):
        out = sparkline(np.arange(1000), width=40)
        assert len(out) <= 40

    def test_short_series_kept_verbatim(self):
        assert len(sparkline([1, 2, 3], width=40)) == 3


class TestRenderers:
    def make_monarch(self):
        m = Monarch()
        for i in range(20):
            for machine in ("m0", "m1"):
                m.write("util", {"machine": machine, "service": "S"},
                        float(i), 0.5 + 0.01 * i)
        return m

    def test_render_series_summary(self):
        m = self.make_monarch()
        out = render_series(m, "util", {"machine": "m0", "service": "S"})
        assert "mean" in out and "20 pts" in out

    def test_render_series_missing(self):
        assert "(no data)" in render_series(Monarch(), "nope")

    def test_render_panel_groups_by_label(self):
        m = self.make_monarch()
        out = render_panel(m, "util", {"service": "S"})
        assert "m0" in out and "m1" in out

    def test_render_panel_caps_rows(self):
        m = Monarch()
        for i in range(30):
            m.write("x", {"machine": f"m{i:02d}"}, 0.0, 1.0)
        out = render_panel(m, "x", max_rows=5)
        assert "and 25 more series" in out

    def test_render_panel_missing(self):
        assert "(no series)" in render_panel(Monarch(), "nope")


class TestRenderHeartbeat:
    def test_counts_only(self):
        from repro.obs.dashboard import render_heartbeat

        out = render_heartbeat(
            {"sim_time_s": 1.5, "events_fired": 1200,
             "events_scheduled": 1201, "rpcs_completed": 30, "hedges": 2,
             "wall_s": 0.0, "events_per_s": 0.0, "sim_time_rate": 0.0},
            "unit")
        assert "heartbeat: unit" in out
        assert "1,200 fired" in out
        assert "30 completed" in out
        assert "hedges 2" in out
        assert "events/s" not in out  # no wall clock, no rate line

    def test_rates_shown_with_wall_clock(self):
        from repro.obs.dashboard import render_heartbeat

        out = render_heartbeat(
            {"sim_time_s": 4.0, "events_fired": 1000,
             "events_scheduled": 1000, "rpcs_completed": 10, "hedges": 0,
             "wall_s": 2.0, "events_per_s": 500.0, "sim_time_rate": 2.0})
        assert "500 events/s" in out
        assert "sim/wall 2.0x" in out

    def test_missing_keys_default_to_zero(self):
        from repro.obs.dashboard import render_heartbeat

        out = render_heartbeat({})
        assert "heartbeat: run" in out
        assert "0 fired" in out
