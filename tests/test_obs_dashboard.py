"""Tests for the Monarch text dashboards."""

import numpy as np
import pytest

from repro.obs.dashboard import render_panel, render_series, sparkline
from repro.obs.monarch import Monarch


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_flat(self):
        out = sparkline([5.0] * 10)
        assert len(set(out)) == 1

    def test_monotone_series_rises(self):
        out = sparkline(np.linspace(0, 1, 20))
        # First char is the lowest tick, last is the highest.
        assert out[0] < out[-1]

    def test_downsampled_to_width(self):
        out = sparkline(np.arange(1000), width=40)
        assert len(out) <= 40

    def test_short_series_kept_verbatim(self):
        assert len(sparkline([1, 2, 3], width=40)) == 3


class TestRenderers:
    def make_monarch(self):
        m = Monarch()
        for i in range(20):
            for machine in ("m0", "m1"):
                m.write("util", {"machine": machine, "service": "S"},
                        float(i), 0.5 + 0.01 * i)
        return m

    def test_render_series_summary(self):
        m = self.make_monarch()
        out = render_series(m, "util", {"machine": "m0", "service": "S"})
        assert "mean" in out and "20 pts" in out

    def test_render_series_missing(self):
        assert "(no data)" in render_series(Monarch(), "nope")

    def test_render_panel_groups_by_label(self):
        m = self.make_monarch()
        out = render_panel(m, "util", {"service": "S"})
        assert "m0" in out and "m1" in out

    def test_render_panel_caps_rows(self):
        m = Monarch()
        for i in range(30):
            m.write("x", {"machine": f"m{i:02d}"}, 0.0, 1.0)
        out = render_panel(m, "x", max_rows=5)
        assert "and 25 more series" in out

    def test_render_panel_missing(self):
        assert "(no series)" in render_panel(Monarch(), "nope")


class TestRenderHeartbeat:
    def test_counts_only(self):
        from repro.obs.dashboard import render_heartbeat

        out = render_heartbeat(
            {"sim_time_s": 1.5, "events_fired": 1200,
             "events_scheduled": 1201, "rpcs_completed": 30, "hedges": 2,
             "wall_s": 0.0, "events_per_s": 0.0, "sim_time_rate": 0.0},
            "unit")
        assert "heartbeat: unit" in out
        assert "1,200 fired" in out
        assert "30 completed" in out
        assert "hedges 2" in out
        assert "events/s" not in out  # no wall clock, no rate line

    def test_rates_shown_with_wall_clock(self):
        from repro.obs.dashboard import render_heartbeat

        out = render_heartbeat(
            {"sim_time_s": 4.0, "events_fired": 1000,
             "events_scheduled": 1000, "rpcs_completed": 10, "hedges": 0,
             "wall_s": 2.0, "events_per_s": 500.0, "sim_time_rate": 2.0})
        assert "500 events/s" in out
        assert "sim/wall 2.0x" in out

    def test_missing_keys_default_to_zero(self):
        from repro.obs.dashboard import render_heartbeat

        out = render_heartbeat({})
        assert "heartbeat: run" in out
        assert "0 fired" in out


class TestSparklineNaN:
    def test_nan_renders_gap_not_poison(self):
        # Regression: a single NaN used to turn the whole line into
        # IndexError/garbage because min/max scaling saw NaN.
        values = [1.0, 2.0, np.nan, 4.0, 5.0]
        out = sparkline(values)
        assert len(out) == 5
        assert out[2] == "·"
        assert "·" not in (out[0] + out[-1])
        assert out[0] < out[-1]  # shape preserved around the gap

    def test_all_nan_series_is_all_gaps(self):
        assert sparkline([np.nan] * 4) == "····"

    def test_nan_in_flat_series(self):
        out = sparkline([3.0, np.nan, 3.0])
        assert out[1] == "·"
        assert out[0] == out[2] != "·"

    def test_downsampled_nan_bucket_stays_a_gap(self):
        # 100 points -> width 10; one bucket is entirely NaN.
        values = np.linspace(0, 1, 100)
        values[20:30] = np.nan
        out = sparkline(values, width=10)
        assert len(out) == 10
        assert out[2] == "·"
        assert out.count("·") == 1  # mixed buckets use nanmean

    def test_nan_mixed_bucket_uses_remaining_values(self):
        values = np.array([1.0, np.nan, 1.0, 1.0, 5.0, 5.0, np.nan, 5.0])
        out = sparkline(values, width=2)
        assert "·" not in out
        assert out[0] < out[1]


class _StubBreakdown:
    def __init__(self, total_s):
        self._total_s = total_s

    def total(self):
        return self._total_s


class _StubSpan:
    def __init__(self, span_id, full_method, total_s):
        self.span_id = span_id
        self.full_method = full_method
        self.breakdown = _StubBreakdown(total_s)


class TestRenderIncidentReport:
    def make_events(self):
        from repro.obs.alerting import AlertEvent

        return [
            AlertEvent(t=2.0, slo="slo-a", severity="page", state="pending",
                       burn_long=20.0, burn_short=25.0),
            AlertEvent(t=3.0, slo="slo-a", severity="page", state="firing",
                       burn_long=90.0, burn_short=95.0,
                       exemplars=((0.25, 42), (0.10, 7))),
            AlertEvent(t=5.0, slo="slo-a", severity="page", state="resolved",
                       burn_long=0.0, burn_short=0.0),
        ]

    def test_empty_report(self):
        from repro.obs.dashboard import render_incident_report

        out = render_incident_report([])
        assert "(no alert events)" in out
        assert "(no exemplars attached)" in out

    def test_timeline_and_exemplars(self):
        from repro.obs.dashboard import render_incident_report

        out = render_incident_report(self.make_events())
        lines = out.splitlines()
        states = [ln for ln in lines if "slo-a" in ln and "burn" in ln]
        assert [s.split()[4] for s in states] == \
            ["PENDING", "FIRING", "RESOLVED"]
        # Exemplars from the firing event only, worst latency first.
        ex_lines = [ln for ln in lines if ln.strip().startswith("trace")]
        assert "trace 42" in ex_lines[0] and "250.000 ms" in ex_lines[0]
        assert "trace 7" in ex_lines[1]

    def test_accepts_dict_events(self):
        from repro.obs.dashboard import render_incident_report

        events = self.make_events()
        from_objects = render_incident_report(events)
        from_dicts = render_incident_report([e.to_dict() for e in events])
        assert from_objects == from_dicts

    def test_burn_rate_sparklines_from_monarch(self):
        from repro.obs.dashboard import render_incident_report

        m = Monarch()
        labels = {"slo": "slo-a", "severity": "page"}
        for t, v in ((1.0, 0.0), (2.0, 20.0), (3.0, 90.0)):
            m.write("alerts/burn_rate_long", labels, t, v)
            m.write("alerts/burn_rate_short", labels, t, v + 5.0)
        out = render_incident_report(self.make_events(), m)
        assert "-- burn rates" in out
        assert "peak 90.00" in out
        assert "peak 95.00" in out

    def test_trace_annotations(self):
        from repro.obs.dashboard import render_incident_report

        traces = {42: [_StubSpan(1, "Bigtable/SearchValue", 0.25),
                       _StubSpan(2, "Spanner/Get", 0.01)]}
        out = render_incident_report(self.make_events(), traces=traces)
        assert "[2 spans, slowest Bigtable/SearchValue 250.000 ms]" in out
        assert "[trace not sampled]" in out  # trace 7 absent from traces

    def test_exemplar_cap(self):
        from repro.obs.alerting import AlertEvent
        from repro.obs.dashboard import render_incident_report

        exemplars = tuple((0.1 + 0.001 * i, 100 + i) for i in range(20))
        event = AlertEvent(t=1.0, slo="s", severity="page", state="firing",
                           burn_long=50.0, burn_short=50.0,
                           exemplars=exemplars)
        out = render_incident_report([event], max_exemplars=5)
        assert out.count("trace 1") == 5
        assert "... and 15 more exemplar traces" in out


class TestDegenerateSeries:
    """Empty registries and single-point series must render, not raise.

    The serve-mode dashboard is scraped from the first request on, when
    Monarch may hold registered-but-empty series and one-point history.
    """

    def test_single_point_sparkline_is_one_mid_tick(self):
        out = sparkline([1.0])
        assert len(out) == 1 and out != ""

    def test_sub_one_width_clamped(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=0)) == 1
        assert len(sparkline([1.0, 2.0, 3.0], width=-5)) == 1

    def test_single_point_series_renders(self):
        m = Monarch()
        m.write("util", {"machine": "m0"}, 0.0, 0.5)
        out = render_series(m, "util", {"machine": "m0"})
        assert "1 pts" in out and "mean 0.5" in out

    def test_panel_renders_empty_series_placeholder(self):
        import warnings

        m = Monarch()
        m.write("util", {"machine": "m0"}, 0.0, 0.5)
        # A registered series whose points were all retention-trimmed:
        # reach into the store to model the window render_panel can see.
        m._series[("util", (("machine", "m1"),))] = type(
            m._series[("util", (("machine", "m0"),))])()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # empty-mean warns -> fails
            out = render_panel(m, "util")
        assert "m1  (no points)" in out
        assert "mean 0.5" in out  # the populated row still renders

    def test_panel_of_only_empty_series_renders(self):
        import warnings

        m = Monarch()
        m.write("util", {"machine": "m0"}, 0.0, 0.5)
        m._series[("util", (("machine", "m0"),))].times.clear()
        m._series[("util", (("machine", "m0"),))].values.clear()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = render_panel(m, "util")
        assert "(no points)" in out
