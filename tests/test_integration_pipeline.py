"""End-to-end integration: every Tier-A analysis renders from one study.

This is the "does the whole pipeline hold together" test: one catalog, one
fleet study, every fleet-wide analysis computed and rendered, and the
cross-analysis consistency relations that must hold between figures.
"""

import numpy as np
import pytest

from repro.core.cycles import analyze_cycle_tax, analyze_method_cycles
from repro.core.errors import analyze_errors
from repro.core.latency import analyze_latency_distribution
from repro.core.popularity import analyze_popularity
from repro.core.services import analyze_services
from repro.core.sizes import analyze_sizes
from repro.core.tax import (
    analyze_fleet_tax,
    analyze_netstack,
    analyze_queueing,
    analyze_tax_ratio,
)


@pytest.fixture(scope="module")
def analyses(fleet_sample):
    return {
        "latency": analyze_latency_distribution(fleet_sample),
        "popularity": analyze_popularity(fleet_sample),
        "sizes": analyze_sizes(fleet_sample),
        "services": analyze_services(fleet_sample),
        "tax": analyze_fleet_tax(fleet_sample),
        "tax_ratio": analyze_tax_ratio(fleet_sample),
        "netstack": analyze_netstack(fleet_sample),
        "queueing": analyze_queueing(fleet_sample),
        "cycles": analyze_cycle_tax(fleet_sample.gwp),
        "method_cycles": analyze_method_cycles(fleet_sample),
        "errors": analyze_errors(fleet_sample),
    }


def test_every_analysis_renders(analyses):
    for name, result in analyses.items():
        text = result.render()
        assert isinstance(text, str) and len(text) > 40, name
        assert "paper" in text or "measured" in text, name


def test_figures_are_mutually_consistent(fleet_sample, analyses):
    # Fig 10's fleet tax equals the sum of its own component fractions.
    tax = analyses["tax"]
    assert sum(tax.component_fractions.values()) == pytest.approx(
        tax.tax_fraction, rel=1e-9
    )
    # Fig 11's per-method ratios and Fig 10's fleet ratio describe the
    # same quantity at different weightings: both must be genuine
    # fractions.
    assert 0 < analyses["tax_ratio"].median_method_median_ratio < 1
    assert 0 < tax.tax_fraction < 1

    # Fig 13's queueing is a subset of Fig 11's tax: per method,
    # queue P99 <= tax-implied RCT P99.
    for m in fleet_sample.methods[:50]:
        assert m.pct("queueing", 99) <= m.pct("rct", 99) + 1e-12

    # Fig 12's wire+stack is similarly bounded by the completion time.
    for m in fleet_sample.methods[:50]:
        assert m.pct("netstack", 99) <= m.pct("rct", 99) + 1e-12

    # Fig 3 and Fig 8: service call shares and method popularity are one
    # distribution rolled up two ways.
    services_total = sum(v["calls"] for v in
                         analyses["services"].shares.values())
    assert services_total == pytest.approx(1.0, rel=1e-6)
    assert fleet_sample.popularity().sum() == pytest.approx(1.0, rel=1e-6)


def test_gwp_and_summaries_agree_on_scale(fleet_sample):
    # GWP's popularity-weighted application total equals the summaries'
    # weighted mean app cycles (same attribution, two bookkeepers).
    summary_app = sum(m.popularity * m.mean_app_cycles
                      for m in fleet_sample.methods)
    gwp_app = fleet_sample.gwp.totals["application"]
    assert gwp_app == pytest.approx(summary_app, rel=0.05)
