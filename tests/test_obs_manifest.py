"""Tests for run manifests (`repro.obs.manifest`)."""

import io
import json

import pytest

from repro.obs.manifest import (
    MANIFEST_VERSION,
    ManifestBuilder,
    ManifestError,
    RunManifest,
    config_digest,
    read_manifest,
    write_manifest,
)
from repro.sim.engine import Simulator


def build_sample(wall_clock=None) -> RunManifest:
    b = ManifestBuilder("sample", seed=7, wall_clock=wall_clock)
    b.set_config(duration_s=3.0, services=["Bigtable"])
    with b.phase("simulate"):
        pass
    with b.phase("export", telemetry=True):
        pass
    b.add_counts(events_fired=100, spans_recorded=40)
    return b.finish()


def test_digest_is_stable_and_order_independent():
    a = config_digest({"x": 1, "y": [1, 2]})
    b = config_digest({"y": [1, 2], "x": 1})
    assert a == b
    assert a.startswith("sha256:")
    assert config_digest({"x": 2, "y": [1, 2]}) != a


def test_roundtrip_through_file(tmp_path):
    manifest = build_sample()
    path = str(tmp_path / "run.manifest.json")
    write_manifest(manifest, path)
    back = read_manifest(path)
    assert back.to_dict() == manifest.to_dict()
    assert back.schema_version == MANIFEST_VERSION
    assert back.counts == {"events_fired": 100, "spans_recorded": 40}


def test_phases_record_wall_time_via_injected_clock():
    ticks = iter([0.0, 2.5, 10.0, 10.75])
    manifest = build_sample(wall_clock=lambda: next(ticks))
    by_name = {p["name"]: p for p in manifest.phases}
    assert by_name["simulate"]["wall_s"] == pytest.approx(2.5)
    assert by_name["export"]["wall_s"] == pytest.approx(0.75)
    assert by_name["export"]["telemetry"] is True
    # Overhead = sum of telemetry-flagged phases only.
    assert manifest.telemetry_overhead_wall_s == pytest.approx(0.75)


def test_no_clock_means_zero_wall_time():
    manifest = build_sample()
    assert all(p["wall_s"] == 0.0 for p in manifest.phases)
    assert manifest.telemetry_overhead_wall_s == 0.0


def test_phase_records_even_when_body_raises():
    b = ManifestBuilder("boom", seed=1)
    with pytest.raises(RuntimeError):
        with b.phase("explode"):
            raise RuntimeError("boom")
    assert b.finish().phases[0]["name"] == "explode"


def test_observe_sim_pulls_engine_accounting():
    sim = Simulator()
    h = sim.at(1.0, lambda: None)
    sim.at(2.0, lambda: None)
    h.cancel()
    sim.run_until(3.0)
    b = ManifestBuilder("engine", seed=3)
    b.observe_sim(sim)
    manifest = b.finish()
    assert manifest.counts["events_fired"] == 1
    assert manifest.counts["events_cancelled"] == 1
    assert manifest.sim_time_s == pytest.approx(sim.now)
    assert manifest.peak_heap == 2


def test_read_rejects_bad_json():
    with pytest.raises(ManifestError, match="not valid JSON"):
        read_manifest(io.StringIO("{nope"))


def test_read_rejects_non_object():
    with pytest.raises(ManifestError, match="must be an object"):
        read_manifest(io.StringIO("[1, 2]"))


def test_read_rejects_missing_keys():
    doc = build_sample().to_dict()
    del doc["counts"]
    with pytest.raises(ManifestError, match="missing keys.*counts"):
        read_manifest(io.StringIO(json.dumps(doc)))


def test_read_rejects_unknown_version():
    doc = build_sample().to_dict()
    doc["schema_version"] = 99
    with pytest.raises(ManifestError, match="schema_version 99"):
        read_manifest(io.StringIO(json.dumps(doc)))


def test_read_rejects_digest_mismatch():
    doc = build_sample().to_dict()
    doc["config"]["duration_s"] = 999.0  # tampered after digesting
    with pytest.raises(ManifestError, match="digest mismatch"):
        read_manifest(io.StringIO(json.dumps(doc)))


def test_alerts_round_trip_through_manifest(tmp_path):
    from repro.obs.alerting import AlertEvent

    events = [
        AlertEvent(t=2.0, slo="s", severity="page", state="pending",
                   burn_long=20.0, burn_short=25.0,
                   labels=(("method", "A/B"),)),
        AlertEvent(t=3.0, slo="s", severity="page", state="firing",
                   burn_long=90.0, burn_short=95.0,
                   exemplars=((0.25, 42),)),
    ]
    b = ManifestBuilder("alerted", seed=1)
    b.set_config(duration_s=1.0)
    b.add_alerts(events)
    manifest = b.finish()
    assert len(manifest.alerts) == 2
    path = tmp_path / "manifest.json"
    write_manifest(manifest, str(path))
    loaded = read_manifest(str(path))
    assert loaded.alerts == manifest.alerts
    clones = [AlertEvent.from_dict(doc) for doc in loaded.alerts]
    assert clones[1].exemplars == ((0.25, 42),)
    assert clones[0].labels == (("method", "A/B"),)


def test_alerts_accepts_plain_dicts():
    b = ManifestBuilder("alerted", seed=1)
    b.add_alerts([{"t": 1.0, "slo": "s", "severity": "page",
                   "state": "firing", "burn_long": 5.0, "burn_short": 6.0,
                   "labels": {}, "exemplars": []}])
    manifest = b.finish()
    assert manifest.alerts[0]["state"] == "firing"


def test_no_alerts_key_when_empty(tmp_path):
    manifest = build_sample()
    assert manifest.alerts == []
    assert "alerts" not in manifest.to_dict()
    # Old manifests (no alerts key) still load, with alerts defaulting.
    path = tmp_path / "manifest.json"
    write_manifest(manifest, str(path))
    assert read_manifest(str(path)).alerts == []
