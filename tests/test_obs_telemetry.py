"""Tests for the obs-layer probe implementations (`repro.obs.telemetry`)."""

import pytest

from repro.obs.chrometrace import validate_trace_events
from repro.obs.dashboard import render_heartbeat
from repro.obs.metrics import MetricRegistry
from repro.obs.telemetry import (
    ENGINE_PID,
    RPC_PID,
    HeartbeatProbe,
    MetricsProbe,
    TraceEventProbe,
)
from repro.sim.engine import Simulator
from repro.sim.queues import Job, ServerPool


def run_pool_workload(probe, jobs=8, servers=2):
    sim = Simulator(probe=probe)
    pool = ServerPool(sim, servers=servers, name="srv")
    for i in range(jobs):
        sim.at(0.01 * i, lambda: pool.submit(Job(service_time=0.05)))
    sim.run_until(5.0)
    return sim


# ------------------------------------------------------------- metrics
def test_metrics_probe_engine_counters():
    reg = MetricRegistry()
    probe = MetricsProbe(reg)
    sim = run_pool_workload(probe)
    assert reg.counter("telemetry/events_fired").value == sim.events_fired
    assert reg.counter("telemetry/events_scheduled").value >= sim.events_fired
    # The gauge tracks the last *fired* event's time, which run_until may
    # have advanced past.
    last_event_s = reg.gauge("telemetry/sim_time_s").read()
    assert 0.0 < last_event_s <= sim.now


def test_metrics_probe_cancellation_counter():
    reg = MetricRegistry()
    sim = Simulator(probe=MetricsProbe(reg))
    h = sim.at(1.0, lambda: None)
    h.cancel()
    sim.run_until(2.0)
    assert reg.counter("telemetry/events_cancelled").value == 1


def test_metrics_probe_per_pool_series():
    reg = MetricRegistry()
    run_pool_workload(MetricsProbe(reg), jobs=10)
    wait = reg.distribution("telemetry/queue_wait_s", {"pool": "srv"})
    service = reg.distribution("telemetry/queue_service_s", {"pool": "srv"})
    assert len(wait.samples()) == 10
    assert len(service.samples()) == 10
    assert service.mean == pytest.approx(0.05)


def test_metrics_probe_rpc_hooks():
    reg = MetricRegistry()
    probe = MetricsProbe(reg)
    probe.rpc_attempt("S/m", 0.0, 1)
    probe.rpc_attempt("S/m", 0.1, 2)
    probe.rpc_hedge("S/m", 0.1)
    probe.rpc_completed("S/m", 0.2, "OK", 0.2, 2)
    probe.rpc_stage("server/handler", 1e-4)
    probe.rpc_deadline_hit("S/m", 0.5, 0.3)
    assert reg.counter("telemetry/rpc_attempts", {"method": "S/m"}).value == 2
    assert reg.counter("telemetry/rpc_hedges", {"method": "S/m"}).value == 1
    assert reg.counter("telemetry/rpc_completed", {"method": "S/m"}).value == 1
    assert reg.counter("telemetry/rpc_deadline_hits").value == 1
    lat = reg.distribution("telemetry/rpc_latency_s", {"method": "S/m"})
    assert lat.mean == pytest.approx(0.2)
    stage = reg.distribution("telemetry/rpc_stage_s",
                             {"stage": "server/handler"})
    assert len(stage.samples()) == 1


def test_metrics_probe_default_registry():
    probe = MetricsProbe()
    assert isinstance(probe.registry, MetricRegistry)


# ----------------------------------------------------------- heartbeat
def test_heartbeat_counts_without_wall_clock():
    hb = HeartbeatProbe()
    sim = run_pool_workload(hb, jobs=5)
    snap = hb.snapshot()
    assert snap["events_fired"] == sim.events_fired
    assert snap["sim_time_s"] == pytest.approx(hb.sim_time_s)
    assert snap["wall_s"] == 0.0
    assert snap["events_per_s"] == 0.0
    assert snap["sim_time_rate"] == 0.0


def test_heartbeat_rates_with_injected_clock():
    ticks = iter([100.0, 102.0])  # constructor, snapshot
    hb = HeartbeatProbe(wall_clock=lambda: next(ticks))
    hb.event_fired(4.0, 0)
    hb.event_fired(8.0, 0)
    snap = hb.snapshot()
    assert snap["wall_s"] == pytest.approx(2.0)
    assert snap["events_per_s"] == pytest.approx(1.0)
    assert snap["sim_time_rate"] == pytest.approx(4.0)


def test_render_heartbeat_panel():
    hb = HeartbeatProbe()
    run_pool_workload(hb, jobs=3)
    text = render_heartbeat(hb.snapshot(), "unit test")
    assert "heartbeat: unit test" in text
    assert "fired" in text
    # No wall clock -> no rate line.
    assert "events/s" not in text

    with_rates = render_heartbeat(
        {"sim_time_s": 2.0, "events_fired": 100, "events_scheduled": 100,
         "rpcs_completed": 4, "hedges": 0, "wall_s": 0.5,
         "events_per_s": 200.0, "sim_time_rate": 4.0})
    assert "events/s" in with_rates
    assert "sim/wall 4.0x" in with_rates


# ---------------------------------------------------------- trace probe
def test_trace_probe_pool_slices_validate():
    probe = TraceEventProbe(heap_sample_every=4)
    run_pool_workload(probe, jobs=12, servers=3)
    events = probe.trace_events()
    validate_trace_events(events)
    slices = [e for e in events if e["ph"] == "X"]
    assert len(slices) == 12
    assert all(e["pid"] == ENGINE_PID for e in slices)
    counters = [e for e in events if e["ph"] == "C"]
    assert counters and all(e["name"] == "heap_size" for e in counters)
    names = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert names == {"engine", "rpc"}


def test_trace_probe_overlapping_jobs_split_into_lanes():
    # Three servers run staggered 1 s jobs that partially overlap: one tid
    # can't hold them, so export must fan out to extra lanes.
    probe = TraceEventProbe()
    sim = Simulator(probe=probe)
    pool = ServerPool(sim, servers=3, name="srv")
    for i in range(3):
        sim.at(0.4 * i, lambda: pool.submit(Job(service_time=1.0)))
    sim.run_until(5.0)
    events = probe.trace_events()
    validate_trace_events(events)
    tids = {e["tid"] for e in events if e["ph"] == "X"}
    assert len(tids) == 3
    lane_names = [e["args"]["name"] for e in events
                  if e["ph"] == "M" and e["name"] == "thread_name"]
    assert any("(lane" in n for n in lane_names)


def test_trace_probe_rpc_slices():
    probe = TraceEventProbe()
    probe.rpc_completed("S/m", 0.010, "OK", 0.004, 1)
    probe.rpc_completed("S/m", 0.020, "DEADLINE_EXCEEDED", 0.005, 2)
    events = probe.trace_events()
    validate_trace_events(events)
    slices = [e for e in events if e["ph"] == "X"]
    assert [e["pid"] for e in slices] == [RPC_PID, RPC_PID]
    assert slices[0]["ts"] == pytest.approx(6000.0)  # (0.010-0.004) s -> us
    assert slices[0]["dur"] == pytest.approx(4000.0)
    assert slices[1]["args"] == {"status": "DEADLINE_EXCEEDED", "attempts": 2}


def test_trace_probe_heap_sampling_rate():
    probe = TraceEventProbe(heap_sample_every=10)
    for i in range(25):
        probe.event_fired(float(i), heap_size=i)
    counters = [e for e in probe.trace_events() if e["ph"] == "C"]
    assert len(counters) == 2  # fired events 10 and 20


def test_trace_probe_rejects_bad_sampling():
    with pytest.raises(ValueError):
        TraceEventProbe(heap_sample_every=0)
