"""Tests for the columnar spill format (`repro.core.shardstore`).

The contract under test is the cache family's: atomic writes, a manifest
as the commit point, and *any* unreadable or inconsistent shard behaving
as a miss that unlinks itself — so the caller's only recovery path is
regenerating the shard from its derived seed.
"""

import json

import numpy as np
import pytest

from repro.core.shardstore import SPILL_SCHEMA, ShardStore
from repro.rpc.calltree import FlatForest


def _forest(n_trees=3, seed=0):
    """A small well-formed forest: roots first, then a child per root."""
    rng = np.random.default_rng(seed)
    n = n_trees * 2
    return FlatForest(
        method_ids=rng.integers(0, 50, size=n).astype(np.int64),
        parents=np.concatenate([np.full(n_trees, -1),
                                np.arange(n_trees)]),
        depths=np.concatenate([np.zeros(n_trees, dtype=np.int64),
                               np.ones(n_trees, dtype=np.int64)]),
        tree_ids=np.concatenate([np.arange(n_trees), np.arange(n_trees)]),
        n_trees=n_trees,
        truncated=np.zeros(n_trees, dtype=bool),
    )


class TestRoundTrip:
    def test_put_get_roundtrip(self, tmp_path):
        store = ShardStore(tmp_path, run_key="demo")
        forest = _forest()
        nbytes = store.put(0, forest)
        assert nbytes > 0 and store.bytes_written == nbytes
        back = store.get(0, expect_trees=forest.n_trees)
        assert back is not None
        assert np.array_equal(back.method_ids, forest.method_ids)
        assert np.array_equal(back.parents, forest.parents)
        assert np.array_equal(back.depths, forest.depths)
        assert np.array_equal(back.tree_ids, forest.tree_ids)
        assert np.array_equal(back.truncated, forest.truncated)
        assert back.n_trees == forest.n_trees
        assert store.shards_reused == 1

    def test_get_returns_memmap_views(self, tmp_path):
        store = ShardStore(tmp_path, run_key="demo")
        store.put(0, _forest())
        back = store.get(0)
        assert isinstance(back.method_ids, np.memmap)

    def test_missing_shard_is_a_miss(self, tmp_path):
        store = ShardStore(tmp_path, run_key="demo")
        assert store.get(7) is None

    def test_run_key_must_be_plain(self, tmp_path):
        with pytest.raises(ValueError):
            ShardStore(tmp_path, run_key="../escape")
        with pytest.raises(ValueError):
            ShardStore(tmp_path, run_key="")


class TestCorruption:
    def test_truncated_column_is_a_miss_and_unlinked(self, tmp_path):
        store = ShardStore(tmp_path, run_key="demo")
        store.put(0, _forest())
        paths = store.shard_paths(0)
        # Chop the parents column mid-payload, as a killed writer would.
        data = paths["parents"].read_bytes()
        paths["parents"].write_bytes(data[: len(data) // 2])
        assert store.get(0, expect_trees=3) is None
        assert not any(p.exists() for p in paths.values())

    def test_garbage_column_is_a_miss(self, tmp_path):
        store = ShardStore(tmp_path, run_key="demo")
        store.put(0, _forest())
        store.shard_paths(0)["method_ids"].write_bytes(b"not an npy file")
        assert store.get(0) is None

    def test_inconsistent_column_lengths_are_a_miss(self, tmp_path):
        store = ShardStore(tmp_path, run_key="demo")
        store.put(0, _forest())
        paths = store.shard_paths(0)
        with paths["depths"].open("wb") as fh:
            np.save(fh, np.zeros(99, dtype=np.int16))
        assert store.get(0) is None
        assert not paths["depths"].exists()

    def test_wrong_tree_count_is_a_miss(self, tmp_path):
        store = ShardStore(tmp_path, run_key="demo")
        store.put(0, _forest(n_trees=3))
        assert store.get(0, expect_trees=5) is None
        assert store.get(0) is None  # dropped, not just rejected

    def test_regeneration_after_corruption_roundtrips(self, tmp_path):
        store = ShardStore(tmp_path, run_key="demo")
        forest = _forest(seed=3)
        store.put(0, forest)
        store.shard_paths(0)["tree_ids"].write_bytes(b"junk")
        assert store.get(0) is None
        store.put(0, forest)  # the caller regenerates and respills
        back = store.get(0, expect_trees=forest.n_trees)
        assert back is not None
        assert np.array_equal(back.tree_ids, forest.tree_ids)


class TestManifest:
    def test_finalize_then_manifest(self, tmp_path):
        store = ShardStore(tmp_path, run_key="demo")
        assert store.manifest() is None
        shards = [{"shard": 0, "n_trees": 3, "n_nodes": 6}]
        store.finalize(shards)
        payload = store.manifest()
        assert payload is not None
        assert payload["schema"] == SPILL_SCHEMA
        assert payload["run_key"] == "demo"
        assert payload["n_shards"] == 1
        assert payload["shards"] == shards

    def test_foreign_run_key_rejected(self, tmp_path):
        ShardStore(tmp_path, run_key="demo").finalize([])
        other = ShardStore(tmp_path, run_key="demo")
        other.run_key = "other"  # same dir read under a different key
        assert other.manifest() is None

    def test_corrupt_manifest_rejected(self, tmp_path):
        store = ShardStore(tmp_path, run_key="demo")
        store.finalize([])
        store.manifest_path.write_text("{ not json")
        assert store.manifest() is None

    def test_wrong_schema_rejected(self, tmp_path):
        store = ShardStore(tmp_path, run_key="demo")
        store.finalize([])
        payload = json.loads(store.manifest_path.read_text())
        payload["schema"] = SPILL_SCHEMA + 1
        store.manifest_path.write_text(json.dumps(payload))
        assert store.manifest() is None
