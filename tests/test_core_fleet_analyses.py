"""Tests for the Tier-A fleet analyses (Figs. 1-3, 6-8, 10-13, 20-21, 23).

These run against a 300-method catalog: assertions target the paper's
qualitative shape with bands wide enough for the small scale; the
full-scale quantitative comparison lives in the benchmarks.
"""

import numpy as np
import pytest

from repro.core.calltree import run_tree_study
from repro.core.cycles import analyze_cycle_tax, analyze_method_cycles
from repro.core.errors import analyze_errors
from repro.core.fleetsample import run_fleet_study
from repro.core.growth import GrowthModel, run_growth_study
from repro.core.latency import analyze_latency_distribution
from repro.core.popularity import analyze_popularity
from repro.core.services import analyze_services
from repro.core.sizes import analyze_sizes
from repro.core.tax import (
    analyze_fleet_tax,
    analyze_netstack,
    analyze_queueing,
    analyze_tax_ratio,
)
from repro.rpc.errors import StatusCode


# ----------------------------------------------------------------------
# Fig. 1
# ----------------------------------------------------------------------
class TestGrowth:
    def test_ratio_growth_near_paper(self):
        r = run_growth_study(days=700)
        assert r.annual_growth == pytest.approx(0.30, abs=0.05)
        assert r.total_growth == pytest.approx(0.64, abs=0.12)

    def test_normalized_to_day_one(self):
        r = run_growth_study(days=100)
        assert r.normalized_ratio[0] == pytest.approx(1.0)

    def test_monotone_trend_despite_noise(self):
        r = run_growth_study(days=700)
        # Smoothed over months, the ratio must rise steadily.
        smoothed = np.convolve(r.normalized_ratio, np.ones(30) / 30, "valid")
        assert np.all(np.diff(smoothed[::30]) > 0)

    def test_custom_model(self):
        m = GrowthModel(rps_annual_growth=0.0,
                        cycles_per_rpc_annual_decline=0.0,
                        noise_sigma=0.0, weekly_amplitude=0.0)
        r = run_growth_study(days=50, model=m)
        assert r.annual_growth == pytest.approx(0.0, abs=1e-6)


# ----------------------------------------------------------------------
# Fig. 2
# ----------------------------------------------------------------------
class TestLatencyDistribution:
    def test_anchor_shape(self, fleet_sample):
        r = analyze_latency_distribution(fleet_sample)
        assert r.frac_p1_under_657us > 0.6
        assert r.frac_median_over_10_7ms > 0.7
        assert r.frac_p99_over_1ms > 0.98
        # Median-method P99 at ms scale, within ~3x of the paper's 225 ms.
        assert 75e-3 < r.median_method_p99_s < 700e-3
        # Slowest methods operate at second scale.
        assert r.slowest5_min_p99_s > 1.0
        assert r.slowest5_min_p1_s > 30e-3

    def test_grid_sorted(self, fleet_sample):
        r = analyze_latency_distribution(fleet_sample)
        med = r.grid[:, r.percentiles.index(50)]
        assert np.all(np.diff(med) >= 0)

    def test_render_mentions_anchors(self, fleet_sample):
        out = analyze_latency_distribution(fleet_sample).render()
        assert "P1<=657us" in out and "paper" in out


# ----------------------------------------------------------------------
# Fig. 3
# ----------------------------------------------------------------------
class TestPopularity:
    def test_skew_anchors(self, fleet_sample):
        r = analyze_popularity(fleet_sample)
        assert r.top1_share == pytest.approx(0.28, abs=0.01)
        assert r.top10_share == pytest.approx(0.58, abs=0.03)
        assert r.top100_share == pytest.approx(0.91, abs=0.04)

    def test_fast_methods_hold_most_calls(self, fleet_sample):
        r = analyze_popularity(fleet_sample)
        # head_k scales to 3 methods at n=300, so this is noisy: the
        # full-scale comparison is the bench's job. Qualitatively, the
        # fastest handful must carry far more than their 1% count share.
        assert r.fastest_share > 0.03
        pop = fleet_sample.popularity()
        med = np.array([m.pct("rct", 50) for m in fleet_sample.methods])
        order = np.argsort(med)
        fastest_decile = pop[order[: len(pop) // 10]].sum()
        assert fastest_decile > 0.35

    def test_slow_methods_take_most_time(self, fleet_sample):
        r = analyze_popularity(fleet_sample)
        assert r.slowest_call_share < 0.1
        assert r.slowest_time_share > 0.35
        assert r.slowest_time_share > 10 * r.slowest_call_share


# ----------------------------------------------------------------------
# Figs. 4-5
# ----------------------------------------------------------------------
class TestCallTrees:
    def test_wider_than_deep(self, small_catalog):
        r = run_tree_study(small_catalog, n_trees=120,
                           rng=np.random.default_rng(2), max_nodes=5000)
        # Median method sees modest descendant counts but heavy tails,
        # while depth stays bounded (the paper's headline shape).
        assert r.descendants_median_q50 < 200
        assert r.ancestors_p99_q50 < 10
        assert r.max_depth_seen < 20

    def test_heavy_descendant_tail(self, small_catalog):
        r = run_tree_study(small_catalog, n_trees=120,
                           rng=np.random.default_rng(2), max_nodes=5000)
        descendants = np.concatenate(list(r.per_method_descendants.values()))
        assert descendants.max() > 500


# ----------------------------------------------------------------------
# Figs. 6-7
# ----------------------------------------------------------------------
class TestSizes:
    def test_kb_scale_medians_heavy_tails(self, fleet_sample):
        r = analyze_sizes(fleet_sample)
        assert 0.3 < r.frac_req_median_under_1530 < 0.75
        assert 0.3 < r.frac_resp_median_under_315 < 0.75
        assert r.median_method_req_p99 > 10 * r.median_method_req_p90 / 4
        assert r.min_request_bytes >= 64

    def test_write_dominant_majority(self, fleet_sample):
        r = analyze_sizes(fleet_sample)
        assert r.frac_methods_write_dominant > 0.5

    def test_mtu_coverage_partial_missing_tail(self, fleet_sample):
        r = analyze_sizes(fleet_sample)
        # An MTU-bound offload helps a real fraction of calls but can
        # never cover the heavy size tail (the paper's Zerializer point).
        assert 0.15 < r.mtu_coverage_by_calls < 0.999


# ----------------------------------------------------------------------
# Fig. 8
# ----------------------------------------------------------------------
class TestServices:
    def test_network_disk_dominates_calls_not_cycles(self, fleet_sample):
        r = analyze_services(fleet_sample)
        assert r.network_disk["calls"] == pytest.approx(0.35, abs=0.06)
        assert r.network_disk["cycles"] < r.network_disk["calls"] / 3

    def test_top8_share(self, fleet_sample):
        r = analyze_services(fleet_sample)
        # Small catalogs concentrate the tail into fewer services, so the
        # upper band is loose; the paper's value is 0.60.
        assert 0.5 < r.top8_call_share < 0.92

    def test_compute_services_invert(self, fleet_sample):
        shares = analyze_services(fleet_sample).shares
        ml = shares["MLInference"]
        assert ml["cycles"] > ml["calls"]  # expensive per call


# ----------------------------------------------------------------------
# Figs. 10-13
# ----------------------------------------------------------------------
class TestTax:
    def test_fleet_tax_small_and_network_led(self, fleet_sample):
        r = analyze_fleet_tax(fleet_sample)
        assert 0.005 < r.tax_fraction < 0.12
        f = r.component_fractions
        assert f["network_wire"] > f["proc_stack"]
        assert sum(f.values()) == pytest.approx(r.tax_fraction, rel=1e-6)

    def test_tail_tax_larger_and_network_skewed(self, fleet_sample):
        r = analyze_fleet_tax(fleet_sample)
        assert r.tail_tax_fraction > 1.25 * r.tax_fraction
        tf = r.tail_component_fractions
        assert tf["network_wire"] == max(tf.values())

    def test_tax_ratio_shape(self, fleet_sample):
        r = analyze_tax_ratio(fleet_sample)
        assert 0.01 < r.median_method_median_ratio < 0.25
        assert r.top10pct_methods_median_ratio > 2 * r.median_method_median_ratio
        assert r.p99_ratio_span[1] > 0.9  # some methods are all tax at P99

    def test_netstack_p99_spans_orders_of_magnitude(self, fleet_sample):
        r = analyze_netstack(fleet_sample)
        q = r.p99_quantiles
        assert q[0.01] < q[0.50] < q[0.99]
        assert q[0.99] / q[0.01] > 20
        assert 20e-3 < q[0.50] < 400e-3  # median method P99 at WAN scale

    def test_queueing_shape(self, fleet_sample):
        r = analyze_queueing(fleet_sample)
        assert r.frac_median_under_360us > 0.35
        assert r.worst10pct_p99_s > 50 * r.worst10pct_median_s


# ----------------------------------------------------------------------
# Figs. 20-21
# ----------------------------------------------------------------------
class TestCycles:
    def test_cycle_tax_fraction_band(self, fleet_sample):
        r = analyze_cycle_tax(fleet_sample.gwp)
        assert 0.02 < r.tax_fraction < 0.15
        f = r.category_fractions
        assert f["compression"] == max(f.values())  # Fig. 20's headline
        assert sum(f.values()) == pytest.approx(r.tax_fraction, rel=1e-6)

    def test_method_cycles_floor_and_tail(self, fleet_sample):
        r = analyze_method_cycles(fleet_sample)
        lo, hi = r.p10_band
        assert 0.015 < lo < 0.035
        assert hi < 0.08  # cheap calls hug the dispatch floor fleet-wide
        assert r.p99_over_median_median > 5

    def test_cycles_weakly_correlated(self, fleet_sample):
        r = analyze_method_cycles(fleet_sample)
        assert abs(r.corr_cycles_latency) < 0.6
        assert abs(r.corr_cycles_size) < 0.6


# ----------------------------------------------------------------------
# Fig. 23
# ----------------------------------------------------------------------
class TestErrors:
    def test_mix_and_cycle_skew(self, fleet_sample):
        # Popularity weighting makes these tallies noisy at 150 samples
        # per method (the head method contributes ~3 error draws with 28%
        # of the weight); the bench checks the calibrated values.
        r = analyze_errors(fleet_sample)
        assert r.count_shares[StatusCode.CANCELLED] == pytest.approx(0.45, abs=0.2)
        assert StatusCode.NOT_FOUND in r.count_shares
        assert r.count_shares[StatusCode.CANCELLED] == max(r.count_shares.values())
        # Cancellations burn an outsized cycle share.
        assert (r.cycle_shares[StatusCode.CANCELLED]
                > 0.7 * r.count_shares[StatusCode.CANCELLED])

    def test_error_rate_near_paper(self, fleet_sample):
        r = analyze_errors(fleet_sample)
        assert r.error_rate == pytest.approx(0.019, abs=0.012)


def test_fleet_study_rejects_tiny_samples(small_catalog):
    with pytest.raises(ValueError):
        run_fleet_study(small_catalog, samples_per_method=5)
