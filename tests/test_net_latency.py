"""Tests for the wire-latency model."""

import numpy as np
import pytest

from repro.fleet.topology import FleetSpec, build_fleet
from repro.net.latency import (
    LIGHT_SPEED_FIBER_KM_S,
    NetworkModel,
    PathClass,
)

FLEET = build_fleet(FleetSpec())
NET = NetworkModel()
RNG = np.random.default_rng(5)


def clusters_of_classes():
    """One cluster pair per path class from the default fleet."""
    pairs = {}
    for a, b in FLEET.iter_cluster_pairs():
        pairs.setdefault(NET.classify(a, b), (a, b))
    pairs[PathClass.SAME_CLUSTER] = (FLEET.clusters[0], FLEET.clusters[0])
    return pairs


def test_classification_covers_all_classes():
    assert set(clusters_of_classes()) == set(PathClass)


def test_classification_is_symmetric():
    for a, b in FLEET.iter_cluster_pairs():
        assert NET.classify(a, b) is NET.classify(b, a)


def test_propagation_ordering_by_locality():
    pairs = clusters_of_classes()
    lat = {cls: NET.propagation_s(*pair) for cls, pair in pairs.items()}
    assert lat[PathClass.SAME_CLUSTER] < lat[PathClass.SAME_DATACENTER]
    assert lat[PathClass.SAME_DATACENTER] < lat[PathClass.SAME_REGION]
    assert lat[PathClass.SAME_REGION] < lat[PathClass.WAN]


def test_max_wan_rtt_near_paper_200ms():
    rtt = NET.max_wan_rtt_s(FLEET.clusters)
    # Paper: longest WAN RTT ~200 ms; geometry should land within 25%.
    assert 0.15 <= rtt <= 0.25


def test_rtt_is_twice_oneway():
    a, b = FLEET.clusters[0], FLEET.clusters[-1]
    assert NET.rtt_s(a, b) == pytest.approx(2 * NET.propagation_s(a, b))


def test_sampled_latency_at_least_fraction_of_propagation():
    a, b = clusters_of_classes()[PathClass.WAN]
    base = NET.propagation_s(a, b)
    x = NET.sample_oneway(RNG, a, b, n=2000)
    # WAN jitter sigma is small: samples hug the deterministic propagation.
    assert np.median(x) == pytest.approx(base, rel=0.15)
    assert x.min() > 0.5 * base


def test_message_size_adds_transfer_time():
    a, b = FLEET.clusters[0], FLEET.clusters[0]
    small = NET.sample_oneway(RNG, a, b, size_bytes=64, n=4000).mean()
    big = NET.sample_oneway(RNG, a, b, size_bytes=10_000_000, n=4000).mean()
    assert big > small + 5e-3  # 10 MB at 8 Gbps is ~10 ms


def test_congestion_creates_tail_not_median():
    a, b = clusters_of_classes()[PathClass.WAN]
    x = NET.sample_oneway(RNG, a, b, n=20_000)
    base = NET.propagation_s(a, b)
    assert np.percentile(x, 50) < 1.3 * base
    assert np.percentile(x, 99.5) > 1.3 * base


def test_oneway_sampler_matches_model_distribution():
    a, b = clusters_of_classes()[PathClass.SAME_REGION]
    sampler = NET.oneway_sampler(np.random.default_rng(1), a, b)
    fast = np.array([sampler.sample(1000, 0.0) for _ in range(5000)])
    slow = NET.sample_oneway(np.random.default_rng(2), a, b, 1000, 5000)
    # Same model parameters -> matching medians within sampling noise.
    assert np.median(fast) == pytest.approx(np.median(slow), rel=0.1)


def test_propagation_deterministic():
    a, b = FLEET.clusters[0], FLEET.clusters[-1]
    assert NET.propagation_s(a, b) == NET.propagation_s(a, b)
    assert NET.propagation_s(a, b) == NET.propagation_s(b, a)


def test_speed_of_light_bound():
    """No deterministic latency may beat light in fiber."""
    from repro.fleet.topology import distance_km
    for a, b in list(FLEET.iter_cluster_pairs())[:200]:
        d = distance_km(a.region, b.region)
        assert NET.propagation_s(a, b) >= d / LIGHT_SPEED_FIBER_KM_S
