"""ChaCha20 tests against the RFC 8439 vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc.crypto import (
    chacha20_block,
    chacha20_decrypt,
    chacha20_encrypt,
    keystream,
)

# RFC 8439 §2.3.2 test vector.
RFC_KEY = bytes(range(32))
RFC_NONCE = bytes.fromhex("000000090000004a00000000")
RFC_BLOCK_1 = bytes.fromhex(
    "10f1e7e4d13b5915500fdd1fa32071c4"
    "c7d1f4c733c068030422aa9ac3d46c4e"
    "d2826446079faa0914c2d705d98b02a2"
    "b5129cd1de164eb9cbd083e8a2503c4e"
)

# RFC 8439 §2.4.2: encryption of the "sunscreen" plaintext.
SUNSCREEN_KEY = bytes(range(32))
SUNSCREEN_NONCE = bytes.fromhex("000000000000004a00000000")
SUNSCREEN_PLAINTEXT = (
    b"Ladies and Gentlemen of the class of '99: If I could offer you "
    b"only one tip for the future, sunscreen would be it."
)
SUNSCREEN_CIPHERTEXT = bytes.fromhex(
    "6e2e359a2568f98041ba0728dd0d6981"
    "e97e7aec1d4360c20a27afccfd9fae0b"
    "f91b65c5524733ab8f593dabcd62b357"
    "1639d624e65152ab8f530c359f0861d8"
    "07ca0dbf500d6a6156a38e088a22b65e"
    "52bc514d16ccf806818ce91ab7793736"
    "5af90bbf74a35be6b40b8eedf2785e42"
    "874d"
)


def test_rfc8439_block_function():
    assert chacha20_block(RFC_KEY, 1, RFC_NONCE) == RFC_BLOCK_1


def test_rfc8439_sunscreen_encryption():
    ct = chacha20_encrypt(SUNSCREEN_KEY, SUNSCREEN_NONCE,
                          SUNSCREEN_PLAINTEXT, counter=1)
    assert ct == SUNSCREEN_CIPHERTEXT


def test_rfc8439_sunscreen_decryption():
    pt = chacha20_decrypt(SUNSCREEN_KEY, SUNSCREEN_NONCE,
                          SUNSCREEN_CIPHERTEXT, counter=1)
    assert pt == SUNSCREEN_PLAINTEXT


def test_block_is_64_bytes():
    assert len(chacha20_block(RFC_KEY, 0, RFC_NONCE)) == 64


def test_keystream_length_and_prefix_stability():
    short = keystream(RFC_KEY, RFC_NONCE, 100)
    long = keystream(RFC_KEY, RFC_NONCE, 200)
    assert len(short) == 100 and len(long) == 200
    assert long[:100] == short


def test_keystream_zero_length():
    assert keystream(RFC_KEY, RFC_NONCE, 0) == b""


def test_keystream_negative_length_rejected():
    with pytest.raises(ValueError):
        keystream(RFC_KEY, RFC_NONCE, -1)


def test_bad_key_and_nonce_sizes_rejected():
    with pytest.raises(ValueError):
        chacha20_block(b"short", 0, RFC_NONCE)
    with pytest.raises(ValueError):
        chacha20_block(RFC_KEY, 0, b"short")
    with pytest.raises(ValueError):
        chacha20_block(RFC_KEY, -1, RFC_NONCE)
    with pytest.raises(ValueError):
        chacha20_block(RFC_KEY, 2**32, RFC_NONCE)


def test_different_nonces_different_streams():
    a = keystream(RFC_KEY, b"\x00" * 12, 64)
    b = keystream(RFC_KEY, b"\x01" + b"\x00" * 11, 64)
    assert a != b


def test_counter_advances_stream():
    a = keystream(RFC_KEY, RFC_NONCE, 64, counter=1)
    b = keystream(RFC_KEY, RFC_NONCE, 64, counter=2)
    assert a != b
    both = keystream(RFC_KEY, RFC_NONCE, 128, counter=1)
    assert both == a + b


@given(data=st.binary(max_size=500), counter=st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_encrypt_decrypt_roundtrip(data, counter):
    ct = chacha20_encrypt(RFC_KEY, RFC_NONCE, data, counter)
    assert chacha20_decrypt(RFC_KEY, RFC_NONCE, ct, counter) == data
    if data:
        assert ct != data or len(data) == 0
