"""Tests for the pre-wired studies (the glue layer)."""

import numpy as np
import pytest

from repro.rpc.errors import ErrorModel, StatusCode
from repro.rpc.hedging import HedgingPolicy
from repro.sim.distributions import Exponential
from repro.studies import (
    run_cross_cluster_study,
    run_diurnal_study,
    run_queueing_study,
    run_service_study,
)


def test_diurnal_study_covers_the_day():
    study = run_diurnal_study(n_slices=4, slice_duration_s=0.4)
    spans = study.dapper.spans_for_method("Bigtable", "SearchValue")
    assert spans
    starts = np.array([s.start_time for s in spans])
    # Slices land across the 24h span.
    assert starts.max() - starts.min() > 0.5 * 86400
    # Two clusters: one fast, one slow.
    clusters = {s.server_cluster for s in spans}
    assert len(clusters) == 2


def test_diurnal_study_explicit_clusters():
    study = run_diurnal_study(n_slices=2, slice_duration_s=0.3,
                              clusters=(0, 1))
    clusters = {s.server_cluster for s in study.dapper.spans}
    assert len(clusters) == 2


def test_service_study_with_errors_and_hedging():
    study = run_service_study(
        services=["KVStore"], n_clusters=1, duration_s=1.0,
        error_model=ErrorModel(error_rate=0.05),
        hedging=HedgingPolicy(enabled=True, delay_s=2e-3),
        dapper_sampling=1.0,
    )
    statuses = {s.status for s in study.dapper.spans}
    assert StatusCode.OK in statuses
    # The configured error model produces organic errors.
    assert any(st.is_error for st in statuses)


def test_service_study_demand_spread_changes_cluster_rates():
    flat = run_service_study(services=["KVStore"], n_clusters=2,
                             duration_s=0.8, seed=3, dapper_sampling=1.0)
    spread = run_service_study(services=["KVStore"], n_clusters=2,
                               duration_s=0.8, seed=3, dapper_sampling=1.0,
                               per_cluster_rate_spread=0.6)

    flat_rates = sorted(d.base_rate for d in flat.drivers)
    spread_rates = sorted(d.base_rate for d in spread.drivers)
    # Per-cluster pacing already differentiates rates slightly (slow
    # clusters are offered less); the demand spread widens the gap well
    # beyond that, bounded by the stability clip.
    flat_ratio = flat_rates[-1] / flat_rates[0]
    spread_ratio = spread_rates[-1] / spread_rates[0]
    assert spread_ratio > flat_ratio
    assert spread_ratio <= flat_ratio * (1.18 / 0.7) + 1e-6


def test_cross_cluster_study_spans_geography():
    study = run_cross_cluster_study(n_client_clusters=6, duration_s=4.0,
                                    calls_per_cluster_rps=20.0)
    spans = study.dapper.spans
    assert len({s.client_cluster for s in spans}) == 6
    assert len({s.server_cluster for s in spans}) == 1


def test_service_study_too_many_clusters_rejected():
    with pytest.raises(ValueError):
        run_service_study(services=["KVStore"], n_clusters=10_000,
                          duration_s=0.1)


def test_queueing_study_matches_mm1_and_is_deterministic():
    # rho = 0.6 M/M/1: E[Wq] = rho / (mu - lam) = 1.5 ms; generous band
    # because a 30k-job run still carries autocorrelated noise.
    study = run_queueing_study(600.0, Exponential(1e-3), servers=1,
                               n_jobs=30_000, seed=11)
    # Utilization is measured from the actual draws, so it's near —
    # not exactly — the offered rho.
    assert study.utilization == pytest.approx(0.6, rel=0.02)
    assert study.n_jobs == 27_000  # 10% warmup discarded
    assert study.mean_wait_s() == pytest.approx(1.5e-3, rel=0.15)
    assert study.wait_quantile(0.5) < study.wait_quantile(0.99)
    assert study.stderr_mean_wait_s() > 0.0
    again = run_queueing_study(600.0, Exponential(1e-3), servers=1,
                               n_jobs=30_000, seed=11)
    assert np.array_equal(again.waits, study.waits)


def test_queueing_study_multi_server_waits_less():
    # Same offered load per server: pooling k=4 servers cuts the wait.
    one = run_queueing_study(700.0, Exponential(1e-3), servers=1,
                             n_jobs=20_000, seed=5)
    four = run_queueing_study(2800.0, Exponential(1e-3), servers=4,
                              n_jobs=20_000, seed=5)
    assert four.utilization == pytest.approx(one.utilization, rel=0.02)
    assert four.mean_wait_s() < one.mean_wait_s()


def test_queueing_study_rejects_bad_params():
    with pytest.raises(ValueError):
        run_queueing_study(0.0, Exponential(1e-3))
    with pytest.raises(ValueError):
        run_queueing_study(100.0, Exponential(1e-3), n_jobs=0)
    with pytest.raises(ValueError):
        run_queueing_study(100.0, Exponential(1e-3), warmup_fraction=1.0)
