"""Tests for the machine model and exogenous-state process."""

import numpy as np
import pytest

from repro.fleet.machine import DAY_SECONDS, Machine, MachineProfile
from repro.fleet.topology import Cluster, Datacenter, Region
from repro.sim.engine import Simulator


def make_cluster(speed_factor: float = 1.0) -> Cluster:
    region = Region("r", 0.0, 0.0)
    dc = Datacenter("r-dc0", region)
    return Cluster("r-dc0-c0", dc, 0, speed_factor=speed_factor)


def make_machine(sim=None, **profile_kwargs) -> Machine:
    sim = sim or Simulator()
    return Machine(sim, make_cluster(), 0,
                   profile=MachineProfile(**profile_kwargs),
                   rng=np.random.default_rng(7))


def test_exogenous_fields_in_range():
    m = make_machine()
    for t in np.linspace(0, 2 * DAY_SECONDS, 50):
        exo = m.exogenous(t)
        assert 0.0 <= exo.cpu_util <= 1.0
        assert 0.0 < exo.memory_bw_gbps <= m.profile.memory_bw_capacity_gbps
        assert 0.0 <= exo.long_wakeup_rate <= 1.0
        assert exo.cycles_per_inst >= m.profile.base_cpi


def test_background_util_diurnal_variation():
    m = make_machine(diurnal_amplitude=0.2, noise_amplitude=0.0)
    utils = [m.background_util(t) for t in np.linspace(0, DAY_SECONDS, 200)]
    assert max(utils) - min(utils) > 0.25  # ~2x the amplitude


def test_exogenous_deterministic_function_of_time():
    sim = Simulator()
    m = make_machine(sim)
    a = m.exogenous(1234.0)
    b = m.exogenous(1234.0)
    assert a == b


def test_exogenous_cache_respects_buckets():
    m = make_machine()
    a = m.exogenous(10.0)
    b = m.exogenous(10.9)  # different 0.5s bucket -> recomputed
    assert isinstance(b, type(a))


def test_service_multiplier_at_least_cpi_floor():
    m = make_machine()
    assert m.service_multiplier(0.0) >= 1.0


def test_busy_machine_is_slower():
    hot = make_machine(background_util_mean=0.9, diurnal_amplitude=0.0,
                       noise_amplitude=0.0)
    cold = make_machine(background_util_mean=0.05, diurnal_amplitude=0.0,
                        noise_amplitude=0.0)
    assert hot.service_multiplier(0.0) > cold.service_multiplier(0.0)


def test_reserved_cores_damp_coupling():
    hot_kwargs = dict(background_util_mean=0.9, diurnal_amplitude=0.0,
                      noise_amplitude=0.0)
    shared = make_machine(**hot_kwargs)
    reserved = make_machine(reserved_cores=True, **hot_kwargs)
    assert reserved.service_multiplier(0.0) < shared.service_multiplier(0.0)


def test_slow_cluster_pressure_raises_util():
    sim = Simulator()
    rng = np.random.default_rng(7)
    fast = Machine(sim, make_cluster(speed_factor=1.0), 0,
                   profile=MachineProfile(noise_amplitude=0.0,
                                          diurnal_amplitude=0.0),
                   rng=np.random.default_rng(7))
    slow = Machine(sim, make_cluster(speed_factor=3.0), 0,
                   profile=MachineProfile(noise_amplitude=0.0,
                                          diurnal_amplitude=0.0),
                   rng=np.random.default_rng(7))
    assert slow.background_util(0.0) > fast.background_util(0.0)


def test_execute_inflates_service_time():
    sim = Simulator()
    m = make_machine(sim, background_util_mean=0.9, diurnal_amplitude=0.0,
                     noise_amplitude=0.0)
    done = []
    m.execute(1.0, on_done=lambda w: done.append(sim.now))
    sim.run()
    assert len(done) == 1
    assert done[0] > 1.0  # CPI inflation


def test_rpc_util_reflects_busy_pool():
    sim = Simulator()
    m = make_machine(sim, cores=2)
    assert m.rpc_util() == 0.0
    m.execute(1.0, on_done=lambda w: None)
    assert m.rpc_util() == pytest.approx(0.5)
    sim.run()
    assert m.rpc_util() == 0.0


def test_sample_wakeup_nonnegative():
    m = make_machine()
    for _ in range(50):
        assert m.sample_wakeup(0.0) >= 0.0
