"""Fixture tests for the whole-program rule families (RL006-RL009).

Each family gets at least one true positive that crosses a module
boundary and one pragma-suppressed false positive — the same shape the
real findings in ``src/repro`` take."""

import textwrap
from pathlib import Path

from repro.analysis.config import LintConfig
from repro.analysis.runner import lint_paths

NO_BASELINE = Path("/nonexistent-baseline.json")


def lint_project(tmp_path, files, **config_kwargs):
    """Write ``{relpath: source}`` under tmp_path and lint the tree."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    config_kwargs.setdefault("root", str(tmp_path))
    config_kwargs.setdefault("baseline", None)
    config = LintConfig(**config_kwargs)
    return lint_paths([tmp_path], config, baseline_path=NO_BASELINE)


def codes(report):
    return [f.code for f in report.findings]


def symbols(report):
    return [f.symbol for f in report.findings]


class TestRL006HiddenState:
    CONFIG = dict(select=("RL006",),
                  worker_entrypoint_modules=("repro.workers",))

    def test_mutated_global_two_imports_away(self, tmp_path):
        report = lint_project(tmp_path, {
            "repro/workers.py": "from repro.middle import run\n",
            "repro/middle.py": "from repro.registry import lookup\n"
                               "def run(name):\n"
                               "    return lookup(name)\n",
            "repro/registry.py": "_cache = {}\n"
                                 "def lookup(name):\n"
                                 "    if name not in _cache:\n"
                                 "        _cache[name] = name.upper()\n"
                                 "    return _cache[name]\n",
        }, **self.CONFIG)
        assert codes(report) == ["RL006"]
        assert report.findings[0].path == "repro/registry.py"
        assert report.findings[0].symbol == "mutated-global:_cache"

    def test_global_rebind_and_memo_and_class_mutable(self, tmp_path):
        report = lint_project(tmp_path, {
            "repro/workers.py": """\
                import functools

                _generator = None

                def init():
                    global _generator
                    _generator = object()

                @functools.lru_cache(maxsize=None)
                def expensive(x):
                    return x * 2

                class Shared:
                    registry = []
            """,
        }, **self.CONFIG)
        assert codes(report) == ["RL006", "RL006", "RL006"]
        assert set(symbols(report)) == {
            "global-rebound:_generator",
            "memo:repro.workers.expensive",
            "class-mutable:repro.workers.Shared.registry",
        }

    def test_unreachable_module_not_flagged(self, tmp_path):
        report = lint_project(tmp_path, {
            "repro/workers.py": "x = 1\n",
            "repro/elsewhere.py": "_cache = {}\n"
                                  "def f(k):\n"
                                  "    _cache[k] = k\n",
        }, **self.CONFIG)
        assert codes(report) == []

    def test_import_time_table_building_ok(self, tmp_path):
        report = lint_project(tmp_path, {
            "repro/workers.py": """\
                TABLE = {}
                for i in range(4):
                    TABLE[i] = i * i

                def read(k):
                    return TABLE[k]
            """,
        }, **self.CONFIG)
        assert codes(report) == []

    def test_local_shadowing_not_flagged(self, tmp_path):
        report = lint_project(tmp_path, {
            "repro/workers.py": """\
                _totals = {}

                def summarize(items):
                    _totals = {}
                    for item in items:
                        _totals[item] = 1
                    return _totals
            """,
        }, **self.CONFIG)
        assert codes(report) == []

    def test_worker_entrypoints_constant_registers_root(self, tmp_path):
        # No config root: the module declares itself via the constant.
        report = lint_project(tmp_path, {
            "repro/pool.py": """\
                WORKER_ENTRYPOINTS = ("_shard",)
                _state = {}

                def _shard(i):
                    _state[i] = i
                    return _state
            """,
        }, select=("RL006",), worker_entrypoint_modules=())
        assert codes(report) == ["RL006"]

    def test_pragma_suppresses_initializer_pattern(self, tmp_path):
        report = lint_project(tmp_path, {
            "repro/workers.py": """\
                _generator = None  # repro-lint: disable=RL006 - rebuilt deterministically by the pool initializer

                def init(config):
                    global _generator
                    _generator = config
            """,
        }, **self.CONFIG)
        assert codes(report) == []
        assert report.suppressed_pragma == 1


class TestRL007CacheKeys:
    CONFIG = dict(select=("RL007",),
                  cache_key_functions=("repro.cachelib.make_key",))

    FILES = {
        "repro/cachelib.py": """\
            def make_key(study, seed, params):
                return repr((study, seed, sorted(params.items())))
        """,
    }

    def test_attribute_read_but_not_keyed(self, tmp_path):
        report = lint_project(tmp_path, dict(self.FILES, **{
            "repro/study.py": """\
                from repro.cachelib import make_key

                def run_cached(cfg, seed, cache):
                    key = make_key("toy", seed, {"n": cfg.n})
                    if key in cache:
                        return cache[key]
                    cache[key] = cfg.n * cfg.scale
                    return cache[key]
            """,
        }), **self.CONFIG)
        assert codes(report) == ["RL007"]
        assert report.findings[0].symbol == "unkeyed:repro.study.run_cached:cfg.scale"

    def test_unkeyed_parameter(self, tmp_path):
        report = lint_project(tmp_path, dict(self.FILES, **{
            "repro/study.py": """\
                from repro.cachelib import make_key

                def run_cached(cfg, seed, extra, cache):
                    key = make_key("toy", seed, {"n": cfg.n})
                    cache[key] = cfg.n + extra
                    return cache[key]
            """,
        }), **self.CONFIG)
        assert symbols(report) == ["unkeyed:repro.study.run_cached:extra"]

    def test_wholesale_flow_chased_across_modules(self, tmp_path):
        report = lint_project(tmp_path, dict(self.FILES, **{
            "repro/compute.py": """\
                def simulate(cfg):
                    return cfg.n * cfg.scale
            """,
            "repro/study.py": """\
                from repro.cachelib import make_key
                from repro.compute import simulate

                def run_cached(cfg, seed, cache):
                    key = make_key("toy", seed, {"n": cfg.n})
                    cache[key] = simulate(cfg)
                    return cache[key]
            """,
        }), **self.CONFIG)
        assert symbols(report) == ["unkeyed:repro.study.run_cached:cfg:wholesale"]
        assert "cfg.scale" in report.findings[0].message

    def test_fully_keyed_param_is_clean(self, tmp_path):
        report = lint_project(tmp_path, dict(self.FILES, **{
            "repro/study.py": """\
                from repro.cachelib import make_key

                def run_cached(cfg, seed, cache):
                    key = make_key("toy", seed, {"cfg": cfg})
                    cache[key] = cfg.n * cfg.scale
                    return cache[key]
            """,
        }), **self.CONFIG)
        assert codes(report) == []

    def test_ignored_params_stay_out(self, tmp_path):
        report = lint_project(tmp_path, dict(self.FILES, **{
            "repro/study.py": """\
                from repro.cachelib import make_key

                def run_cached(cfg, seed, cache, probe):
                    key = make_key("toy", seed, {"cfg": cfg})
                    probe.observe(cfg.n)
                    cache[key] = cfg.n
                    return cache[key]
            """,
        }), **self.CONFIG)
        assert codes(report) == []

    def test_cache_key_functions_constant(self, tmp_path):
        # The module declares its own key function via the constant.
        report = lint_project(tmp_path, {
            "repro/study.py": """\
                CACHE_KEY_FUNCTIONS = ("make_key",)

                def make_key(seed, params):
                    return repr((seed, params))

                def run_cached(cfg, seed, cache):
                    key = make_key(seed, {"n": cfg.n})
                    cache[key] = cfg.n * cfg.scale
                    return cache[key]
            """,
        }, select=("RL007",), cache_key_functions=())
        assert symbols(report) == ["unkeyed:repro.study.run_cached:cfg.scale"]

    def test_pragma_suppresses_provably_inert_param(self, tmp_path):
        report = lint_project(tmp_path, dict(self.FILES, **{
            "repro/study.py": """\
                from repro.cachelib import make_key

                def run_cached(cfg, seed, jobs, cache):
                    key = make_key("toy", seed, {"cfg": cfg})
                    cache[key] = compute(
                        cfg,
                        jobs,  # repro-lint: disable=RL007 - jobs cannot change the output, only how fast it arrives
                    )
                    return cache[key]
            """,
        }), **self.CONFIG)
        assert codes(report) == []
        assert report.suppressed_pragma == 1


class TestRL008UnitFlow:
    CONFIG = dict(select=("RL008",))

    def test_cross_module_return_flows_into_wrong_suffix(self, tmp_path):
        report = lint_project(tmp_path, {
            "repro/backoff.py": """\
                def backoff_ms(attempt):
                    return 2.0 ** attempt
            """,
            "repro/sched.py": """\
                from repro.backoff import backoff_ms

                def plan(attempt):
                    wait = backoff_ms(attempt)
                    delay_s = wait
                    return delay_s
            """,
        }, **self.CONFIG)
        assert codes(report) == ["RL008"]
        assert report.findings[0].symbol == "assign:delay_s:_ms"

    def test_argument_flow_into_suffixed_param(self, tmp_path):
        report = lint_project(tmp_path, {
            "repro/engine.py": """\
                def schedule(delay_s, fn):
                    return (delay_s, fn)
            """,
            "repro/user.py": """\
                from repro.engine import schedule

                def go(fn, wait_ms):
                    return schedule(wait_ms, fn)
            """,
        }, **self.CONFIG)
        assert codes(report) == ["RL008"]
        assert "wait_ms" in report.findings[0].message or \
            "_ms" in report.findings[0].message

    def test_division_clears_the_unit(self, tmp_path):
        report = lint_project(tmp_path, {
            "repro/engine.py": """\
                def schedule(delay_s, fn):
                    return (delay_s, fn)
            """,
            "repro/user.py": """\
                from repro.engine import schedule

                def go(fn, wait_ms):
                    return schedule(wait_ms / 1000.0, fn)
            """,
        }, **self.CONFIG)
        assert codes(report) == []

    def test_return_against_function_suffix(self, tmp_path):
        report = lint_project(tmp_path, {
            "repro/mod.py": """\
                def total_latency_s(parts_ms):
                    acc_ms = sum(parts_ms)
                    return acc_ms
            """,
        }, **self.CONFIG)
        assert codes(report) == ["RL008"]
        assert report.findings[0].symbol.startswith("return:")

    def test_dimension_mixing_flagged(self, tmp_path):
        report = lint_project(tmp_path, {
            "repro/mod.py": """\
                def f(payload_bytes):
                    wait_s = payload_bytes
                    return wait_s
            """,
        }, **self.CONFIG)
        assert codes(report) == ["RL008"]
        assert "dimensions" in report.findings[0].message

    def test_keyword_name_contract_on_unresolved_call(self, tmp_path):
        report = lint_project(tmp_path, {
            "repro/mod.py": """\
                def go(engine, wait_ms):
                    engine.after(delay_s=wait_ms)
            """,
        }, **self.CONFIG)
        assert codes(report) == ["RL008"]

    def test_pragma_suppresses_known_good_flow(self, tmp_path):
        report = lint_project(tmp_path, {
            "repro/mod.py": """\
                def f(rate_s):
                    count_ms = rate_s  # repro-lint: disable=RL008 - legacy field name, holds seconds despite the suffix
                    return count_ms
            """,
        }, **self.CONFIG)
        assert codes(report) == []
        assert report.suppressed_pragma == 1


class TestRL009ProbePurity:
    CONFIG = dict(select=("RL009",),
                  probe_base_classes=("repro.instrument.Probe",))

    BASE = {
        "repro/instrument.py": """\
            class Probe:
                def rpc_completed(self, rpc, outcome):
                    pass

                def job_started(self, job):
                    pass
        """,
    }

    def test_engine_mutation_from_hook_flagged(self, tmp_path):
        report = lint_project(tmp_path, dict(self.BASE, **{
            "repro/probes.py": """\
                from repro.instrument import Probe

                class RetryNudge(Probe):
                    def rpc_completed(self, rpc, outcome):
                        if outcome is None:
                            self.engine.at(0.0, rpc)
            """,
        }), **self.CONFIG)
        assert codes(report) == ["RL009"]
        assert "self.engine.at" in report.findings[0].message

    def test_argument_mutation_flagged(self, tmp_path):
        report = lint_project(tmp_path, dict(self.BASE, **{
            "repro/probes.py": """\
                from repro.instrument import Probe

                class Tamper(Probe):
                    def job_started(self, job):
                        job.priority = 0
            """,
        }), **self.CONFIG)
        assert codes(report) == ["RL009"]
        assert report.findings[0].symbol.endswith(":store")

    def test_global_declaration_flagged(self, tmp_path):
        report = lint_project(tmp_path, dict(self.BASE, **{
            "repro/probes.py": """\
                from repro.instrument import Probe

                SEEN = 0

                class Count(Probe):
                    def job_started(self, job):
                        global SEEN
                        SEEN = SEEN + 1
            """,
        }), **self.CONFIG)
        assert codes(report) == ["RL009"]

    def test_self_owned_state_is_fine(self, tmp_path):
        report = lint_project(tmp_path, dict(self.BASE, **{
            "repro/probes.py": """\
                from repro.instrument import Probe

                class DropCounter(Probe):
                    def __init__(self):
                        self.drops = 0
                        self.events = []

                    def rpc_completed(self, rpc, outcome):
                        self.drops += 1
                        self.events.append(rpc)

                    def reset(self):
                        self.drops = 0
            """,
        }), **self.CONFIG)
        assert codes(report) == []

    def test_transitive_subclass_through_alias(self, tmp_path):
        report = lint_project(tmp_path, dict(self.BASE, **{
            "repro/mid.py": """\
                import repro.instrument as ri

                class BaseStats(ri.Probe):
                    pass
            """,
            "repro/probes.py": """\
                from repro.mid import BaseStats

                class Leaf(BaseStats):
                    def job_started(self, job):
                        job.queue.submit(job)
            """,
        }), **self.CONFIG)
        assert codes(report) == ["RL009"]
        assert report.findings[0].path == "repro/probes.py"

    def test_non_hook_methods_unconstrained(self, tmp_path):
        report = lint_project(tmp_path, dict(self.BASE, **{
            "repro/probes.py": """\
                from repro.instrument import Probe

                class Flusher(Probe):
                    def flush(self, sink):
                        sink.send(self.buffer)
            """,
        }), **self.CONFIG)
        assert codes(report) == []

    def test_pragma_suppresses_sanctioned_hook(self, tmp_path):
        report = lint_project(tmp_path, dict(self.BASE, **{
            "repro/probes.py": """\
                from repro.instrument import Probe

                class FaultInjector(Probe):
                    def rpc_completed(self, rpc, outcome):
                        self.engine.cancel(rpc)  # repro-lint: disable=RL009 - fault injector: mutation is this probe's documented purpose
            """,
        }), **self.CONFIG)
        assert codes(report) == []
        assert report.suppressed_pragma == 1
