"""Tests for the bench-trajectory regression guard (`tools/bench_guard.py`)."""

import importlib.util
import json
from pathlib import Path

import pytest

TOOL_PATH = (Path(__file__).resolve().parent.parent
             / "tools" / "bench_guard.py")

spec = importlib.util.spec_from_file_location("bench_guard", TOOL_PATH)
bench_guard = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_guard)


def write_trajectory(path, **figures):
    records = [{"figure": name, "wall_s": wall_s, "stats": {}}
               for name, wall_s in figures.items()]
    path.write_text(json.dumps(records))


def write_trajectory_with_stats(path, **figures):
    records = [{"figure": name, "wall_s": 1.0, "stats": stats}
               for name, stats in figures.items()]
    path.write_text(json.dumps(records))


def test_newest_baseline_picks_highest_pr_number(tmp_path):
    for name in ("BENCH_PR2.json", "BENCH_PR4.json", "BENCH_PR10.json",
                 "BENCH_PRx.json", "BENCH.json"):
        (tmp_path / name).write_text("[]")
    newest = bench_guard.newest_baseline(str(tmp_path))
    assert newest.endswith("BENCH_PR10.json")  # numeric, not lexicographic


def test_newest_baseline_missing(tmp_path):
    with pytest.raises(FileNotFoundError):
        bench_guard.newest_baseline(str(tmp_path))


def test_repo_has_a_committed_baseline():
    # The CI bench-smoke job depends on --print-newest resolving.
    assert Path(bench_guard.newest_baseline()).exists()


def test_print_newest_flag(capsys):
    assert bench_guard.main(["--print-newest"]) == 0
    out = capsys.readouterr().out.strip()
    assert out.endswith(".json")


def test_guard_passes_within_ratio(tmp_path, capsys):
    base, cur = tmp_path / "base.json", tmp_path / "cur.json"
    write_trajectory(base, fig04_descendants=1.0)
    write_trajectory(cur, fig04_descendants=1.2)
    assert bench_guard.main(["--baseline", str(base), "--current", str(cur),
                             "fig04_descendants"]) == 0


def test_guard_fails_on_regression(tmp_path, capsys):
    base, cur = tmp_path / "base.json", tmp_path / "cur.json"
    write_trajectory(base, fig04_descendants=1.0)
    write_trajectory(cur, fig04_descendants=2.0)
    assert bench_guard.main(["--baseline", str(base), "--current", str(cur),
                             "fig04_descendants"]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_guard_ignores_sub_min_wall_jitter(tmp_path):
    base, cur = tmp_path / "base.json", tmp_path / "cur.json"
    write_trajectory(base, quick_fig=0.001)
    write_trajectory(cur, quick_fig=0.004)  # 4x, but under --min-wall
    assert bench_guard.main(["--baseline", str(base), "--current", str(cur),
                             "quick_fig"]) == 0


def test_guard_flags_missing_figures(tmp_path, capsys):
    base, cur = tmp_path / "base.json", tmp_path / "cur.json"
    write_trajectory(base, fig04_descendants=1.0)
    write_trajectory(cur)
    assert bench_guard.main(["--baseline", str(base), "--current", str(cur),
                             "fig04_descendants", "absent_fig"]) == 1


def test_budget_within_ceiling_passes(tmp_path, capsys):
    cur = tmp_path / "cur.json"
    write_trajectory(cur, repro_lint_wall=2.3)
    assert bench_guard.main(["--current", str(cur),
                             "--budget", "repro_lint_wall=10.0"]) == 0
    assert "budget 10.000s" in capsys.readouterr().out


def test_budget_over_ceiling_fails(tmp_path, capsys):
    cur = tmp_path / "cur.json"
    write_trajectory(cur, repro_lint_wall=12.5)
    assert bench_guard.main(["--current", str(cur),
                             "--budget", "repro_lint_wall=10.0"]) == 1
    assert "over its 10.000s budget" in capsys.readouterr().err


def test_budget_needs_no_baseline_entry(tmp_path):
    # A figure introduced in the same PR has no committed baseline yet;
    # the absolute budget must still be checkable on its own.
    base, cur = tmp_path / "base.json", tmp_path / "cur.json"
    write_trajectory(base)                     # baseline lacks the figure
    write_trajectory(cur, repro_lint_wall=2.0)
    assert bench_guard.main(["--baseline", str(base), "--current", str(cur),
                             "--budget", "repro_lint_wall=10.0"]) == 0


def test_budget_missing_from_current_fails(tmp_path, capsys):
    cur = tmp_path / "cur.json"
    write_trajectory(cur)
    assert bench_guard.main(["--current", str(cur),
                             "--budget", "repro_lint_wall=10.0"]) == 1


def test_budget_rejects_malformed_spec(tmp_path, capsys):
    cur = tmp_path / "cur.json"
    write_trajectory(cur, repro_lint_wall=1.0)
    with pytest.raises(SystemExit):
        bench_guard.main(["--current", str(cur),
                          "--budget", "repro_lint_wall"])
    with pytest.raises(SystemExit):
        bench_guard.main(["--current", str(cur),
                          "--budget", "repro_lint_wall=-3"])


def test_rss_budget_within_ceiling_passes(tmp_path, capsys):
    cur = tmp_path / "cur.json"
    write_trajectory_with_stats(cur, stream_scale={"peak_rss_mb": 812.4})
    assert bench_guard.main(["--current", str(cur),
                             "--rss-budget", "stream_scale=2048"]) == 0
    assert "RSS budget 2048 MB" in capsys.readouterr().out


def test_rss_budget_over_ceiling_fails(tmp_path, capsys):
    cur = tmp_path / "cur.json"
    write_trajectory_with_stats(cur, stream_scale={"peak_rss_mb": 3100.0})
    assert bench_guard.main(["--current", str(cur),
                             "--rss-budget", "stream_scale=2048"]) == 1
    assert "over its 2048 MB budget" in capsys.readouterr().err


def test_rss_budget_missing_stat_fails(tmp_path, capsys):
    # Figure present but never recorded peak_rss_mb (bench did not run).
    cur = tmp_path / "cur.json"
    write_trajectory(cur, stream_scale=1.0)
    assert bench_guard.main(["--current", str(cur),
                             "--rss-budget", "stream_scale=2048"]) == 1
    assert "no peak_rss_mb" in capsys.readouterr().err


def test_rss_budget_combines_with_wall_checks(tmp_path):
    base, cur = tmp_path / "base.json", tmp_path / "cur.json"
    write_trajectory(base, fig04_descendants=1.0)
    cur.write_text(json.dumps([
        {"figure": "fig04_descendants", "wall_s": 1.1, "stats": {}},
        {"figure": "stream_scale", "wall_s": 30.0,
         "stats": {"peak_rss_mb": 500.0}},
    ]))
    assert bench_guard.main(["--baseline", str(base), "--current", str(cur),
                             "--rss-budget", "stream_scale=2048",
                             "fig04_descendants"]) == 0
