"""Tests for nested (multi-tier) DES execution."""

import numpy as np
import pytest

from repro.studies import run_multitier_study


@pytest.fixture(scope="module")
def study():
    return run_multitier_study(duration_s=1.5, frontend_rps=120.0, seed=41)


def test_traces_are_trees(study):
    traces = study.dapper.traces()
    assert len(traces) > 50
    multi = [t for t in traces.values() if len(t) > 1]
    assert len(multi) > 0.9 * len(traces)
    for spans in list(traces.values())[:50]:
        ids = {s.span_id for s in spans}
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 1
        # Every non-root span's parent is in the same trace.
        for s in spans:
            if s.parent_id is not None:
                assert s.parent_id in ids


def test_three_levels_present(study):
    services_by_depth = {}
    traces = study.dapper.traces()
    for spans in traces.values():
        by_id = {s.span_id: s for s in spans}

        def depth(s):
            d = 0
            while s.parent_id is not None:
                s = by_id[s.parent_id]
                d += 1
            return d

        for s in spans:
            services_by_depth.setdefault(depth(s), set()).add(s.service)
    assert "Frontend" in services_by_depth.get(0, set())
    assert "Bigtable" in services_by_depth.get(1, set())
    assert "NetworkDisk" in services_by_depth.get(2, set())


def test_parent_application_includes_child_waits(study):
    traces = study.dapper.traces()
    checked = 0
    for spans in traces.values():
        roots = [s for s in spans if s.parent_id is None]
        if not roots:
            continue
        root = roots[0]
        kids = [s for s in spans if s.parent_id == root.span_id]
        if not kids:
            continue
        # §2.1: nested call time is folded into the parent's application
        # component (waits run in parallel, so >= the slowest child).
        slowest = max(k.completion_time for k in kids)
        assert root.breakdown.server_application >= 0.8 * slowest
        checked += 1
        if checked >= 30:
            break
    assert checked > 10


def test_frontend_slower_than_leaves(study):
    fe = [s.completion_time for s in study.dapper.spans
          if s.service == "Frontend"]
    disk = [s.completion_time for s in study.dapper.spans
            if s.service == "NetworkDisk"]
    assert np.median(fe) > np.median(disk)


def test_trace_sizes_match_fanout_configuration(study):
    sizes = [len(v) for v in study.dapper.traces().values()]
    # 1 root + ~3 bigtable + ~2 kv + ~3*2 disk ~ 12 spans typical.
    assert 5 < np.median(sizes) < 25
