"""End-to-end proof of the RL007 contract on a seeded mutant.

The mutant is a cached study that reads ``cfg.scale`` but keys only
``cfg.n`` — exactly the bug class RL007 exists for.  The test shows
all three sides:

1. **the bug is real**: run the mutant against a real
   :class:`~repro.core.cache.StudyCache`, change ``scale``, and watch
   the cache serve the stale result (a hit, with the *old* number);
2. **the rule catches it**: linting the same source yields the RL007
   finding pointing at ``cfg.scale``;
3. **the fix is clean**: adding ``scale`` to the key makes the lint
   pass and the re-run a miss with the right number.
"""

import importlib.util
import textwrap
from pathlib import Path

from repro.analysis.config import LintConfig
from repro.analysis.runner import lint_paths
from repro.core.cache import StudyCache

NO_BASELINE = Path("/nonexistent-baseline.json")

BUGGY = """\
    from dataclasses import dataclass

    from repro.core.cache import study_key


    @dataclass(frozen=True)
    class ToyConfig:
        n: int
        scale: float


    def run_cached(cfg, seed, cache):
        key = study_key("toy", seed, {"n": cfg.n})
        return cache.get_or_compute(key, lambda: cfg.n * cfg.scale)
"""

# The fix: every field the body reads is part of the key.
FIXED = BUGGY.replace('{"n": cfg.n}', '{"n": cfg.n, "scale": cfg.scale}')


def write_module(tmp_path, source, stem):
    target = tmp_path / "repro" / f"{stem}.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return target


def import_module(path, name):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def lint_file(tmp_path, target):
    config = LintConfig(root=str(tmp_path), baseline=None,
                        select=("RL007",))
    return lint_paths([target], config, baseline_path=NO_BASELINE)


def test_mutant_serves_stale_hit_at_runtime(tmp_path):
    target = write_module(tmp_path, BUGGY, "toystudy")
    toy = import_module(target, "toystudy_buggy")
    cache = StudyCache(tmp_path / "cache")

    first, hit1 = toy.run_cached(toy.ToyConfig(n=3, scale=1.0), 0, cache)
    assert (first, hit1) == (3.0, False)

    # Change an input the key does not cover: the cache cannot tell the
    # difference and silently re-serves the old result.
    stale, hit2 = toy.run_cached(toy.ToyConfig(n=3, scale=2.0), 0, cache)
    assert hit2 is True
    assert stale == 3.0          # should be 6.0 — the stale-cache bug


def test_rule_catches_the_mutant_statically(tmp_path):
    target = write_module(tmp_path, BUGGY, "toystudy")
    report = lint_file(tmp_path, target)
    assert [f.code for f in report.findings] == ["RL007"]
    finding = report.findings[0]
    assert finding.symbol == "unkeyed:repro.toystudy.run_cached:cfg.scale"
    assert "stale" in finding.message


def test_fix_is_clean_and_correct(tmp_path):
    target = write_module(tmp_path, FIXED, "toystudy")
    assert lint_file(tmp_path, target).findings == []

    toy = import_module(target, "toystudy_fixed")
    cache = StudyCache(tmp_path / "cache")
    first, hit1 = toy.run_cached(toy.ToyConfig(n=3, scale=1.0), 0, cache)
    second, hit2 = toy.run_cached(toy.ToyConfig(n=3, scale=2.0), 0, cache)
    repeat, hit3 = toy.run_cached(toy.ToyConfig(n=3, scale=2.0), 0, cache)
    assert (first, hit1) == (3.0, False)
    assert (second, hit2) == (6.0, False)   # key change -> recompute
    assert (repeat, hit3) == (6.0, True)    # identical inputs -> hit
