"""Tests for the theory-vs-DES validation harness (repro.theory.validate)."""

import numpy as np
import pytest

from repro.theory.validate import (
    FANOUT_REL_TOL,
    GRIDS,
    AgreementReport,
    ValidationPoint,
    run_validation,
    sweep_fanout,
    sweep_whatif,
)


def point(theory=1.0, des=1.05, rel_tol=0.0, abs_tol=0.0, **kw):
    return ValidationPoint(kind=kw.pop("kind", "toy"),
                           regime=kw.pop("regime", "exact"),
                           params=kw.pop("params", {"rho": 0.5}),
                           theory=theory, des=des,
                           rel_tol=rel_tol, abs_tol=abs_tol)


# ----------------------------------------------------------------------
# Point and report mechanics
# ----------------------------------------------------------------------
def test_point_agreement_takes_the_looser_tolerance():
    # allowed = max(abs_tol, rel_tol * |theory|): either band can save it.
    assert point(theory=1.0, des=1.05, rel_tol=0.10).ok
    assert point(theory=1.0, des=1.05, abs_tol=0.06).ok
    assert not point(theory=1.0, des=1.05, rel_tol=0.01, abs_tol=0.01).ok
    p = point(theory=2.0, des=2.1, rel_tol=0.10, abs_tol=0.5)
    assert p.allowed == pytest.approx(0.5)
    assert p.error == pytest.approx(0.1)


def test_point_zero_theory_uses_absolute_band_only():
    assert point(theory=0.0, des=0.01, abs_tol=0.02).ok
    assert not point(theory=0.0, des=0.01, rel_tol=0.5).ok
    assert point(theory=0.0, des=0.01).rel_error == float("inf")


def test_point_to_dict_carries_the_verdict():
    doc = point(theory=1.0, des=1.2, rel_tol=0.1).to_dict()
    assert doc["ok"] is False
    assert doc["error"] == pytest.approx(0.2)
    assert doc["allowed"] == pytest.approx(0.1)
    assert doc["params"] == {"rho": 0.5}


def test_report_ok_and_breaches():
    good = point(rel_tol=0.10)
    bad = point(theory=1.0, des=2.0, rel_tol=0.10)
    report = AgreementReport(grid="ci", seed=1, points=[good, bad])
    assert not report.ok
    assert report.breaches() == [bad]
    doc = report.to_dict()
    assert doc["n_points"] == 2
    assert doc["n_breaches"] == 1
    assert len(doc["points"]) == 2
    # An all-good report is ok; an empty one vacuously so.
    assert AgreementReport(grid="ci", seed=1, points=[good]).ok
    assert AgreementReport(grid="ci", seed=1).ok


def test_report_render_flags_breaches():
    report = AgreementReport(grid="ci", seed=7, points=[
        point(rel_tol=0.10),
        point(theory=1.0, des=3.0, rel_tol=0.05),
    ])
    text = report.render()
    assert "grid=ci" in text and "seed=7" in text
    assert "BREACH" in text
    assert "1 TOLERANCE BREACH" in text


# ----------------------------------------------------------------------
# The cheap sweeps (no DES) run for real
# ----------------------------------------------------------------------
def test_sweep_fanout_agrees_and_is_deterministic():
    pts = sweep_fanout(seed=3, n_samples=50_000, fanouts=(2, 4))
    # 2 fanouts x 2 shapes x 2 quantiles
    assert len(pts) == 8
    assert all(p.ok for p in pts)
    assert all(p.rel_tol == FANOUT_REL_TOL for p in pts)
    again = sweep_fanout(seed=3, n_samples=50_000, fanouts=(2, 4))
    assert [p.to_dict() for p in again] == [p.to_dict() for p in pts]


def test_sweep_whatif_agrees_on_dominant_and_rescued():
    pts = sweep_whatif(seed=5, n_samples=20_000)
    kinds = {p.kind for p in pts}
    assert kinds == {"whatif-dominant", "whatif-rescued-dominant"}
    assert all(p.ok for p in pts)
    # Dominant agreement is encoded as an exact 0/1 point.
    for p in pts:
        if p.kind == "whatif-dominant":
            assert p.des == 1.0 and p.abs_tol == 0.0


def test_run_validation_selects_sweeps_and_rejects_unknowns():
    report = run_validation(grid="ci", seed=3, sweeps=("fanout",))
    assert report.ok
    assert report.grid == "ci"
    assert all(p.kind.startswith("fanout-") for p in report.points)
    with pytest.raises(ValueError):
        run_validation(grid="nightly")
    with pytest.raises(ValueError):
        run_validation(sweeps=("fanout", "chaos"))


def test_grids_are_well_formed():
    for name, cfg in GRIDS.items():
        assert set(cfg) == {"mm1_rhos", "mg1", "mgk_rhos", "mgk_sigmas",
                            "mgk_servers", "n_jobs"}, name
        assert all(0.0 < rho < 1.0 for rho in cfg["mm1_rhos"])
        assert all(0.0 < rho < 1.0 for rho in cfg["mgk_rhos"])
        assert int(cfg["n_jobs"]) > 0
    # full is a superset-depth grid of ci.
    assert GRIDS["full"]["n_jobs"] > GRIDS["ci"]["n_jobs"]
