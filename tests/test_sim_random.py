"""Tests for deterministic named RNG streams."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.random import RngRegistry, derive_seed


def test_same_key_same_stream_object():
    rngs = RngRegistry(1)
    assert rngs.stream("a") is rngs.stream("a")


def test_different_keys_different_sequences():
    rngs = RngRegistry(1)
    a = rngs.stream("a").random(5)
    b = rngs.stream("b").random(5)
    assert not (a == b).all()


def test_reproducible_across_registries():
    x = RngRegistry(42).stream("net", 3).random(4)
    y = RngRegistry(42).stream("net", 3).random(4)
    assert (x == y).all()


def test_creation_order_does_not_matter():
    r1 = RngRegistry(7)
    r1.stream("first")
    a = r1.stream("target").random(3)
    r2 = RngRegistry(7)
    b = r2.stream("target").random(3)
    assert (a == b).all()


def test_fresh_returns_new_generator_same_seed():
    rngs = RngRegistry(5)
    a = rngs.fresh("x").random(3)
    b = rngs.fresh("x").random(3)
    assert (a == b).all()  # same derived seed, fresh state each time


def test_fork_gives_independent_registry():
    parent = RngRegistry(9)
    child = parent.fork("worker", 1)
    assert child.seed != parent.seed
    a = parent.stream("k").random(3)
    b = child.stream("k").random(3)
    assert not (a == b).all()


def test_empty_key_rejected():
    rngs = RngRegistry(0)
    try:
        rngs.stream()
    except ValueError:
        pass
    else:
        raise AssertionError("expected ValueError")


def test_derive_seed_stable_values():
    # Regression pin: derivation must never change silently, or every
    # recorded experiment would shift.
    assert derive_seed(0, "a") == derive_seed(0, "a")
    assert derive_seed(0, "a") != derive_seed(1, "a")
    assert derive_seed(0, "a", 1) != derive_seed(0, "a", 2)


@given(seed=st.integers(0, 2**31), key=st.text(min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_derive_seed_in_64bit_range(seed, key):
    s = derive_seed(seed, key)
    assert 0 <= s < 2**64


@given(seed=st.integers(0, 2**31))
@settings(max_examples=30, deadline=None)
def test_string_vs_int_keys_distinct(seed):
    assert derive_seed(seed, "1") != derive_seed(seed, 1)
