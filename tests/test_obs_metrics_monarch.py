"""Tests for the metric registry and the Monarch time-series store."""

import numpy as np
import pytest

from repro.obs.metrics import Counter, DistributionMetric, Gauge, MetricRegistry
from repro.obs.monarch import Monarch, MonarchScraper
from repro.sim.engine import Simulator


class TestCounter:
    def test_monotonic(self):
        c = Counter()
        c.add()
        c.add(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.add(-1)


class TestGauge:
    def test_set_and_read(self):
        g = Gauge()
        g.set(4.2)
        assert g.read() == 4.2

    def test_callable_backed(self):
        g = Gauge(fn=lambda: 7.0)
        assert g.read() == 7.0
        with pytest.raises(ValueError):
            g.set(1.0)


class TestDistributionMetric:
    def test_exact_until_reservoir_full(self):
        d = DistributionMetric(reservoir_size=100)
        d.observe_many(range(100))
        assert d.count == 100
        assert d.mean == pytest.approx(49.5)
        assert d.percentile(50) == pytest.approx(49.5)
        assert d.min == 0 and d.max == 99

    def test_reservoir_bounded(self):
        d = DistributionMetric(reservoir_size=50)
        d.observe_many(range(10_000))
        assert len(d.samples()) == 50
        assert d.count == 10_000

    def test_reservoir_stays_representative(self):
        d = DistributionMetric(reservoir_size=1000,
                               rng=np.random.default_rng(0))
        d.observe_many(np.random.default_rng(1).normal(10, 2, 50_000))
        assert d.percentile(50) == pytest.approx(10.0, abs=0.5)

    def test_empty_percentile(self):
        assert DistributionMetric().percentile(99) == 0.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            DistributionMetric(reservoir_size=0)


class TestRegistry:
    def test_same_key_same_metric(self):
        r = MetricRegistry()
        assert r.counter("x") is r.counter("x")
        assert r.counter("x", {"a": "1"}) is not r.counter("x", {"a": "2"})

    def test_label_order_irrelevant(self):
        r = MetricRegistry()
        a = r.counter("x", {"a": "1", "b": "2"})
        b = r.counter("x", {"b": "2", "a": "1"})
        assert a is b

    def test_snapshot_contains_counters_and_gauges(self):
        r = MetricRegistry()
        r.counter("rpcs").add(5)
        r.gauge("depth").set(3.0)
        snap = r.snapshot()
        assert snap[("rpcs", ())] == 5
        assert snap[("depth", ())] == 3.0


class TestMonarch:
    def test_write_and_read(self):
        m = Monarch()
        m.write("x", {"c": "1"}, 0.0, 1.0)
        m.write("x", {"c": "1"}, 10.0, 2.0)
        t, v = m.read("x", {"c": "1"})
        assert list(t) == [0.0, 10.0]
        assert list(v) == [1.0, 2.0]

    def test_read_missing_series_empty(self):
        t, v = Monarch().read("nope")
        assert len(t) == 0 and len(v) == 0

    def test_out_of_order_write_rejected(self):
        m = Monarch()
        m.write("x", None, 10.0, 1.0)
        with pytest.raises(ValueError):
            m.write("x", None, 5.0, 2.0)

    def test_time_windowed_read(self):
        m = Monarch()
        for t in range(10):
            m.write("x", None, float(t), float(t))
        t, v = m.read("x", t_start=3.0, t_end=6.0)
        assert list(t) == [3.0, 4.0, 5.0, 6.0]

    def test_retention_trims_old_points(self):
        m = Monarch(retention_s=5.0)
        for t in range(10):
            m.write("x", None, float(t), float(t))
        t, v = m.read("x")
        assert t[0] >= 4.0

    def test_read_matching_filters_labels(self):
        m = Monarch()
        m.write("u", {"cluster": "a", "svc": "s"}, 0.0, 1.0)
        m.write("u", {"cluster": "b", "svc": "s"}, 0.0, 2.0)
        m.write("u", {"cluster": "a", "svc": "t"}, 0.0, 3.0)
        out = m.read_matching("u", {"svc": "s"})
        assert len(out) == 2

    def test_aggregate_sum_across_series(self):
        m = Monarch()
        m.write("rps", {"task": "1"}, 0.0, 10.0)
        m.write("rps", {"task": "2"}, 0.0, 20.0)
        m.write("rps", {"task": "1"}, 60.0, 30.0)
        times, vals = m.aggregate("rps", window_s=60.0)
        assert list(vals) == [30.0, 30.0]

    def test_aggregate_mean(self):
        m = Monarch()
        m.write("util", {"task": "1"}, 0.0, 0.2)
        m.write("util", {"task": "2"}, 0.0, 0.4)
        _, vals = m.aggregate("util", window_s=60.0, reducer="mean")
        assert vals[0] == pytest.approx(0.3)

    def test_aggregate_invalid_reducer(self):
        with pytest.raises(ValueError):
            Monarch().aggregate("x", 60.0, reducer="max")

    def test_series_keys_filtered(self):
        m = Monarch()
        m.write("a", None, 0.0, 1.0)
        m.write("b", None, 0.0, 1.0)
        assert len(m.series_keys()) == 2
        assert len(m.series_keys("a")) == 1


class TestScraper:
    def test_scrapes_registry_on_interval(self):
        sim = Simulator()
        monarch = Monarch()
        scraper = MonarchScraper(sim, monarch, interval_s=10.0)
        reg = MetricRegistry()
        reg.counter("rpcs")
        scraper.register(reg, {"task": "t0"})
        reg.counter("rpcs").add(5)
        sim.run_until(25.0)
        t, v = monarch.read("rpcs", {"task": "t0"})
        assert list(t) == [10.0, 20.0]
        assert list(v) == [5.0, 5.0]

    def test_collector_callback(self):
        sim = Simulator()
        monarch = Monarch()
        scraper = MonarchScraper(sim, monarch, interval_s=5.0)
        scraper.add_collector(lambda t: [("x", {"m": "0"}, t)])
        sim.run_until(11.0)
        t, v = monarch.read("x", {"m": "0"})
        assert list(v) == [5.0, 10.0]

    def test_stop_halts_scraping(self):
        sim = Simulator()
        monarch = Monarch()
        scraper = MonarchScraper(sim, monarch, interval_s=5.0)
        scraper.add_collector(lambda t: [("x", None, 1.0)])
        sim.run_until(6.0)
        scraper.stop()
        sim.run_until(30.0)
        t, _ = monarch.read("x")
        assert len(t) == 1


class TestRate:
    def test_rate_of_cumulative_counter(self):
        m = Monarch()
        for t, v in ((0.0, 0.0), (10.0, 50.0), (20.0, 150.0)):
            m.write("rpcs", None, t, v)
        mid, rates = m.rate("rpcs")
        assert list(mid) == [5.0, 15.0]
        assert list(rates) == [5.0, 10.0]

    def test_rate_handles_counter_reset(self):
        m = Monarch()
        for t, v in ((0.0, 100.0), (10.0, 5.0), (20.0, 55.0)):
            m.write("rpcs", None, t, v)
        _, rates = m.rate("rpcs")
        assert rates[0] == 0.0  # reset, not a negative spike
        assert rates[1] == 5.0

    def test_rate_too_few_points(self):
        m = Monarch()
        m.write("rpcs", None, 0.0, 1.0)
        mid, rates = m.rate("rpcs")
        assert len(mid) == 0 and len(rates) == 0
