"""Tests for the metric registry and the Monarch time-series store."""

import numpy as np
import pytest

from repro.obs.metrics import Counter, DistributionMetric, Gauge, MetricRegistry
from repro.obs.monarch import Monarch, MonarchScraper
from repro.sim.engine import Simulator


class TestCounter:
    def test_monotonic(self):
        c = Counter()
        c.add()
        c.add(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.add(-1)


class TestGauge:
    def test_set_and_read(self):
        g = Gauge()
        g.set(4.2)
        assert g.read() == 4.2

    def test_callable_backed(self):
        g = Gauge(fn=lambda: 7.0)
        assert g.read() == 7.0
        with pytest.raises(ValueError):
            g.set(1.0)


class TestDistributionMetric:
    def test_exact_until_reservoir_full(self):
        d = DistributionMetric(reservoir_size=100)
        d.observe_many(range(100))
        assert d.count == 100
        assert d.mean == pytest.approx(49.5)
        assert d.percentile(50) == pytest.approx(49.5)
        assert d.min == 0 and d.max == 99

    def test_reservoir_bounded(self):
        d = DistributionMetric(reservoir_size=50)
        d.observe_many(range(10_000))
        assert len(d.samples()) == 50
        assert d.count == 10_000

    def test_reservoir_stays_representative(self):
        d = DistributionMetric(reservoir_size=1000,
                               rng=np.random.default_rng(0))
        d.observe_many(np.random.default_rng(1).normal(10, 2, 50_000))
        assert d.percentile(50) == pytest.approx(10.0, abs=0.5)

    def test_empty_percentile(self):
        assert DistributionMetric().percentile(99) == 0.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            DistributionMetric(reservoir_size=0)


class TestRegistry:
    def test_same_key_same_metric(self):
        r = MetricRegistry()
        assert r.counter("x") is r.counter("x")
        assert r.counter("x", {"a": "1"}) is not r.counter("x", {"a": "2"})

    def test_label_order_irrelevant(self):
        r = MetricRegistry()
        a = r.counter("x", {"a": "1", "b": "2"})
        b = r.counter("x", {"b": "2", "a": "1"})
        assert a is b

    def test_snapshot_contains_counters_and_gauges(self):
        r = MetricRegistry()
        r.counter("rpcs").add(5)
        r.gauge("depth").set(3.0)
        snap = r.snapshot()
        assert snap[("rpcs", ())] == 5
        assert snap[("depth", ())] == 3.0


class TestMonarch:
    def test_write_and_read(self):
        m = Monarch()
        m.write("x", {"c": "1"}, 0.0, 1.0)
        m.write("x", {"c": "1"}, 10.0, 2.0)
        t, v = m.read("x", {"c": "1"})
        assert list(t) == [0.0, 10.0]
        assert list(v) == [1.0, 2.0]

    def test_read_missing_series_empty(self):
        t, v = Monarch().read("nope")
        assert len(t) == 0 and len(v) == 0

    def test_out_of_order_write_rejected(self):
        m = Monarch()
        m.write("x", None, 10.0, 1.0)
        with pytest.raises(ValueError):
            m.write("x", None, 5.0, 2.0)

    def test_time_windowed_read(self):
        m = Monarch()
        for t in range(10):
            m.write("x", None, float(t), float(t))
        t, v = m.read("x", t_start=3.0, t_end=6.0)
        assert list(t) == [3.0, 4.0, 5.0, 6.0]

    def test_retention_trims_old_points(self):
        m = Monarch(retention_s=5.0)
        for t in range(10):
            m.write("x", None, float(t), float(t))
        t, v = m.read("x")
        assert t[0] >= 4.0

    def test_read_matching_filters_labels(self):
        m = Monarch()
        m.write("u", {"cluster": "a", "svc": "s"}, 0.0, 1.0)
        m.write("u", {"cluster": "b", "svc": "s"}, 0.0, 2.0)
        m.write("u", {"cluster": "a", "svc": "t"}, 0.0, 3.0)
        out = m.read_matching("u", {"svc": "s"})
        assert len(out) == 2

    def test_aggregate_sum_across_series(self):
        m = Monarch()
        m.write("rps", {"task": "1"}, 0.0, 10.0)
        m.write("rps", {"task": "2"}, 0.0, 20.0)
        m.write("rps", {"task": "1"}, 60.0, 30.0)
        times, vals = m.aggregate("rps", window_s=60.0)
        assert list(vals) == [30.0, 30.0]

    def test_aggregate_mean(self):
        m = Monarch()
        m.write("util", {"task": "1"}, 0.0, 0.2)
        m.write("util", {"task": "2"}, 0.0, 0.4)
        _, vals = m.aggregate("util", window_s=60.0, reducer="mean")
        assert vals[0] == pytest.approx(0.3)

    def test_aggregate_invalid_reducer(self):
        # "max"/"min"/"p99" are valid reducers now; "bogus" still is not.
        with pytest.raises(ValueError):
            Monarch().aggregate("x", 60.0, reducer="bogus")

    def test_series_keys_filtered(self):
        m = Monarch()
        m.write("a", None, 0.0, 1.0)
        m.write("b", None, 0.0, 1.0)
        assert len(m.series_keys()) == 2
        assert len(m.series_keys("a")) == 1


class TestScraper:
    def test_scrapes_registry_on_interval(self):
        sim = Simulator()
        monarch = Monarch()
        scraper = MonarchScraper(sim, monarch, interval_s=10.0)
        reg = MetricRegistry()
        reg.counter("rpcs")
        scraper.register(reg, {"task": "t0"})
        reg.counter("rpcs").add(5)
        sim.run_until(25.0)
        t, v = monarch.read("rpcs", {"task": "t0"})
        assert list(t) == [10.0, 20.0]
        assert list(v) == [5.0, 5.0]

    def test_collector_callback(self):
        sim = Simulator()
        monarch = Monarch()
        scraper = MonarchScraper(sim, monarch, interval_s=5.0)
        scraper.add_collector(lambda t: [("x", {"m": "0"}, t)])
        sim.run_until(11.0)
        t, v = monarch.read("x", {"m": "0"})
        assert list(v) == [5.0, 10.0]

    def test_stop_halts_scraping(self):
        sim = Simulator()
        monarch = Monarch()
        scraper = MonarchScraper(sim, monarch, interval_s=5.0)
        scraper.add_collector(lambda t: [("x", None, 1.0)])
        sim.run_until(6.0)
        scraper.stop()
        sim.run_until(30.0)
        t, _ = monarch.read("x")
        assert len(t) == 1


class TestRate:
    def test_rate_of_cumulative_counter(self):
        m = Monarch()
        for t, v in ((0.0, 0.0), (10.0, 50.0), (20.0, 150.0)):
            m.write("rpcs", None, t, v)
        mid, rates = m.rate("rpcs")
        assert list(mid) == [5.0, 15.0]
        assert list(rates) == [5.0, 10.0]

    def test_rate_handles_counter_reset(self):
        m = Monarch()
        for t, v in ((0.0, 100.0), (10.0, 5.0), (20.0, 55.0)):
            m.write("rpcs", None, t, v)
        _, rates = m.rate("rpcs")
        assert rates[0] == 0.0  # reset, not a negative spike
        assert rates[1] == 5.0

    def test_rate_too_few_points(self):
        m = Monarch()
        m.write("rpcs", None, 0.0, 1.0)
        mid, rates = m.rate("rpcs")
        assert len(mid) == 0 and len(rates) == 0


class TestMonarchBoundarySemantics:
    def test_point_exactly_at_retention_boundary_survives(self):
        # trim_before uses a strict `<` cutoff: the point at exactly
        # t - retention_s is still inside the retention window.
        m = Monarch(retention_s=5.0)
        m.write("x", None, 0.0, 1.0)
        m.write("x", None, 5.0, 2.0)  # cutoff lands exactly on t=0
        t, _ = m.read("x")
        assert list(t) == [0.0, 5.0]
        m.write("x", None, 5.5, 3.0)  # cutoff 0.5: now t=0 is gone
        t, _ = m.read("x")
        assert list(t) == [5.0, 5.5]

    def test_equal_timestamp_write_rewrites(self):
        m = Monarch()
        m.write("x", None, 1.0, 10.0)
        m.write("x", None, 1.0, 20.0)  # same timestamp: last write wins
        t, v = m.read("x")
        assert list(t) == [1.0]
        assert list(v) == [20.0]

    def test_equal_timestamp_sketch_write_rewrites(self):
        from repro.obs.sketch import LatencySketch

        m = Monarch()
        first = LatencySketch()
        first.observe(0.001)
        second = LatencySketch()
        second.observe_many([0.002, 0.004])
        m.write_sketch("d", None, 1.0, first)
        m.write_sketch("d", None, 1.0, second)
        points = m.read_sketches("d")[()]
        assert len(points) == 1
        assert points[0].sketch.count == 2

    def test_sketch_out_of_order_write_rejected(self):
        from repro.obs.sketch import LatencySketch

        m = Monarch()
        m.write_sketch("d", None, 10.0, LatencySketch())
        with pytest.raises(ValueError, match="out-of-order"):
            m.write_sketch("d", None, 5.0, LatencySketch())

    def test_sketch_retention_boundary(self):
        from repro.obs.sketch import LatencySketch

        m = Monarch(retention_s=5.0)
        m.write_sketch("d", None, 0.0, LatencySketch())
        m.write_sketch("d", None, 5.0, LatencySketch())
        points = m.read_sketches("d")[()]
        assert [p.t for p in points] == [0.0, 5.0]


class TestTimeBoundedQueries:
    def setup_method(self):
        self.m = Monarch()
        for task in ("1", "2"):
            for t in range(10):
                self.m.write("util", {"task": task}, float(t), float(t))

    def test_read_matching_honours_bounds(self):
        out = self.m.read_matching("util", t_start=3.0, t_end=6.0)
        assert len(out) == 2
        for times, values in out.values():
            assert list(times) == [3.0, 4.0, 5.0, 6.0]
            assert list(values) == [3.0, 4.0, 5.0, 6.0]

    def test_read_matching_bounds_are_inclusive(self):
        out = self.m.read_matching("util", {"task": "1"}, t_start=9.0)
        (times, _values), = out.values()
        assert list(times) == [9.0]

    def test_read_matching_empty_window(self):
        out = self.m.read_matching("util", t_start=100.0)
        for times, values in out.values():
            assert len(times) == 0 and len(values) == 0

    def test_aggregate_with_time_bounds(self):
        # Only points in [4, 7] contribute; sum across the two series.
        times, vals = self.m.aggregate("util", window_s=100.0,
                                       t_start=4.0, t_end=7.0)
        assert list(times) == [0.0]
        assert vals[0] == pytest.approx(2 * 7.0)  # last-in-window, 2 series


class TestSketchAggregation:
    def _store_with_sketches(self):
        from repro.obs.sketch import LatencySketch

        rng = np.random.default_rng(9)
        m = Monarch()
        self.all_values = []
        for task in ("1", "2"):
            for t in (0.0, 30.0):
                values = rng.lognormal(-6.0, 0.8, 5000)
                self.all_values.append(values)
                s = LatencySketch()
                s.observe_many(values)
                m.write_sketch("lat", {"task": task}, t, s)
        return m

    def test_p99_across_series_matches_exact(self):
        m = self._store_with_sketches()
        union = np.concatenate(self.all_values)
        times, vals = m.aggregate("lat", window_s=60.0, reducer="p99")
        assert list(times) == [0.0]
        exact = float(np.percentile(union, 99))
        assert abs(vals[0] - exact) / exact < 0.02

    def test_max_min_use_sketches_exactly(self):
        m = self._store_with_sketches()
        union = np.concatenate(self.all_values)
        _, mx = m.aggregate("lat", window_s=60.0, reducer="max")
        _, mn = m.aggregate("lat", window_s=60.0, reducer="min")
        assert mx[0] == float(union.max())
        assert mn[0] == float(union.min())

    def test_percentile_reducer_windows_separately(self):
        from repro.obs.sketch import LatencySketch

        m = Monarch()
        for t, value in ((0.0, 0.001), (60.0, 0.1)):
            s = LatencySketch()
            s.observe_many(np.full(100, value))
            m.write_sketch("lat", None, t, s)
        times, vals = m.aggregate("lat", window_s=60.0, reducer="p50")
        assert list(times) == [0.0, 60.0]
        assert vals[0] < 0.01 < vals[1]

    def test_percentile_reducer_without_sketches_is_empty(self):
        m = Monarch()
        m.write("lat", None, 0.0, 1.0)  # scalar series only
        times, vals = m.aggregate("lat", window_s=60.0, reducer="p99")
        assert len(times) == 0 and len(vals) == 0


class TestWindowSketch:
    def test_merges_window_and_pools_exemplars(self):
        from repro.obs.sketch import LatencySketch

        m = Monarch()
        for t, value, tid in ((0.0, 0.001, 1), (1.0, 0.1, 2), (2.0, 0.2, 3)):
            s = LatencySketch()
            s.observe_many(np.full(10, value))
            m.write_sketch("lat", None, t, s, exemplars=((value, tid),))
        point = m.window_sketch("lat", t_start=1.0, t_end=2.0)
        assert point.sketch.count == 20
        # Pooled worst-first across the window's points.
        assert [tid for _v, tid in point.exemplars] == [3, 2]
        assert m.window_sketch("lat", t_start=10.0, t_end=20.0) is None
        assert m.window_sketch("absent") is None
