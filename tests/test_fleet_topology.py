"""Tests for the fleet topology."""

import pytest

from repro.fleet.topology import (
    FleetSpec,
    Region,
    build_fleet,
    distance_km,
)


def test_default_fleet_counts():
    fleet = build_fleet(FleetSpec())
    spec = FleetSpec()
    assert len(fleet.regions) == len(spec.sites)
    assert len(fleet.datacenters) == len(spec.sites) * spec.datacenters_per_region
    assert len(fleet.clusters) == (
        len(spec.sites) * spec.datacenters_per_region
        * spec.clusters_per_datacenter
    )
    assert len(fleet) == len(fleet.clusters)


def test_cluster_lookup_by_name():
    fleet = build_fleet(FleetSpec())
    c = fleet.clusters[0]
    assert fleet.cluster(c.name) is c


def test_cluster_names_unique():
    fleet = build_fleet(FleetSpec())
    names = [c.name for c in fleet.clusters]
    assert len(names) == len(set(names))


def test_cluster_indices_sequential():
    fleet = build_fleet(FleetSpec())
    assert [c.index for c in fleet.clusters] == list(range(len(fleet.clusters)))


def test_build_is_deterministic_per_seed():
    a = build_fleet(FleetSpec(), seed=3)
    b = build_fleet(FleetSpec(), seed=3)
    assert [c.speed_factor for c in a.clusters] == [c.speed_factor for c in b.clusters]
    c = build_fleet(FleetSpec(), seed=4)
    assert [x.speed_factor for x in a.clusters] != [x.speed_factor for x in c.clusters]


def test_speed_factor_heterogeneity_spread():
    fleet = build_fleet(FleetSpec(clusters_per_datacenter=10), seed=0)
    factors = [c.speed_factor for c in fleet.clusters]
    # §3.3.3 reports 1.24-10x cross-cluster spread; the generator should
    # produce at least a ~2x spread with enough clusters.
    assert max(factors) / min(factors) > 2.0


def test_speed_sigma_zero_disables_heterogeneity():
    fleet = build_fleet(FleetSpec(cluster_speed_sigma=0.0))
    assert all(c.speed_factor == 1.0 for c in fleet.clusters)


def test_distance_symmetric_and_zero_on_self():
    a = Region("a", 0.0, 0.0)
    b = Region("b", 3.0, 4.0)
    assert distance_km(a, b) == pytest.approx(5.0)
    assert distance_km(b, a) == pytest.approx(5.0)
    assert distance_km(a, a) == 0.0


def test_clusters_in_region():
    fleet = build_fleet(FleetSpec())
    region = fleet.regions[0]
    clusters = fleet.clusters_in_region(region)
    spec = FleetSpec()
    assert len(clusters) == spec.datacenters_per_region * spec.clusters_per_datacenter
    assert all(c.region is region for c in clusters)


def test_iter_cluster_pairs_count():
    fleet = build_fleet(FleetSpec(datacenters_per_region=1,
                                  clusters_per_datacenter=1))
    n = len(fleet.clusters)
    pairs = list(fleet.iter_cluster_pairs())
    assert len(pairs) == n * (n - 1) // 2


def test_max_distance_spans_continents():
    fleet = build_fleet(FleetSpec())
    dmax = max(
        distance_km(a.region, b.region) for a, b in fleet.iter_cluster_pairs()
    )
    assert dmax > 15_000  # km: inter-continental
