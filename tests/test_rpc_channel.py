"""Integration tests for the DES client/server channel."""

import numpy as np
import pytest

from repro.fleet.machine import Machine, MachineProfile
from repro.fleet.topology import Cluster, Datacenter, Region
from repro.net.latency import NetworkModel
from repro.obs.dapper import DapperCollector
from repro.obs.gwp import GwpProfiler
from repro.rpc.channel import MethodRuntime, RpcClientTask, RpcServerTask
from repro.rpc.errors import ErrorModel, StatusCode
from repro.rpc.hedging import HedgingPolicy
from repro.sim.distributions import Constant
from repro.sim.engine import Simulator


def quiet_profile(**kw) -> MachineProfile:
    """A machine with no background interference (deterministic timing)."""
    defaults = dict(cores=4, background_util_mean=0.0, diurnal_amplitude=0.0,
                    noise_amplitude=0.0, cpi_contention_coeff=0.0)
    defaults.update(kw)
    return MachineProfile(**defaults)


def build_world(error_model=None, hedging=None, seed=0):
    sim = Simulator()
    region = Region("r", 0.0, 0.0)
    dc = Datacenter("dc", region)
    cluster = Cluster("c0", dc, 0)
    server_machine = Machine(sim, cluster, 0, profile=quiet_profile(),
                             rng=np.random.default_rng(seed))
    client_machine = Machine(sim, cluster, 1, profile=quiet_profile(),
                             rng=np.random.default_rng(seed + 1))
    runtime = MethodRuntime(
        service="Svc", method="Do",
        app_time=Constant(1e-3),
        request_size=Constant(1000),
        response_size=Constant(2000),
        app_cycles=Constant(0.05),
        error_model=error_model,
    )
    dapper = DapperCollector(sampling_rate=1.0)
    gwp = GwpProfiler()
    server = RpcServerTask(sim, server_machine, [runtime],
                           rng=np.random.default_rng(seed + 2))
    kwargs = {}
    if hedging is not None:
        kwargs["hedging"] = hedging
    client = RpcClientTask(sim, client_machine, NetworkModel(),
                           dapper=dapper, gwp=gwp,
                           rng=np.random.default_rng(seed + 3), **kwargs)
    return sim, client, server, runtime, dapper, gwp


def test_single_call_completes_with_all_components():
    sim, client, server, runtime, dapper, gwp = build_world()
    results = []
    client.call(runtime, pick_server=lambda rng: server,
                on_complete=results.append)
    sim.run()
    assert len(results) == 1
    span = results[0].span
    b = span.breakdown
    assert b.server_application == pytest.approx(1e-3, rel=0.01)
    assert b.request_network_wire > 0
    assert b.response_network_wire > 0
    assert b.request_proc_stack > 0
    assert b.response_proc_stack > 0
    assert b.total() > 1e-3
    assert span.status is StatusCode.OK
    assert span.request_bytes == 1000
    assert span.response_bytes == 2000


def test_span_recorded_in_dapper_and_gwp():
    sim, client, server, runtime, dapper, gwp = build_world()
    for _ in range(5):
        client.call(runtime, pick_server=lambda rng: server)
    sim.run()
    assert len(dapper) == 5
    assert gwp.rpcs_profiled == 5
    assert gwp.totals["application"] == pytest.approx(5 * 0.05)


def test_span_annotated_with_exogenous_state():
    sim, client, server, runtime, dapper, gwp = build_world()
    client.call(runtime, pick_server=lambda rng: server)
    sim.run()
    ann = dapper.spans[0].annotations
    for key in ("exo_cpu_util", "exo_memory_bw_gbps",
                "exo_long_wakeup_rate", "exo_cycles_per_inst"):
        assert key in ann


def test_server_counts_rpcs():
    sim, client, server, runtime, dapper, gwp = build_world()
    for _ in range(3):
        client.call(runtime, pick_server=lambda rng: server)
    sim.run()
    assert server.rpcs_served == 3
    assert client.calls_completed == 3


def test_queueing_emerges_under_contention():
    """Simultaneous calls on a 4-core server must wait in recv queue."""
    sim, client, server, runtime, dapper, gwp = build_world()
    for _ in range(16):
        client.call(runtime, pick_server=lambda rng: server)
    sim.run()
    waits = [s.breakdown.server_recv_queue for s in dapper.spans]
    assert max(waits) > 1e-3  # at least one full service time of waiting


def test_errors_sampled_and_recorded():
    em = ErrorModel(error_rate=1.0,
                    mix={StatusCode.NOT_FOUND: 1.0})
    sim, client, server, runtime, dapper, gwp = build_world(error_model=em)
    results = []
    client.call(runtime, pick_server=lambda rng: server,
                on_complete=results.append)
    sim.run()
    span = results[0].span
    assert span.status is StatusCode.NOT_FOUND
    assert span.response_bytes == runtime.error_response_bytes
    # Fail-fast error burns only a fraction of the handler.
    assert span.breakdown.server_application < 1e-3


def test_hedging_issues_backup_and_cancels_loser():
    hedging = HedgingPolicy(enabled=True, delay_s=0.2e-3, max_attempts=2)
    sim, client, server, runtime, dapper, gwp = build_world(hedging=hedging)
    results = []
    client.call(runtime, pick_server=lambda rng: server,
                on_complete=results.append)
    sim.run()
    assert len(results) == 1  # one winner reported
    assert results[0].attempts == 2
    statuses = sorted(s.status.name for s in dapper.spans)
    assert statuses == ["CANCELLED", "OK"]


def test_hedging_not_triggered_for_fast_calls():
    hedging = HedgingPolicy(enabled=True, delay_s=10.0, max_attempts=2)
    sim, client, server, runtime, dapper, gwp = build_world(hedging=hedging)
    results = []
    client.call(runtime, pick_server=lambda rng: server,
                on_complete=results.append)
    sim.run()
    assert results[0].attempts == 1
    assert len(dapper) == 1


def test_unknown_method_raises():
    sim, client, server, runtime, dapper, gwp = build_world()
    with pytest.raises(KeyError):
        server.serve("Nope", 100, StatusCode.OK, lambda *a: None)


def test_load_reflects_pool_pressure():
    sim, client, server, runtime, dapper, gwp = build_world()
    assert server.load() == 0
    for _ in range(8):
        client.call(runtime, pick_server=lambda rng: server)
    sim.run_until(0.0008)  # requests in flight / queued
    assert server.load() > 0
    sim.run()


# -------------------------------------------------------- sink protocols
def test_collectors_satisfy_sink_protocols():
    from repro.rpc.tracing import ProfileSink, SpanSink

    assert isinstance(DapperCollector(sampling_rate=1.0), SpanSink)
    assert isinstance(GwpProfiler(), ProfileSink)


def test_custom_span_sink_receives_spans():
    # Any object with record(span) works in DapperCollector's place: the
    # channel depends on the SpanSink protocol, not the obs layer.
    from repro.rpc.tracing import SpanSink

    class ListSink:
        def __init__(self):
            self.spans = []

        def record(self, span) -> bool:
            self.spans.append(span)
            return True

    sink = ListSink()
    assert isinstance(sink, SpanSink)
    sim, client, server, runtime, dapper, gwp = build_world()
    client.dapper = sink
    client.call(runtime, pick_server=lambda rng: server)
    sim.run()
    assert len(sink.spans) == 1
    assert sink.spans[0].full_method == "Svc/Do"


def test_channel_probe_hooks_observe_rpc_lifecycle():
    from repro.sim.instrument import Probe

    class RpcProbe(Probe):
        def __init__(self):
            self.attempts = []
            self.completed = []

        def rpc_attempt(self, method, time_s, attempt):
            self.attempts.append((method, attempt))

        def rpc_completed(self, method, time_s, status, latency_s, attempts,
                          trace_id=0):
            self.completed.append((method, status, attempts))
            assert trace_id > 0  # channel passes the minted trace id

    probe = RpcProbe()
    sim, client, server, runtime, dapper, gwp = build_world()
    sim.set_probe(probe)
    client.call(runtime, pick_server=lambda rng: server)
    sim.run()
    assert probe.attempts == [("Svc/Do", 0)]  # attempt index, 0 = first
    assert probe.completed == [("Svc/Do", "OK", 1)]  # total attempts made


def test_channel_probe_sees_hedge():
    from repro.sim.instrument import Probe

    class HedgeProbe(Probe):
        def __init__(self):
            self.hedges = []

        def rpc_hedge(self, method, time_s):
            self.hedges.append(method)

    probe = HedgeProbe()
    hedging = HedgingPolicy(enabled=True, delay_s=1e-4, max_attempts=2)
    sim, client, server, runtime, dapper, gwp = build_world(hedging=hedging)
    sim.set_probe(probe)
    client.call(runtime, pick_server=lambda rng: server)
    sim.run()
    assert probe.hedges == ["Svc/Do"]
