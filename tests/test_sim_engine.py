"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Event, SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    seen = []
    sim.after(2.0, lambda: seen.append("b"))
    sim.after(1.0, lambda: seen.append("a"))
    sim.after(3.0, lambda: seen.append("c"))
    sim.run()
    assert seen == ["a", "b", "c"]


def test_ties_fire_in_scheduling_order():
    sim = Simulator()
    seen = []
    for name in "abc":
        sim.after(1.0, lambda n=name: seen.append(n))
    sim.run()
    assert seen == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    times = []
    sim.after(0.5, lambda: times.append(sim.now))
    sim.after(1.25, lambda: times.append(sim.now))
    sim.run()
    assert times == [0.5, 1.25]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.after(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(0.5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.after(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    seen = []
    ev = sim.after(1.0, lambda: seen.append("x"))
    assert ev.cancel()
    sim.run()
    assert seen == []
    assert not ev.fired


def test_cancel_after_fire_returns_false():
    sim = Simulator()
    ev = sim.after(1.0, lambda: None)
    sim.run()
    assert not ev.cancel()


def test_event_pending_property():
    sim = Simulator()
    ev = sim.after(1.0, lambda: None)
    assert ev.pending
    ev.cancel()
    assert not ev.pending


def test_run_until_stops_at_boundary():
    sim = Simulator()
    seen = []
    sim.after(1.0, lambda: seen.append(1))
    sim.after(2.0, lambda: seen.append(2))
    sim.after(3.0, lambda: seen.append(3))
    fired = sim.run_until(2.0)
    assert fired == 2
    assert seen == [1, 2]
    assert sim.now == 2.0


def test_run_until_past_raises():
    sim = Simulator()
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.run_until(1.0)


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run_until(10.0)
    assert sim.now == 10.0


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    seen = []

    def first():
        sim.after(1.0, lambda: seen.append("second"))

    sim.after(1.0, first)
    sim.run()
    assert seen == ["second"]


def test_run_max_events():
    sim = Simulator()
    for i in range(10):
        sim.after(float(i + 1), lambda: None)
    fired = sim.run(max_events=3)
    assert fired == 3
    assert sim.pending_events == 7


def test_every_fires_periodically():
    sim = Simulator()
    ticks = []
    sim.every(1.0, lambda: ticks.append(sim.now), until=5.0)
    sim.run()
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_every_start_after():
    sim = Simulator()
    ticks = []
    sim.every(2.0, lambda: ticks.append(sim.now), start_after=0.5, until=5.0)
    sim.run()
    assert ticks == [0.5, 2.5, 4.5]


def test_every_cancel_stops_chain():
    sim = Simulator()
    ticks = []
    task = sim.every(1.0, lambda: ticks.append(sim.now))
    sim.after(3.5, task.cancel)
    sim.run(max_events=100)
    assert ticks == [1.0, 2.0, 3.0]
    assert task.fires == 3


def test_every_rejects_bad_interval():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.every(0.0, lambda: None)


def test_events_fired_counter():
    sim = Simulator()
    for i in range(5):
        sim.after(float(i), lambda: None)
    sim.run()
    assert sim.events_fired == 5


def test_pending_events_is_live_count():
    sim = Simulator()
    events = [sim.after(1.0 + i, lambda: None) for i in range(10)]
    assert sim.pending_events == 10
    for e in events[:4]:
        e.cancel()
    assert sim.pending_events == 6
    sim.run()
    assert sim.pending_events == 0
    assert sim.events_fired == 6
    assert sim.events_cancelled == 4


def test_double_cancel_counts_once():
    sim = Simulator()
    e = sim.after(1.0, lambda: None)
    sim.after(2.0, lambda: None)
    assert e.cancel() and e.cancel()
    assert sim.pending_events == 1


def test_heap_compacts_when_mostly_cancelled():
    sim = Simulator()
    keep = [sim.after(100.0 + i, lambda: None) for i in range(10)]
    doomed = [sim.after(1.0 + i, lambda: None) for i in range(200)]
    for e in doomed:
        e.cancel()
    # Compaction triggers whenever >50% of a >=64-entry heap is dead, so
    # the heap shrinks far below live+cancelled; dead entries may remain
    # only once the heap is under the compaction floor.
    assert len(sim._heap) < Simulator._COMPACT_MIN_HEAP
    assert sim.pending_events == len(keep)
    fired = sim.run()
    assert fired == len(keep)
    assert sim.events_cancelled == len(doomed)


def test_compaction_preserves_fire_order():
    sim = Simulator()
    seen = []
    live = []
    for i in range(40):
        live.append((i, sim.after(10.0 + i, lambda i=i: seen.append(i))))
    doomed = [sim.after(1.0, lambda: seen.append("dead")) for _ in range(100)]
    for e in doomed:
        e.cancel()
    sim.run()
    assert seen == [i for i, _ in live]


def test_small_heaps_are_not_compacted():
    sim = Simulator()
    doomed = [sim.after(1.0, lambda: None) for _ in range(10)]
    sim.after(2.0, lambda: None)
    for e in doomed:
        e.cancel()
    # Below the compaction floor the dead entries stay until popped.
    assert len(sim._heap) == 11
    assert sim.pending_events == 1
    sim.run()
    assert sim.events_cancelled == 10


def test_compaction_reports_cancellations_to_probe():
    from repro.sim.instrument import Probe

    class CountingProbe(Probe):
        def __init__(self):
            self.cancelled = 0

        def event_cancelled(self, time_s):
            self.cancelled += 1

    probe = CountingProbe()
    sim = Simulator(probe=probe)
    sim.after(500.0, lambda: None)
    doomed = [sim.after(1.0 + i, lambda: None) for i in range(100)]
    for e in doomed:
        e.cancel()
    sim.run()
    assert probe.cancelled == 100
