"""Tests for the percentile-grid machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    MethodPercentiles,
    cdf_points,
    percentile_grid,
    weighted_mean,
)


def test_cdf_points_monotone():
    x, f = cdf_points([3.0, 1.0, 2.0, 5.0], n_points=20)
    assert np.all(np.diff(x) >= 0)
    assert f[0] == 0.0 and f[-1] == 1.0


def test_cdf_points_empty():
    x, f = cdf_points([])
    assert len(x) == 0 and len(f) == 0


def test_weighted_mean():
    assert weighted_mean(np.array([1.0, 3.0]), np.array([1.0, 1.0])) == 2.0
    assert weighted_mean(np.array([1.0, 3.0]), np.array([3.0, 1.0])) == 1.5
    with pytest.raises(ValueError):
        weighted_mean(np.array([1.0]), np.array([0.0]))


def make_grid():
    samples = {
        "slow": np.linspace(10, 100, 1000),
        "fast": np.linspace(1, 10, 1000),
        "mid": np.linspace(5, 50, 1000),
    }
    return percentile_grid(samples, percentiles=(1, 50, 99))


def test_grid_sorted_by_median():
    g = make_grid()
    assert g.names == ["fast", "mid", "slow"]
    medians = g.column(50)
    assert np.all(np.diff(medians) >= 0)


def test_grid_column_lookup():
    g = make_grid()
    assert g.column(99)[0] == pytest.approx(9.91, rel=0.01)
    with pytest.raises(KeyError):
        g.column(90)


def test_quantile_of():
    g = make_grid()
    # The median method's P99 is "mid"'s P99.
    assert g.quantile_of(99, 0.5) == pytest.approx(49.6, rel=0.02)


def test_fraction_of_methods():
    g = make_grid()
    assert g.fraction_of_methods(50, at_most=6.0) == pytest.approx(1 / 3)
    assert g.fraction_of_methods(50, at_least=6.0) == pytest.approx(2 / 3)
    with pytest.raises(ValueError):
        g.fraction_of_methods(50)
    with pytest.raises(ValueError):
        g.fraction_of_methods(50, at_least=1, at_most=2)


def test_min_samples_filter():
    samples = {"rich": np.arange(200.0), "poor": np.arange(5.0)}
    g = percentile_grid(samples, percentiles=(50,), min_samples=100)
    assert g.names == ["rich"]


def test_grid_shape_validation():
    with pytest.raises(ValueError):
        MethodPercentiles(["a"], (50,), np.zeros((2, 1)))


@given(st.lists(
    st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=10, max_size=50),
    min_size=1, max_size=10,
))
@settings(max_examples=40, deadline=None)
def test_grid_percentiles_monotone_property(method_samples):
    samples = {f"m{i}": np.array(v) for i, v in enumerate(method_samples)}
    g = percentile_grid(samples, percentiles=(1, 50, 99))
    # Within every method, P1 <= P50 <= P99.
    assert np.all(g.grid[:, 0] <= g.grid[:, 1] + 1e-9)
    assert np.all(g.grid[:, 1] <= g.grid[:, 2] + 1e-9)
