"""Tests for the percentile sketch and exemplar reservoir."""

import math

import numpy as np
import pytest

from repro.obs.sketch import (
    DEFAULT_RELATIVE_ACCURACY,
    ExemplarReservoir,
    LatencySketch,
)


def test_sketch_p99_within_2pct_of_exact():
    # The acceptance bar: sketch p99 within 2% relative error of exact
    # np.percentile over the raw samples, across several distributions.
    rng = np.random.default_rng(7)
    for values in (
        rng.lognormal(-7.0, 1.0, 50_000),     # microseconds-scale tails
        rng.lognormal(-3.0, 0.5, 50_000),     # tens of ms
        rng.exponential(0.01, 50_000),
        rng.uniform(1e-4, 2e-1, 50_000),
    ):
        sketch = LatencySketch()
        sketch.observe_many(values)
        for p in (50.0, 95.0, 99.0):
            exact = float(np.percentile(values, p))
            approx = sketch.percentile(p)
            assert abs(approx - exact) / exact < 0.02, (p, exact, approx)


def test_sketch_scalar_and_vector_paths_agree():
    rng = np.random.default_rng(3)
    values = rng.lognormal(-6.0, 0.8, 5000)
    one = LatencySketch()
    for v in values:
        one.observe(v)
    many = LatencySketch()
    many.observe_many(values)
    assert np.array_equal(one.counts, many.counts)
    assert one.count == many.count
    assert one.min == many.min and one.max == many.max
    assert one.sum == pytest.approx(many.sum)


def test_sketch_extremes_are_exact():
    sketch = LatencySketch()
    sketch.observe_many([0.001, 0.002, 0.5])
    assert sketch.quantile(0.0) == 0.001
    assert sketch.quantile(1.0) == 0.5
    assert sketch.min == 0.001
    assert sketch.max == 0.5


def test_sketch_empty_and_bounds():
    sketch = LatencySketch()
    assert sketch.quantile(0.5) == 0.0
    assert sketch.mean == 0.0
    assert sketch.count_below(1.0) == 0
    with pytest.raises(ValueError):
        sketch.quantile(1.5)


def test_sketch_clamps_out_of_range_values():
    sketch = LatencySketch(min_value=1e-6, max_value=1e3)
    sketch.observe(1e-12)   # below the representable range
    sketch.observe(1e9)     # above it
    assert sketch.count == 2
    assert sketch.counts[0] == 1
    assert sketch.counts[-1] == 1


def test_sketch_merge_matches_union():
    rng = np.random.default_rng(11)
    a_vals = rng.lognormal(-6, 0.7, 4000)
    b_vals = rng.lognormal(-5, 0.9, 6000)
    a = LatencySketch()
    a.observe_many(a_vals)
    b = LatencySketch()
    b.observe_many(b_vals)
    union = LatencySketch()
    union.observe_many(np.concatenate([a_vals, b_vals]))
    merged = a.copy().merge(b)
    assert np.array_equal(merged.counts, union.counts)
    assert merged.count == union.count
    assert merged.quantile(0.99) == union.quantile(0.99)


def test_sketch_merge_rejects_different_layouts():
    a = LatencySketch(relative_accuracy=0.01)
    b = LatencySketch(relative_accuracy=0.02)
    with pytest.raises(ValueError, match="layout"):
        a.merge(b)


def test_sketch_delta_since_is_the_interval():
    sketch = LatencySketch()
    sketch.observe_many([0.001, 0.002])
    snap = sketch.copy()
    sketch.observe_many([0.004, 0.008, 0.016])
    delta = sketch.delta_since(snap)
    assert delta.count == 3
    assert delta.sum == pytest.approx(0.028)
    assert int(delta.counts.sum()) == 3
    # The original keeps accumulating independently of the delta.
    assert sketch.count == 5


def test_sketch_delta_since_rejects_non_prefix():
    a = LatencySketch()
    a.observe(0.001)
    b = LatencySketch()
    b.observe(0.9)
    with pytest.raises(ValueError, match="prefix"):
        a.delta_since(b)


def test_sketch_count_below_brackets_threshold():
    rng = np.random.default_rng(5)
    values = rng.lognormal(-6, 0.8, 20_000)
    sketch = LatencySketch()
    sketch.observe_many(values)
    threshold = float(np.percentile(values, 90))
    got = sketch.count_below(threshold)
    exact = int((values <= threshold).sum())
    # Within one bucket's relative width of the exact count.
    alpha = DEFAULT_RELATIVE_ACCURACY
    lo = int((values <= threshold * (1 - 3 * alpha)).sum())
    hi = int((values <= threshold * (1 + 3 * alpha)).sum())
    assert lo <= got <= hi, (lo, got, hi, exact)
    assert sketch.count_below(0.0) == 0
    assert sketch.count_below(float(values.max())) == sketch.count


def test_sketch_percentiles_batch_matches_scalar_quantile():
    rng = np.random.default_rng(21)
    sketch = LatencySketch()
    sketch.observe_many(rng.lognormal(-6, 0.9, 50_000))
    qs = (0.0, 0.5, 0.95, 0.99, 1.0)
    batch = sketch.percentiles(qs)
    assert batch == [sketch.quantile(q) for q in qs]
    assert batch == sorted(batch)
    with pytest.raises(ValueError):
        sketch.percentiles((0.5, 1.5))
    assert LatencySketch().percentiles(qs) == [0.0] * len(qs)


def test_sketch_fit_lognormal_recovers_parameters():
    rng = np.random.default_rng(29)
    mu, sigma = -6.2, 0.8
    sketch = LatencySketch()
    sketch.observe_many(rng.lognormal(mu, sigma, 200_000))
    fit = sketch.fit_lognormal()
    assert fit is not None
    assert fit[0] == pytest.approx(mu, abs=0.05)
    assert fit[1] == pytest.approx(sigma, abs=0.05)
    # Fewer than two observations: no spread estimate.
    assert LatencySketch().fit_lognormal() is None
    one = LatencySketch()
    one.observe(1e-3)
    assert one.fit_lognormal() is None


def test_sketch_round_trips_through_dict():
    rng = np.random.default_rng(13)
    sketch = LatencySketch()
    sketch.observe_many(rng.lognormal(-6, 0.8, 1000))
    clone = LatencySketch.from_dict(sketch.to_dict())
    assert np.array_equal(clone.counts, sketch.counts)
    assert clone.count == sketch.count
    assert clone.min == sketch.min and clone.max == sketch.max
    assert clone.quantile(0.99) == sketch.quantile(0.99)
    empty = LatencySketch.from_dict(LatencySketch().to_dict())
    assert empty.count == 0
    assert math.isinf(empty.min)


def test_sketch_validates_constructor_args():
    with pytest.raises(ValueError):
        LatencySketch(relative_accuracy=0.0)
    with pytest.raises(ValueError):
        LatencySketch(min_value=1.0, max_value=0.5)


def test_sketch_merge_with_empty_is_identity():
    rng = np.random.default_rng(19)
    values = rng.lognormal(-6, 0.8, 3000)
    full = LatencySketch()
    full.observe_many(values)
    before = full.counts.copy()

    # Folding an empty sketch in changes nothing, either direction.
    merged = full.copy().merge(LatencySketch())
    assert np.array_equal(merged.counts, before)
    assert merged.count == full.count
    assert merged.min == full.min and merged.max == full.max
    assert merged.quantile(0.99) == full.quantile(0.99)

    other_way = LatencySketch().merge(full)
    assert np.array_equal(other_way.counts, before)
    assert other_way.count == full.count
    assert other_way.min == full.min and other_way.max == full.max

    both_empty = LatencySketch().merge(LatencySketch())
    assert both_empty.count == 0
    assert math.isinf(both_empty.min)
    assert both_empty.quantile(0.5) == 0.0


def test_sketch_merge_disjoint_buckets():
    # Two sketches whose observations land in completely disjoint bucket
    # ranges: microsecond-scale vs second-scale latencies.
    fast = LatencySketch()
    fast.observe_many([1e-6, 2e-6, 3e-6, 4e-6])
    slow = LatencySketch()
    slow.observe_many([1.0, 2.0, 4.0, 8.0])
    assert not np.any((fast.counts > 0) & (slow.counts > 0))

    merged = fast.copy().merge(slow)
    assert merged.count == 8
    assert int(merged.counts.sum()) == 8
    assert merged.min == 1e-6 and merged.max == 8.0
    # The median sits between the two populations; quantile queries must
    # bridge the empty gap rather than land inside it.
    assert merged.quantile(0.25) < 1e-5
    assert merged.quantile(0.99) >= 1.0
    assert merged.count_below(1e-3) == 4
    assert merged.count_below(10.0) == 8


def test_sketch_count_below_at_exact_bucket_boundaries():
    sketch = LatencySketch()
    # Place one observation exactly on each of several bucket lower
    # boundaries: value = min_value * gamma^i.
    gamma = (1.0 + sketch.relative_accuracy) / (1.0 - sketch.relative_accuracy)
    boundary_values = [sketch.min_value * gamma ** i
                       for i in (100, 200, 300, 400)]
    sketch.observe_many(boundary_values)
    # A threshold exactly on a boundary includes that boundary's bucket:
    # whole buckets at or below the threshold's bucket count.
    for i, value in enumerate(boundary_values):
        assert sketch.count_below(value) >= i + 1
    # Exact extremes stay exact regardless of bucket rounding.
    assert sketch.count_below(boundary_values[0] * 0.5) == 0
    assert sketch.count_below(boundary_values[-1]) == 4
    assert sketch.count_below(sketch.min) >= 1
    # min_value itself is the floor of bucket 0.
    edge = LatencySketch()
    edge.observe(edge.min_value)
    assert edge.counts[0] == 1
    assert edge.count_below(edge.min_value) == 1


def test_sketch_delta_since_after_rate_reset():
    # A Monarch scraper holds a snapshot of a task's cumulative sketch.
    # If the task restarts (rate reset), the fresh stream is NOT a
    # superset of the snapshot and the delta must refuse loudly instead
    # of returning negative bucket counts.
    stream = LatencySketch()
    stream.observe_many([0.001, 0.002, 0.004, 0.008])
    snap = stream.copy()
    stream.observe_many([0.016, 0.032])
    ok = stream.delta_since(snap)
    assert ok.count == 2

    restarted = LatencySketch()
    restarted.observe_many([0.001])  # restarted task, counters from zero
    with pytest.raises(ValueError, match="prefix"):
        restarted.delta_since(snap)
    # And the failed delta must not have corrupted the restarted stream.
    assert restarted.count == 1
    assert int(restarted.counts.sum()) == 1


def test_sketch_scalar_buffer_is_invisible_to_queries():
    # Scalar observes buffer below PENDING_FLUSH; every query and the
    # mergeable algebra must see through the buffer.
    rng = np.random.default_rng(29)
    values = rng.lognormal(-6, 0.8, LatencySketch.PENDING_FLUSH - 1)
    buffered = LatencySketch()
    for v in values:
        buffered.observe(v)
    flushed = LatencySketch()
    flushed.observe_many(values)
    # count/sum/min/max are eager; bucket reads flush on demand.
    assert buffered.count == flushed.count
    assert buffered.min == flushed.min and buffered.max == flushed.max
    assert buffered.quantile(0.95) == flushed.quantile(0.95)
    assert np.array_equal(buffered.counts, flushed.counts)

    # merge/copy/delta/serialize all agree with the unbuffered stream.
    half = LatencySketch()
    for v in values[:100]:
        half.observe(v)
    snap = half.copy()
    for v in values[100:200]:
        half.observe(v)
    assert half.delta_since(snap).count == 100
    clone = LatencySketch.from_dict(half.to_dict())
    assert np.array_equal(clone.counts, half.counts)


def test_exemplar_reservoir_keeps_k_worst_first():
    res = ExemplarReservoir(k=3, rng=np.random.default_rng(0))
    res.offer(0.010, 101)
    res.offer(0.030, 102)
    res.offer(0.020, 103)
    drained = res.drain()
    assert drained == ((0.030, 102), (0.020, 103), (0.010, 101))
    # Drain resets.
    assert res.drain() == ()


def test_exemplar_reservoir_is_uniform_over_offers():
    # Offer many; every retained exemplar must be one of the offered, and
    # under a fixed rng the selection is deterministic.
    rng = np.random.default_rng(4)
    res = ExemplarReservoir(k=4, rng=rng)
    for i in range(1000):
        res.offer(0.001 * (i + 1), i)
    kept = res.drain()
    assert len(kept) == 4
    assert all(0 <= tid < 1000 for _v, tid in kept)
    rng2 = np.random.default_rng(4)
    res2 = ExemplarReservoir(k=4, rng=rng2)
    for i in range(1000):
        res2.offer(0.001 * (i + 1), i)
    assert res2.drain() == kept


def test_exemplar_reservoir_validates_k():
    with pytest.raises(ValueError):
        ExemplarReservoir(k=0)
