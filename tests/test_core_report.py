"""Tests for the table/format helpers."""

import pytest

from repro.core.report import (
    fmt_bytes,
    fmt_num,
    fmt_percent,
    fmt_seconds,
    format_table,
)


@pytest.mark.parametrize("value,expected", [
    (5e-7, "0.5us"),
    (250e-6, "250.0us"),
    (1.5e-3, "1.50ms"),
    (0.25, "250.00ms"),
    (2.5, "2.50s"),
])
def test_fmt_seconds(value, expected):
    assert fmt_seconds(value) == expected


def test_fmt_seconds_negative():
    assert fmt_seconds(-1.5e-3) == "-1.50ms"


@pytest.mark.parametrize("value,expected", [
    (64, "64B"),
    (1530, "1.5KB"),
    (11.8e3, "11.5KB"),
    (2 * 1024**2, "2.00MB"),
])
def test_fmt_bytes(value, expected):
    assert fmt_bytes(value) == expected


def test_fmt_percent():
    assert fmt_percent(0.02) == "2.00%"
    assert fmt_percent(0.505, digits=1) == "50.5%"


def test_fmt_num():
    assert fmt_num(3.14159, 3) == "3.14"


def test_format_table_alignment():
    out = format_table(("a", "bb"), [("x", 1.0), ("yy", 22.5)], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    # Columns aligned: all rows same length.
    assert len(lines[3]) == len(lines[4])


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(("a", "b"), [("only-one",)])
