"""Tests for the ASCII heatmap/CDF renderers."""

import numpy as np
import pytest

from repro.core.heatmap import render_cdf, render_heatmap
from repro.core.stats import MethodPercentiles


def make_grid(n=50):
    rng = np.random.default_rng(0)
    medians = np.sort(rng.lognormal(np.log(10e-3), 1.0, n))
    grid = np.empty((n, 5))
    for i, m in enumerate(medians):
        grid[i] = [m * 0.05, m * 0.3, m, m * 4, m * 20]
    return MethodPercentiles([f"m{i}" for i in range(n)],
                             (1, 10, 50, 90, 99), grid)


def test_heatmap_structure():
    out = render_heatmap(make_grid(), title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert any("@" in line for line in lines)       # medians plotted
    assert any("." in line for line in lines)       # envelope plotted
    assert "sorted by median" in lines[-1]


def test_heatmap_downsamples_wide_grids():
    out = render_heatmap(make_grid(500), width=40)
    body = [l for l in out.splitlines() if "|" in l]
    assert all(len(l) <= 51 for l in body)


def test_heatmap_requires_needed_percentiles():
    g = MethodPercentiles(["a"], (50,), np.array([[1.0]]))
    with pytest.raises(ValueError):
        render_heatmap(g)


def test_heatmap_empty_rejected():
    g = MethodPercentiles([], (1, 10, 50, 90, 99), np.zeros((0, 5)))
    with pytest.raises(ValueError):
        render_heatmap(g)


def test_median_band_monotone_up_the_columns():
    """Medians rise left to right: the '@' rows must not descend."""
    out = render_heatmap(make_grid(), height=12)
    rows = [l.split("|", 1)[1] for l in out.splitlines() if "|" in l]
    # Row index (from top) of each column's '@'.
    positions = {}
    for r, line in enumerate(rows):
        for c, ch in enumerate(line):
            if ch == "@" and c not in positions:
                positions[c] = r
    cols = sorted(positions)
    tops = [positions[c] for c in cols]
    # Non-increasing row index (top row = 0) => non-decreasing latency.
    assert all(a >= b for a, b in zip(tops, tops[1:]))


def test_cdf_render():
    out = render_cdf(np.linspace(1e-3, 1.0, 200), title="CDF")
    assert out.splitlines()[0] == "CDF"
    assert "#" in out


def test_cdf_empty_rejected():
    with pytest.raises(ValueError):
        render_cdf([])
