"""Tests for Chrome trace-event export (`repro.obs.chrometrace`).

The golden-file test pins the exact serialized output for a hand-built
span tree (no RNG, no numpy — stable across platforms and versions); the
DES test validates a fixed-seed three-tier run structurally, since its
float values depend on the numpy build.
"""

import io
import json
import os

import pytest

from repro.obs.chrometrace import (
    SPAN_PID_BASE,
    _assign_lanes,
    chrome_trace,
    span_trace_events,
    validate_trace_events,
    write_chrome_trace,
)
from repro.rpc.errors import StatusCode
from repro.rpc.stack import LatencyBreakdown
from repro.rpc.tracing import Span

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "chrome_trace_spans.json")


def make_span(trace_id, span_id, parent_id, service, method, start_time,
              total_s, **overrides):
    kwargs = dict(
        trace_id=trace_id, span_id=span_id, parent_id=parent_id,
        service=service, method=method,
        client_cluster="c0", server_cluster="c1",
        server_machine=f"c1-m{span_id}", start_time=start_time,
        breakdown=LatencyBreakdown(server_application=total_s),
        status=StatusCode.OK, request_bytes=100 * span_id,
        response_bytes=200 * span_id,
    )
    kwargs.update(overrides)
    return Span(**kwargs)


def golden_spans():
    """A fixed two-service tree: a root with two overlapping children."""
    return [
        make_span(9, 1, None, "Frontend", "Search", 0.001, 0.004),
        make_span(9, 2, 1, "Bigtable", "ReadRow", 0.002, 0.002),
        # Starts inside span 2 and outlives it: forces a second lane.
        make_span(9, 3, 1, "Bigtable", "ReadRow", 0.0025, 0.002,
                  status=StatusCode.DEADLINE_EXCEEDED),
    ]


# ---------------------------------------------------------------- lanes
def test_assign_lanes_nested_share_a_lane():
    # (start, end) sorted by (start, -duration): outer first, inner nests.
    assert _assign_lanes([(0.0, 10.0), (1.0, 3.0), (4.0, 9.0)]) == [0, 0, 0]


def test_assign_lanes_partial_overlap_splits():
    assert _assign_lanes([(0.0, 2.0), (1.0, 3.0)]) == [0, 1]


def test_assign_lanes_sequential_reuse():
    assert _assign_lanes([(0.0, 1.0), (2.0, 3.0)]) == [0, 0]


def test_assign_lanes_identical_intervals_nest():
    assert _assign_lanes([(0.0, 1.0), (0.0, 1.0)]) == [0, 0]


# ----------------------------------------------------------- span export
def test_span_events_one_process_per_service():
    events = span_trace_events(golden_spans())
    validate_trace_events(events)
    procs = {e["args"]["name"]: e["pid"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"}
    # Services sort alphabetically from SPAN_PID_BASE.
    assert procs == {"Bigtable": SPAN_PID_BASE,
                     "Frontend": SPAN_PID_BASE + 1}


def test_span_events_carry_span_identity():
    events = span_trace_events(golden_spans())
    slices = {e["args"]["span_id"]: e for e in events if e["ph"] == "X"}
    assert set(slices) == {1, 2, 3}
    root = slices[1]
    assert root["name"] == "Frontend/Search"
    assert root["args"]["parent_id"] == 0
    assert root["ts"] == pytest.approx(1000.0)
    assert root["dur"] == pytest.approx(4000.0)
    assert slices[3]["args"]["status"] == "DEADLINE_EXCEEDED"


def test_span_events_overlapping_siblings_get_lanes():
    events = span_trace_events(golden_spans())
    bigtable = [e for e in events
                if e["ph"] == "X" and e["pid"] == SPAN_PID_BASE]
    assert len({e["tid"] for e in bigtable}) == 2


# --------------------------------------------------------------- merging
def test_chrome_trace_metadata_sorts_first():
    doc = chrome_trace(
        [{"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 5, "dur": 1}],
        [{"ph": "M", "name": "process_name", "pid": 1, "tid": 0, "ts": 0,
          "args": {"name": "p"}}],
    )
    assert [e["ph"] for e in doc["traceEvents"]] == ["M", "X"]
    assert doc["displayTimeUnit"] == "ms"


def test_write_chrome_trace_returns_count(tmp_path):
    path = str(tmp_path / "t.json")
    n = write_chrome_trace(path, span_trace_events(golden_spans()))
    with open(path) as f:
        doc = json.load(f)
    assert len(doc["traceEvents"]) == n
    validate_trace_events(doc["traceEvents"])


# ------------------------------------------------------------- validator
def test_validator_rejects_missing_fields():
    with pytest.raises(ValueError, match="missing 'pid'"):
        validate_trace_events([{"ph": "X", "tid": 1, "name": "a", "ts": 0}])


def test_validator_rejects_backwards_ts():
    events = [
        {"ph": "i", "name": "a", "pid": 1, "tid": 1, "ts": 5},
        {"ph": "i", "name": "b", "pid": 1, "tid": 1, "ts": 4},
    ]
    with pytest.raises(ValueError, match="goes backwards"):
        validate_trace_events(events)


def test_validator_rejects_unmatched_begin():
    events = [{"ph": "B", "name": "a", "pid": 1, "tid": 1, "ts": 0}]
    with pytest.raises(ValueError, match="unmatched B"):
        validate_trace_events(events)


def test_validator_rejects_stray_end():
    events = [{"ph": "E", "name": "a", "pid": 1, "tid": 1, "ts": 0}]
    with pytest.raises(ValueError, match="E without matching B"):
        validate_trace_events(events)


def test_validator_rejects_partial_overlap():
    events = [
        {"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 0, "dur": 2},
        {"ph": "X", "name": "b", "pid": 1, "tid": 1, "ts": 1, "dur": 2},
    ]
    with pytest.raises(ValueError, match="partially overlaps"):
        validate_trace_events(events)


def test_validator_rejects_bad_dur_and_ph():
    with pytest.raises(ValueError, match="bad dur"):
        validate_trace_events(
            [{"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 0}])
    with pytest.raises(ValueError, match="unsupported ph"):
        validate_trace_events(
            [{"ph": "Z", "name": "a", "pid": 1, "tid": 1, "ts": 0}])


# ----------------------------------------------------------------- golden
def test_golden_chrome_trace():
    """The serialized document for the fixed span tree is pinned exactly.

    Regenerate (after an *intentional* format change) with:
        PYTHONPATH=src python tests/golden/regen_chrome_trace.py
    """
    buf = io.StringIO()
    write_chrome_trace(buf, span_trace_events(golden_spans()))
    produced = json.loads(buf.getvalue())
    with open(GOLDEN_PATH) as f:
        expected = json.load(f)
    assert produced == expected


# ------------------------------------------------------- fixed-seed DES
def test_three_tier_run_exports_valid_trace():
    from repro.obs.telemetry import TraceEventProbe
    from repro.studies import run_multitier_study

    probe = TraceEventProbe()
    study = run_multitier_study(duration_s=0.5, seed=41, frontend_rps=60.0,
                                probe=probe)
    assert study.dapper.spans, "fixed-seed run produced no spans"

    engine_events = probe.trace_events()
    span_events = span_trace_events(study.dapper.spans)
    doc = chrome_trace(engine_events, span_events)
    events = doc["traceEvents"]
    validate_trace_events(events)

    # Every slice fully keyed; every X has machine-readable args.
    for e in events:
        assert {"ph", "pid", "tid", "name", "ts"} <= set(e)
    span_slices = [e for e in events
                   if e["ph"] == "X" and e["pid"] >= SPAN_PID_BASE]
    assert len(span_slices) == len(study.dapper.spans)
    for e in span_slices:
        assert e["dur"] >= 0
        assert {"trace_id", "span_id", "parent_id", "status"} <= set(e["args"])
    # All four services appear as named processes.
    proc_names = {e["args"]["name"] for e in events
                  if e["ph"] == "M" and e["name"] == "process_name"}
    assert {"Frontend", "Bigtable", "KVStore", "NetworkDisk",
            "engine", "rpc"} <= proc_names
