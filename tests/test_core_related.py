"""Tests for the §2.4 cross-study comparison."""

import numpy as np
import pytest

from repro.core.calltree import run_tree_study
from repro.core.related import (
    ALIBABA,
    DEATHSTARBENCH,
    META,
    RelatedWorkComparison,
    compare_with_related_studies,
)


def test_published_bands_sane():
    for pub in (ALIBABA, META, DEATHSTARBENCH):
        assert pub.depth_p99_range[0] <= pub.depth_p99_range[1]
        assert pub.size_median_range[0] <= pub.size_p99_range[1]


def test_comparison_predicates():
    c = RelatedWorkComparison(ours_depth_p99=8, ours_max_depth=14,
                              ours_size_median=13, ours_size_p99=1200)
    assert c.wider_than_deep()
    assert c.exceeds_benchmark_suite_tail()
    assert c.depth_consistent_with_meta()


def test_narrow_tree_fails_predicates():
    c = RelatedWorkComparison(ours_depth_p99=10, ours_max_depth=40,
                              ours_size_median=5, ours_size_p99=12)
    assert not c.wider_than_deep()
    assert not c.exceeds_benchmark_suite_tail()
    assert not c.depth_consistent_with_meta()


def test_comparison_from_tree_study(small_catalog):
    trees = run_tree_study(small_catalog, n_trees=120,
                           rng=np.random.default_rng(3), max_nodes=5000)
    c = compare_with_related_studies(trees)
    # The paper's qualitative relations must hold for our fleet too.
    assert c.wider_than_deep()
    assert c.depth_consistent_with_meta()
    out = c.render()
    assert "Alibaba" in out and "Meta" in out and "DSB" in out
