"""Tests for load-balancing policies."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.rpc.loadbalancer import (
    LeastLoadedPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    WeightedLatencyPolicy,
    pick_cluster_latency_aware,
)

RNG = np.random.default_rng(21)


@dataclass
class Target:
    name: str
    _load: float = 0.0
    latency: float = 1e-3

    def load(self) -> float:
        return self._load


TARGETS = [Target("a", 1.0), Target("b", 5.0), Target("c", 2.0)]


def test_random_covers_all_targets():
    p = RandomPolicy()
    picked = {p.pick(TARGETS, RNG).name for _ in range(200)}
    assert picked == {"a", "b", "c"}


def test_random_roughly_uniform():
    p = RandomPolicy()
    counts = {"a": 0, "b": 0, "c": 0}
    for _ in range(3000):
        counts[p.pick(TARGETS, RNG).name] += 1
    for v in counts.values():
        assert 800 < v < 1200


def test_round_robin_cycles():
    p = RoundRobinPolicy()
    names = [p.pick(TARGETS, RNG).name for _ in range(6)]
    assert names == ["a", "b", "c", "a", "b", "c"]


def test_least_loaded_prefers_cold_target():
    p = LeastLoadedPolicy(d=3)
    # With d == n, the policy may still re-draw duplicates (sampling with
    # replacement by design); over many picks the coldest must dominate.
    counts = {"a": 0, "b": 0, "c": 0}
    for _ in range(500):
        counts[p.pick(TARGETS, RNG).name] += 1
    assert counts["a"] > counts["b"]
    assert counts["a"] > counts["c"]


def test_least_loaded_d1_is_random():
    p = LeastLoadedPolicy(d=1)
    picked = {p.pick(TARGETS, RNG).name for _ in range(300)}
    assert picked == {"a", "b", "c"}


def test_least_loaded_custom_load_fn():
    p = LeastLoadedPolicy(d=3, load_of=lambda t: -t._load)  # prefer hottest
    counts = {"a": 0, "b": 0, "c": 0}
    for _ in range(300):
        counts[p.pick(TARGETS, RNG).name] += 1
    assert counts["b"] == max(counts.values())


def test_least_loaded_invalid_d():
    with pytest.raises(ValueError):
        LeastLoadedPolicy(d=0)


def test_weighted_latency_prefers_close_targets():
    near = Target("near", latency=100e-6)
    far = Target("far", latency=50e-3)
    p = WeightedLatencyPolicy(latency_of=lambda t: t.latency)
    counts = {"near": 0, "far": 0}
    for _ in range(2000):
        counts[p.pick([near, far], RNG).name] += 1
    assert counts["near"] > 20 * counts["far"]


def test_weighted_latency_never_starves():
    near = Target("near", latency=1e-3)
    far = Target("far", latency=5e-3)
    p = WeightedLatencyPolicy(latency_of=lambda t: t.latency, power=1.0)
    counts = {"near": 0, "far": 0}
    for _ in range(5000):
        counts[p.pick([near, far], RNG).name] += 1
    assert counts["far"] > 100


def test_convenience_function():
    near = Target("near", latency=1e-4)
    far = Target("far", latency=1e-1)
    wins = sum(
        pick_cluster_latency_aware([near, far], lambda t: t.latency, RNG).name
        == "near"
        for _ in range(100)
    )
    assert wins > 90


@pytest.mark.parametrize("policy", [
    RandomPolicy(), RoundRobinPolicy(), LeastLoadedPolicy(),
    WeightedLatencyPolicy(lambda t: t.latency),
])
def test_empty_targets_rejected(policy):
    with pytest.raises(ValueError):
        policy.pick([], RNG)
