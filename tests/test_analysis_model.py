"""Program-model tests: symbol resolution, graphs, and the edge cases
cross-module analysis must survive (aliases, star imports, circular
imports, excluded files)."""

import ast
import textwrap
from pathlib import Path

from repro.analysis.config import LintConfig
from repro.analysis.graph import (
    import_graph,
    reachable_modules,
    subclasses_of,
)
from repro.analysis.model import ProgramModel, iter_refs
from repro.analysis.rules.base import FileContext
from repro.analysis.runner import lint_paths, module_name_for

NO_BASELINE = Path("/nonexistent-baseline.json")


def build_model(files, config=None):
    """``{module_name: source}`` -> a built ProgramModel.

    Paths are synthesized from the dotted names (``repro.a.b`` ->
    ``src/repro/a/b.py``) so path- and name-based lookups both work.
    """
    config = config or LintConfig()
    contexts = []
    for name, source in files.items():
        path = "src/" + name.replace(".", "/") + ".py"
        contexts.append(FileContext(
            path=path, source=textwrap.dedent(source),
            tree=ast.parse(textwrap.dedent(source)), config=config,
            module=name,
        ))
    return ProgramModel.build(contexts, config)


def write_project(tmp_path, files):
    """``{relpath: source}`` -> list of written Paths."""
    written = []
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
        written.append(target)
    return written


class TestResolution:
    def test_local_definition_wins_over_import(self):
        model = build_model({
            "repro.a": "def helper():\n    return 1\n",
            "repro.b": ("from repro.a import helper\n"
                        "def helper():\n    return 2\n"),
        })
        b = model.modules["repro.b"]
        assert model.resolve(b, "helper") == "repro.b.helper"

    def test_from_import_resolves_across_modules(self):
        model = build_model({
            "repro.a": "def helper():\n    return 1\n",
            "repro.b": "from repro.a import helper\nx = helper()\n",
        })
        b = model.modules["repro.b"]
        assert model.resolve(b, "helper") == "repro.a.helper"

    def test_import_as_alias(self):
        model = build_model({
            "repro.a": "def helper():\n    return 1\n",
            "repro.b": "import repro.a as ra\nx = ra.helper()\n",
        })
        b = model.modules["repro.b"]
        assert model.resolve(b, "ra.helper") == "repro.a.helper"

    def test_from_import_with_asname(self):
        model = build_model({
            "repro.a": "def helper():\n    return 1\n",
            "repro.b": "from repro.a import helper as h\nx = h()\n",
        })
        b = model.modules["repro.b"]
        assert model.resolve(b, "h") == "repro.a.helper"

    def test_reexport_chain_is_followed(self):
        model = build_model({
            "repro.a": "def helper():\n    return 1\n",
            "repro.b": "from repro.a import helper\n",
            "repro.c": "from repro.b import helper\nx = helper()\n",
        })
        c = model.modules["repro.c"]
        assert model.resolve(c, "helper") == "repro.a.helper"

    def test_relative_import_resolves_against_package(self):
        model = build_model({
            "repro.pkg.__init__": "",
            "repro.pkg.a": "def helper():\n    return 1\n",
            "repro.pkg.b": "from .a import helper\nx = helper()\n",
        })
        # The synthesized path for the __init__ ends in __init__.py only
        # in the real tree; mark the package flag by hand for this test.
        model.modules["repro.pkg.__init__"].is_package = True
        b = model.modules["repro.pkg.b"]
        assert model.resolve(b, "helper") == "repro.pkg.a.helper"

    def test_unresolvable_head_gives_none(self):
        model = build_model({"repro.a": "x = mystery()\n"})
        a = model.modules["repro.a"]
        assert model.resolve(a, "mystery") is None

    def test_resolve_call_constructor_hits_init(self):
        model = build_model({
            "repro.a": ("class Widget:\n"
                        "    def __init__(self, size):\n"
                        "        self.size = size\n"),
            "repro.b": "from repro.a import Widget\nw = Widget(3)\n",
        })
        b = model.modules["repro.b"]
        call = next(n for n in ast.walk(b.tree) if isinstance(n, ast.Call))
        fn = model.resolve_call(b, call)
        assert fn is not None and fn.qualname == "repro.a.Widget.__init__"

    def test_declared_constant_collection(self):
        model = build_model({
            "repro.a": 'WORKER_ENTRYPOINTS = ("_run", "_init")\n',
            "repro.b": "x = 1\n",
        })
        assert model.declared_constant("WORKER_ENTRYPOINTS") == {
            "repro.a": ("_run", "_init")}


class TestStarAndCycles:
    def test_star_import_recorded_not_crashed(self):
        model = build_model({
            "repro.a": "def helper():\n    return 1\n",
            "repro.b": "from repro.a import *\nx = helper()\n",
        })
        b = model.modules["repro.b"]
        assert b.star_imports == [("repro.a", 1)]
        # The name is invisible to resolution — the blind spot RL010 flags.
        assert model.resolve(b, "helper") is None

    def test_star_import_still_an_import_edge(self):
        model = build_model({
            "repro.a": "def helper():\n    return 1\n",
            "repro.b": "from repro.a import *\n",
        })
        assert "repro.a" in import_graph(model)["repro.b"]

    def test_circular_imports_terminate(self):
        model = build_model({
            "repro.a": "from repro.b import g\ndef f():\n    return g()\n",
            "repro.b": "from repro.a import f\ndef g():\n    return f()\n",
        })
        a = model.modules["repro.a"]
        assert model.resolve(a, "g") == "repro.b.g"
        assert reachable_modules(model, ["repro.a"]) == {"repro.a", "repro.b"}

    def test_reexport_cycle_terminates(self):
        # a re-exports from b which re-exports from a: no definition
        # anywhere, resolution must still return.
        model = build_model({
            "repro.a": "from repro.b import thing\n",
            "repro.b": "from repro.a import thing\n",
        })
        a = model.modules["repro.a"]
        assert model.resolve(a, "thing") is not None  # gives up, keeps name


class TestGraphs:
    def test_reachability_is_transitive(self):
        model = build_model({
            "repro.a": "import repro.b\n",
            "repro.b": "import repro.c\n",
            "repro.c": "x = 1\n",
            "repro.d": "x = 2\n",
        })
        assert reachable_modules(model, ["repro.a"]) == {
            "repro.a", "repro.b", "repro.c"}

    def test_unknown_roots_ignored(self):
        model = build_model({"repro.a": "x = 1\n"})
        assert reachable_modules(model, ["repro.nope"]) == set()

    def test_subclasses_across_modules_and_aliases(self):
        model = build_model({
            "repro.base": "class Probe:\n    def hook(self):\n        pass\n",
            "repro.direct": ("from repro.base import Probe\n"
                             "class A(Probe):\n    pass\n"),
            "repro.aliased": ("import repro.base as rb\n"
                              "class B(rb.Probe):\n    pass\n"),
            "repro.transitive": ("from repro.direct import A\n"
                                 "class C(A):\n    pass\n"),
            "repro.unrelated": "class D:\n    pass\n",
        })
        found = {k.qualname for k in subclasses_of(model, ["repro.base.Probe"])}
        assert found == {"repro.direct.A", "repro.aliased.B",
                         "repro.transitive.C"}


class TestIterRefs:
    def test_attribute_chain_yields_once(self):
        tree = ast.parse("y = catalog.config.seed\n")
        refs = [(root, chain) for root, chain, _ in iter_refs(tree)]
        # one entry for the whole chain, never the inner `catalog` Name
        assert ("catalog", ("config", "seed")) in refs
        assert ("catalog", ()) not in refs

    def test_call_base_recurses(self):
        tree = ast.parse("y = get(catalog).config\n")
        refs = [(root, chain) for root, chain, _ in iter_refs(tree)]
        # the chain on the call result is opaque; the inner refs surface
        assert ("get", ()) in refs and ("catalog", ()) in refs


class TestRunnerIntegration:
    def test_module_name_for_anchors_at_root_package(self):
        assert module_name_for(Path("src/repro/rpc/channel.py"),
                               "repro") == "repro.rpc.channel"
        assert module_name_for(Path("src/repro/core/__init__.py"),
                               "repro") == "repro.core"
        assert module_name_for(Path("tools/bench_guard.py"), "repro") is None

    def test_excluded_paths_not_scanned_or_modeled(self, tmp_path):
        files = write_project(tmp_path, {
            "repro/good.py": "x = 1\n",
            "repro/vendored/bad.py": "import time\nt = time.time()\n",
        })
        config = LintConfig(root=str(tmp_path), baseline=None,
                            wallclock_allow_paths=(),
                            exclude_paths=("repro/vendored/",))
        report = lint_paths([tmp_path], config, baseline_path=NO_BASELINE)
        assert report.files_scanned == 1
        assert report.findings == []

    def test_without_exclusion_the_same_file_fires(self, tmp_path):
        write_project(tmp_path, {
            "repro/vendored/bad.py": "import time\nt = time.time()\n",
        })
        config = LintConfig(root=str(tmp_path), baseline=None,
                            wallclock_allow_paths=())
        report = lint_paths([tmp_path], config, baseline_path=NO_BASELINE)
        assert [f.code for f in report.findings] == ["RL001"]

    def test_star_import_warns_via_rl010(self, tmp_path):
        write_project(tmp_path, {
            "repro/a.py": "def helper():\n    return 1\n",
            "repro/b.py": "from repro.a import *\n",
        })
        config = LintConfig(root=str(tmp_path), baseline=None,
                            select=("RL010",))
        report = lint_paths([tmp_path], config, baseline_path=NO_BASELINE)
        assert [f.code for f in report.findings] == ["RL010"]
        assert "repro.a" in report.findings[0].message
