"""Observer-side figures vs engine-side ground truth.

The contract under test: every characterization figure recomputed from
the committed span warehouse matches what the engine computed live —
bit-identical where the derivation is exact (Figs. 9/14/17/21), within
``SUMMATION_ORDER_RTOL`` for fleet cycle totals whose float additions
happen in a different order (Fig. 20).
"""

import numpy as np
import pytest

from repro.core.breakdown import breakdown_cdf_for_service
from repro.core.cycles import analyze_cycle_tax
from repro.core.observer import (
    SUMMATION_ORDER_RTOL,
    ValidationCheck,
    ValidationReport,
    observer_breakdown_cdf,
    observer_cycle_tax,
    replay_gwp,
    validate_against_engine,
)
from repro.obs.gwp import TAX_CATEGORIES
from repro.obs.query import SpanListSource
from repro.obs.spanstore import ingest_spans
from repro.studies import run_service_study


@pytest.fixture(scope="module")
def unsampled_study():
    """A fully-sampled study: the strict bit-identical contract applies."""
    return run_service_study(
        services=["KVStore"], n_clusters=1, duration_s=1.5, seed=3,
        dapper_sampling=1.0)


@pytest.fixture(scope="module")
def unsampled_warehouse(unsampled_study, tmp_path_factory):
    root = tmp_path_factory.mktemp("wh")
    return ingest_spans(unsampled_study.dapper.spans, root, "study",
                        shard_size=997)  # prime: shards straddle traces


def test_full_validation_passes_unsampled(unsampled_study,
                                          unsampled_warehouse):
    report = validate_against_engine(
        unsampled_warehouse, unsampled_study.dapper,
        gwp=unsampled_study.gwp)
    assert report.ok, report.render()
    names = [c.name for c in report.checks]
    assert "span count" in names
    assert any(n.startswith("fig9 matrix") for n in names)
    assert any(n.startswith("fig14 cdf") for n in names)
    assert "trace reassembly" in names
    assert "fig20 cycle totals" in names
    assert any(n.startswith("fig21 samples") for n in names)
    assert "tree shape accounting" in names


def test_breakdown_cdf_bit_identical(unsampled_study, unsampled_warehouse):
    dapper = unsampled_study.dapper
    full = dapper.methods()[0]
    service, method = full.split("/")
    engine = breakdown_cdf_for_service(dapper, service, method)
    observer = observer_breakdown_cdf(unsampled_warehouse, service, method)
    assert np.array_equal(engine.component_values, observer.component_values)
    assert engine.n_spans == observer.n_spans


def test_cycle_tax_within_summation_tolerance(unsampled_study,
                                              unsampled_warehouse):
    engine = analyze_cycle_tax(unsampled_study.gwp)
    observer = observer_cycle_tax(unsampled_warehouse)
    assert observer.tax_fraction == pytest.approx(
        engine.tax_fraction, rel=1e-6)
    replay = replay_gwp(unsampled_warehouse)
    for cat in TAX_CATEGORIES:
        engine_total = unsampled_study.gwp.totals[cat]
        assert replay.totals[cat] == pytest.approx(
            engine_total, rel=SUMMATION_ORDER_RTOL, abs=1e-12)


def test_replay_gwp_samples_exactly_equal(unsampled_study,
                                          unsampled_warehouse):
    replay = replay_gwp(unsampled_warehouse)
    gwp = unsampled_study.gwp
    assert replay.rpcs_profiled == gwp.rpcs_profiled
    assert set(replay.method_samples) == set(gwp.method_samples)
    for key, engine_samples in gwp.method_samples.items():
        assert np.array_equal(np.asarray(engine_samples),
                              np.asarray(replay.method_samples[key])), key


def test_non_rpc_cycles_reinstated(unsampled_warehouse):
    base = replay_gwp(unsampled_warehouse)
    with_bg = replay_gwp(unsampled_warehouse, non_rpc_cycles=1e9)
    assert with_bg.totals["non_rpc"] == base.totals["non_rpc"] + 1e9
    assert with_bg.cycle_tax_fraction() < base.cycle_tax_fraction()


def test_sampled_corpus_still_bit_identical_over_sampled_set(tmp_path):
    # Under head sampling the warehouse holds a subset; breakdown and
    # trace checks still hold over that subset (GWP totals would not).
    study = run_service_study(services=["KVStore"], n_clusters=1,
                              duration_s=1.5, seed=3, dapper_sampling=0.4)
    warehouse = ingest_spans(study.dapper.spans, tmp_path, "sampled",
                             shard_size=512)
    report = validate_against_engine(warehouse, study.dapper)  # no gwp
    assert report.ok, report.render()


def test_validation_catches_divergence(unsampled_study, tmp_path):
    # Drop a span before ingesting: span count, reassembly, and the
    # method figures must notice.
    spans = unsampled_study.dapper.spans[:-50]
    warehouse = ingest_spans(spans, tmp_path, "short", shard_size=512)
    report = validate_against_engine(warehouse, unsampled_study.dapper)
    assert not report.ok
    failed = {c.name for c in report.checks if not c.passed}
    assert "span count" in failed
    rendered = report.render()
    assert "FAIL" in rendered


def test_validation_report_shapes():
    report = ValidationReport(checks=[
        ValidationCheck(name="a", passed=True, detail="fine"),
        ValidationCheck(name="b", passed=False, detail="broke"),
    ])
    assert not report.ok
    doc = report.to_dict()
    assert doc["ok"] is False
    assert [c["name"] for c in doc["checks"]] == ["a", "b"]


def test_observer_works_on_span_list_source(unsampled_study):
    # The query contract is source-generic: a plain span list behaves
    # exactly like the mmap-backed warehouse.
    source = SpanListSource(unsampled_study.dapper.spans)
    report = validate_against_engine(source, unsampled_study.dapper,
                                     gwp=unsampled_study.gwp)
    assert report.ok, report.render()
