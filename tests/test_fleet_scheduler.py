"""Tests for the thread-wakeup model (Table 2's long-wakeup rate)."""

import numpy as np
import pytest

from repro.fleet.scheduler import LONG_WAKEUP_THRESHOLD_S, WakeupModel

RNG = np.random.default_rng(11)


def test_long_rate_monotone_in_utilization():
    m = WakeupModel()
    rates = [m.long_rate(u) for u in np.linspace(0, 1, 21)]
    assert all(a <= b + 1e-12 for a, b in zip(rates, rates[1:]))


def test_long_rate_bounds():
    m = WakeupModel()
    assert m.long_rate(-1.0) >= 0.0
    assert m.long_rate(0.0) >= m.base_long_rate * 0.5
    assert m.long_rate(2.0) <= m.max_long_rate + 1e-9


def test_hockey_stick_shape():
    """Flat below the knee, steep above it."""
    m = WakeupModel()
    low_slope = m.long_rate(0.3) - m.long_rate(0.1)
    knee_slope = m.long_rate(0.85) - m.long_rate(0.65)
    assert knee_slope > 5 * low_slope


def test_sampled_long_fraction_tracks_rate():
    m = WakeupModel()
    for util in (0.2, 0.8):
        delays = m.sample(RNG, util, 60_000)
        long_frac = (delays > LONG_WAKEUP_THRESHOLD_S).mean()
        # ~86% of slow-path draws (lognormal median 150us, sigma 1.0) clear
        # the 50us threshold; fast-path draws essentially never do.
        assert 0.6 * m.long_rate(util) < long_frac < 1.05 * m.long_rate(util)


def test_delays_positive():
    delays = WakeupModel().sample(RNG, 0.9, 1000)
    assert np.all(delays > 0)


def test_busy_machines_wake_slower_on_average():
    m = WakeupModel()
    idle = m.sample(RNG, 0.1, 50_000).mean()
    busy = m.sample(RNG, 0.95, 50_000).mean()
    assert busy > 3 * idle
