"""Tests for the discretized latency distributions (repro.theory.ddist)."""

import numpy as np
import pytest

from repro.theory.ddist import DEFAULT_BIN_S, DDist
from repro.theory.mgk import LognormalFit

H = 1e-4


def lognormal_ddist(mu=-7.0, sigma=0.8, h=H):
    return DDist.from_lognormal(mu, sigma, h)


def test_from_samples_matches_empirical_stats():
    rng = np.random.default_rng(5)
    samples = rng.lognormal(-7.0, 0.7, size=100_000)
    d = DDist.from_samples(samples, h=1e-5)
    assert d.pmf.sum() == pytest.approx(1.0, abs=1e-12)
    assert d.mean() == pytest.approx(samples.mean(), rel=0.01)
    assert d.quantile(0.95) == pytest.approx(
        np.quantile(samples, 0.95), rel=0.02)


def test_convolution_matches_np_convolve():
    a, b = lognormal_ddist(sigma=0.6), lognormal_ddist(mu=-6.5, sigma=0.9)
    s = a.add(b)
    direct = np.convolve(a.pmf, b.pmf)
    # Same support and identical mass (the add path may trim 1e-12 tails).
    assert s.start == a.start + b.start
    assert np.allclose(s.pmf, direct[: s.pmf.size], atol=1e-12)
    assert s.mean() == pytest.approx(a.mean() + b.mean(), abs=2 * H)


def test_convolution_is_associative_within_tolerance():
    a = lognormal_ddist(sigma=0.5)
    b = lognormal_ddist(mu=-6.8, sigma=0.7)
    c = DDist.constant(2e-3, H)
    left = a.add(b).add(c)
    right = a.add(b.add(c))
    assert left.start == right.start
    n = min(left.pmf.size, right.pmf.size)
    assert np.allclose(left.pmf[:n], right.pmf[:n], atol=1e-10)
    assert left.quantile(0.99) == pytest.approx(right.quantile(0.99),
                                                abs=2 * H)


def test_fft_and_direct_convolution_agree():
    # Force both paths over the same inputs by straddling the size
    # threshold with a wide uniform-ish distribution.
    rng = np.random.default_rng(9)
    samples = rng.uniform(0.0, 0.2, size=50_000)
    wide = DDist.from_samples(samples, h=1e-5)  # ~2e4 bins
    out = wide.add(wide)  # size product ~4e8 > FFT threshold
    direct = np.convolve(wide.pmf, wide.pmf)
    assert np.allclose(out.pmf, direct[: out.pmf.size], atol=1e-9)


def test_max_matches_monte_carlo():
    rng = np.random.default_rng(7)
    a, b = lognormal_ddist(sigma=0.8), lognormal_ddist(mu=-6.6, sigma=0.5)
    m = a.max(b)
    draws = np.maximum(rng.lognormal(-7.0, 0.8, 200_000),
                       rng.lognormal(-6.6, 0.5, 200_000))
    assert m.mean() == pytest.approx(draws.mean(), rel=0.02)
    assert m.quantile(0.99) == pytest.approx(
        np.quantile(draws, 0.99), rel=0.03)


def test_max_n_is_cdf_power():
    d = lognormal_ddist(sigma=0.6)
    m3 = d.max_n(3)
    x = d.quantile(0.9)
    assert m3.cdf(x) == pytest.approx(d.cdf(x) ** 3, abs=1e-6)


def test_add_n_matches_repeated_add():
    d = lognormal_ddist(sigma=0.5)
    by_squaring = d.add_n(4)
    direct = d.add(d).add(d).add(d)
    assert by_squaring.mean() == pytest.approx(direct.mean(), abs=2 * H)
    assert by_squaring.quantile(0.95) == pytest.approx(
        direct.quantile(0.95), abs=4 * H)


def test_mixture_weights_and_zero_inflation():
    spike = DDist.constant(0.0, H)
    body = lognormal_ddist(sigma=0.6)
    mix = DDist.mixture([(0.3, spike), (0.7, body)])
    assert mix.cdf(0.0) == pytest.approx(0.3 + 0.7 * body.cdf(0.0), abs=1e-9)
    zi = DDist.zero_inflated_lognormal(0.3, -7.0, 0.6, H)
    assert zi.cdf(0.0) == pytest.approx(mix.cdf(0.0), abs=1e-6)
    assert zi.mean() == pytest.approx(0.7 * body.mean(), rel=1e-3)


def test_from_lognormal_matches_analytic_quantiles():
    fit = LognormalFit(mu=-7.0, sigma=1.0)
    d = DDist.from_lognormal(fit.mu, fit.sigma, 1e-5)
    for p in (50.0, 95.0, 99.0):
        assert d.percentile(p) == pytest.approx(fit.percentile(p), rel=0.01)


def test_cdf_many_agrees_with_scalar_cdf():
    d = lognormal_ddist()
    xs = np.asarray([-1e-3, 0.0, d.quantile(0.5), d.quantile(0.99), 1.0])
    many = d.cdf_many(xs)
    assert many.shape == xs.shape
    for x, v in zip(xs, many):
        assert v == pytest.approx(d.cdf(float(x)), abs=1e-12)


def test_shift_moves_support_exactly():
    d = lognormal_ddist()
    s = d.shift(5e-3)
    assert s.mean() == pytest.approx(d.mean() + 5e-3, abs=H)
    assert np.array_equal(s.pmf, d.pmf)


def test_incompatible_bin_widths_rejected():
    with pytest.raises(ValueError):
        lognormal_ddist(h=1e-4).add(lognormal_ddist(h=2e-4))


def test_default_bin_resolves_millisecond_medians():
    d = DDist.from_lognormal(-7.0, 0.8, DEFAULT_BIN_S)
    assert d.median() > 4 * DEFAULT_BIN_S
