"""Tests for the repro-rpc command line."""

import io

import pytest

from repro.cli import build_parser, main


def test_parser_rejects_missing_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bogus"])


def test_growth_command(capsys):
    assert main(["growth", "--days", "200"]) == 0
    out = capsys.readouterr().out
    assert "annual RPS/CPU growth" in out
    assert "paper 0.30" in out


def test_trees_command(capsys):
    assert main(["trees", "--methods", "200", "--trees", "30"]) == 0
    out = capsys.readouterr().out
    assert "call-tree shape" in out


def test_trees_stream_command(tmp_path, capsys):
    spill = str(tmp_path / "spill")
    args = ["trees", "--methods", "200", "--trees", "64", "--no-cache",
            "--max-nodes", "200", "--shard-size", "32",
            "--spill-dir", spill, "--max-rss-mb", "4096"]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "call-tree shape" in out
    assert f"streamed via spill dir {spill}" in out
    assert "within budget 4096 MB" in out
    # The spill run directory committed a manifest.
    import os

    run_dirs = os.listdir(spill)
    assert len(run_dirs) == 1
    assert "manifest.json" in os.listdir(os.path.join(spill, run_dirs[0]))


def test_trees_stream_matches_in_memory(tmp_path, capsys):
    base = ["trees", "--methods", "200", "--trees", "64", "--no-cache",
            "--max-nodes", "200", "--shard-size", "32"]
    assert main(base) == 0
    plain = capsys.readouterr().out
    assert main(base + ["--stream", "--spill-dir",
                        str(tmp_path / "spill"), "--jobs", "2"]) == 0
    streamed = capsys.readouterr().out
    # Identical rendered tables: streaming and jobs change nothing.
    assert plain.strip() in streamed


def test_trees_rss_budget_exceeded_fails(tmp_path, capsys):
    assert main(["trees", "--methods", "200", "--trees", "30", "--no-cache",
                 "--max-rss-mb", "1"]) == 1
    assert "EXCEEDS budget 1 MB" in capsys.readouterr().out


def test_fleet_study_command(capsys):
    assert main(["fleet-study", "--methods", "150", "--samples", "60"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 2" in out
    assert "Fig. 20" in out
    assert "RPCs sampled" in out


def test_service_study_with_traces_roundtrip(tmp_path, capsys):
    path = str(tmp_path / "spans.dtrc")
    assert main(["service-study", "--services", "KVStore",
                 "--duration", "0.5", "--save-traces", path]) == 0
    out = capsys.readouterr().out
    assert "KVStore" in out
    assert "wrote" in out

    assert main(["analyze-traces", path]) == 0
    out = capsys.readouterr().out
    assert "KVStore/SearchValue" in out


def test_analyze_traces_empty_file(tmp_path, capsys):
    from repro.obs.trace_io import write_traces

    path = str(tmp_path / "empty.dtrc")
    write_traces([], path)
    assert main(["analyze-traces", path]) == 1


def test_service_study_telemetry_artifacts(tmp_path, capsys):
    import json

    manifest_path = str(tmp_path / "run.manifest.json")
    chrome_path = str(tmp_path / "run.chrome.json")
    assert main(["service-study", "--services", "KVStore",
                 "--duration", "0.5",
                 "--manifest", manifest_path,
                 "--chrome-trace", chrome_path]) == 0
    out = capsys.readouterr().out
    assert "trace events" in out
    assert "run manifest" in out

    from repro.obs.chrometrace import validate_trace_events
    from repro.obs.manifest import read_manifest

    with open(chrome_path) as f:
        doc = json.load(f)
    validate_trace_events(doc["traceEvents"])
    manifest = read_manifest(manifest_path)
    assert manifest.run_id == "service-study"
    assert manifest.seed == 11
    assert manifest.config["services"] == ["KVStore"]
    assert manifest.counts["events_fired"] > 0
    assert manifest.counts["spans_recorded"] > 0
    assert manifest.peak_heap > 0
    assert [p["name"] for p in manifest.phases] == ["simulate",
                                                    "export-chrome"]


def test_export_chrome_roundtrip(tmp_path, capsys):
    import json

    spans_path = str(tmp_path / "spans.dtrc")
    chrome_path = str(tmp_path / "spans.chrome.json")
    assert main(["service-study", "--services", "KVStore",
                 "--duration", "0.5", "--save-traces", spans_path]) == 0
    capsys.readouterr()

    assert main(["export-chrome", spans_path, chrome_path]) == 0
    out = capsys.readouterr().out
    assert "perfetto" in out

    from repro.obs.chrometrace import validate_trace_events

    with open(chrome_path) as f:
        doc = json.load(f)
    validate_trace_events(doc["traceEvents"])
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


def test_export_chrome_rejects_garbage(tmp_path):
    from repro.obs.trace_io import TraceIOError

    bad = tmp_path / "bad.dtrc"
    bad.write_bytes(b"not a trace")
    with pytest.raises(TraceIOError, match="bad trace magic"):
        main(["export-chrome", str(bad), str(tmp_path / "out.json")])


def test_fleet_obs_incident_round_trip(tmp_path, capsys):
    report_path = str(tmp_path / "incident.txt")
    manifest_path = str(tmp_path / "manifest.json")
    assert main(["fleet-obs", "--services", "KVStore", "--duration", "2.0",
                 "--seed", "5", "--inject-regression", "KVStore:1.0:8.0",
                 "--report", report_path, "--manifest", manifest_path]) == 0
    out = capsys.readouterr().out
    assert "incident report" in out
    assert "-- alert timeline" in out
    assert "FIRING" in out  # the injected regression trips the SLO

    with open(report_path) as f:
        live_report = f.read()
    live_timeline = [ln for ln in live_report.splitlines()
                     if ln.startswith("  t=")]
    assert live_timeline

    # Re-render from the manifest alone: the alert timeline round-trips.
    assert main(["fleet-obs", "--from-manifest", manifest_path]) == 0
    replay = capsys.readouterr().out
    replay_timeline = [ln for ln in replay.splitlines()
                       if ln.startswith("  t=")]
    assert replay_timeline == live_timeline


def test_fleet_obs_slo_file_and_trace_budget(tmp_path, capsys):
    import json

    slo_path = tmp_path / "slos.json"
    slo_path.write_text(json.dumps([{
        "name": "kv-latency", "threshold_s": 0.002, "window_s": 360.0,
        "target": 0.99, "labels": {"method": "KVStore/SearchValue"},
    }]))
    assert main(["fleet-obs", "--services", "KVStore", "--duration", "1.0",
                 "--slo", str(slo_path), "--trace-budget", "50"]) == 0
    out = capsys.readouterr().out
    assert "incident report" in out


def test_fleet_obs_rejects_regression_on_absent_service(tmp_path):
    with pytest.raises(SystemExit):
        main(["fleet-obs", "--services", "KVStore",
              "--inject-regression", "Bigtable:1.0:2.0"])


def test_export_chrome_trace_ids_filter(tmp_path, capsys):
    import json

    spans_path = str(tmp_path / "spans.dtrc")
    chrome_path = str(tmp_path / "one.chrome.json")
    assert main(["service-study", "--services", "KVStore",
                 "--duration", "0.5", "--save-traces", spans_path]) == 0
    capsys.readouterr()

    from repro.obs.trace_io import read_traces

    spans = list(read_traces(spans_path))
    target = spans[0].trace_id
    assert main(["export-chrome", spans_path, chrome_path,
                 "--trace-ids", str(target)]) == 0
    capsys.readouterr()
    with open(chrome_path) as f:
        doc = json.load(f)
    exported = {e["args"]["trace_id"] for e in doc["traceEvents"]
                if e.get("ph") == "X" and "trace_id" in e.get("args", {})}
    assert exported == {target}

    # No matching ids: error exit, nothing useful to write.
    assert main(["export-chrome", spans_path,
                 str(tmp_path / "none.json"), "--trace-ids", "999999"]) == 1


def test_span_query_generate_self_check_figures(tmp_path, capsys):
    root = str(tmp_path / "wh")
    out_json = str(tmp_path / "query.json")
    args = ["span-query", "--root", root, "--generate",
            "--duration", "0.8", "--seed", "3", "--shard-size", "1024",
            "--self-check", "--figures", "--json", out_json,
            "--max-rss-mb", "8192"]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "streamed" in out and "shards under" in out
    assert "span warehouse group-by" in out
    assert "observer-side vs engine-side cross-validation" in out
    assert "FAIL" not in out
    assert "call-tree shape (parent joins over the warehouse)" in out
    import json as json_mod

    with open(out_json, encoding="utf-8") as f:
        doc = json_mod.load(f)
    assert doc["n_spans"] > 0
    assert doc["self_check"]["ok"] is True
    assert doc["groups"], "expected at least one method group"
    assert {"service", "method", "count", "p95_s"} <= set(doc["groups"][0])


def test_span_query_reopens_committed_warehouse(tmp_path, capsys):
    root = str(tmp_path / "wh")
    assert main(["span-query", "--root", root, "--generate",
                 "--duration", "0.5", "--seed", "3"]) == 0
    capsys.readouterr()
    # Second invocation: pure reads, no --generate.
    assert main(["span-query", "--root", root,
                 "--service", "KVStore", "--metric", "tax",
                 "--percentiles", "50,99"]) == 0
    out = capsys.readouterr().out
    assert "span warehouse group-by (tax" in out
    assert "KVStore/" in out


def test_span_query_ingest_trace_file(tmp_path, capsys):
    traces = str(tmp_path / "spans.dtrc")
    assert main(["service-study", "--services", "KVStore",
                 "--duration", "0.5", "--seed", "3",
                 "--save-traces", traces]) == 0
    capsys.readouterr()
    root = str(tmp_path / "wh")
    assert main(["span-query", "--root", root, "--ingest", traces]) == 0
    out = capsys.readouterr().out
    assert "ingested" in out


def test_span_query_missing_warehouse_fails(tmp_path):
    with pytest.raises(SystemExit, match="cannot open warehouse"):
        main(["span-query", "--root", str(tmp_path / "nope")])


def test_span_query_rejects_bad_args(tmp_path):
    root = str(tmp_path / "wh")
    assert main(["span-query", "--root", root, "--generate",
                 "--duration", "0.3", "--seed", "3"]) == 0
    with pytest.raises(SystemExit, match="bad --percentiles"):
        main(["span-query", "--root", root, "--percentiles", "abc"])
    with pytest.raises(SystemExit, match="unknown metric"):
        main(["span-query", "--root", root, "--metric", "bogus"])
    with pytest.raises(SystemExit, match="requires --generate"):
        main(["span-query", "--root", root, "--self-check"])


def test_theory_sweep_command(tmp_path, capsys):
    import json
    report_path = str(tmp_path / "agreement.json")
    # fanout + whatif only: no DES runs, so the smoke stays fast.
    assert main(["theory", "--sweep", "--grid", "ci", "--seed", "23",
                 "--sweeps", "fanout", "whatif",
                 "--json", report_path]) == 0
    out = capsys.readouterr().out
    assert "theory vs DES agreement" in out
    assert "BREACH" not in out
    with open(report_path) as fh:
        doc = json.load(fh)
    assert doc["ok"] is True
    assert doc["grid"] == "ci"
    assert doc["n_breaches"] == 0
    assert doc["n_points"] == len(doc["points"]) > 0


def test_theory_rejects_bad_grid_and_sweep():
    with pytest.raises(SystemExit):
        main(["theory", "--sweep", "--grid", "nightly"])
    with pytest.raises(SystemExit):
        main(["theory", "--sweep", "--sweeps", "chaos"])
