"""Tests for the repro-rpc command line."""

import io

import pytest

from repro.cli import build_parser, main


def test_parser_rejects_missing_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bogus"])


def test_growth_command(capsys):
    assert main(["growth", "--days", "200"]) == 0
    out = capsys.readouterr().out
    assert "annual RPS/CPU growth" in out
    assert "paper 0.30" in out


def test_trees_command(capsys):
    assert main(["trees", "--methods", "200", "--trees", "30"]) == 0
    out = capsys.readouterr().out
    assert "call-tree shape" in out


def test_fleet_study_command(capsys):
    assert main(["fleet-study", "--methods", "150", "--samples", "60"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 2" in out
    assert "Fig. 20" in out
    assert "RPCs sampled" in out


def test_service_study_with_traces_roundtrip(tmp_path, capsys):
    path = str(tmp_path / "spans.dtrc")
    assert main(["service-study", "--services", "KVStore",
                 "--duration", "0.5", "--save-traces", path]) == 0
    out = capsys.readouterr().out
    assert "KVStore" in out
    assert "wrote" in out

    assert main(["analyze-traces", path]) == 0
    out = capsys.readouterr().out
    assert "KVStore/SearchValue" in out


def test_analyze_traces_empty_file(tmp_path, capsys):
    from repro.obs.trace_io import write_traces

    path = str(tmp_path / "empty.dtrc")
    write_traces([], path)
    assert main(["analyze-traces", path]) == 1
