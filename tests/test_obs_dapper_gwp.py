"""Tests for the Dapper trace collector and GWP profiler."""

import numpy as np
import pytest

from repro.obs.dapper import MIN_SAMPLES_PER_METHOD, DapperCollector, Span
from repro.obs.gwp import GwpProfiler
from repro.rpc.errors import StatusCode
from repro.rpc.stack import CycleCosts, LatencyBreakdown


def make_span(trace_id=1, span_id=1, service="S", method="M",
              status=StatusCode.OK, app=1e-3, cluster="c0",
              machine="c0-m0") -> Span:
    return Span(
        trace_id=trace_id, span_id=span_id, parent_id=None,
        service=service, method=method,
        client_cluster=cluster, server_cluster=cluster,
        server_machine=machine, start_time=0.0,
        breakdown=LatencyBreakdown(server_application=app),
        status=status,
    )


class TestDapper:
    def test_records_everything_at_rate_one(self):
        d = DapperCollector(sampling_rate=1.0)
        for i in range(10):
            assert d.record(make_span(trace_id=i, span_id=i))
        assert len(d) == 10

    def test_sampling_decision_sticky_per_trace(self):
        d = DapperCollector(sampling_rate=0.5, rng=np.random.default_rng(0))
        for trace in range(100):
            first = d.trace_is_sampled(trace)
            assert d.trace_is_sampled(trace) == first

    def test_sampling_rate_respected(self):
        d = DapperCollector(sampling_rate=0.3, rng=np.random.default_rng(1))
        kept = sum(d.record(make_span(trace_id=i, span_id=i))
                   for i in range(5000))
        assert abs(kept / 5000 - 0.3) < 0.03

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            DapperCollector(sampling_rate=1.5)

    def test_error_spans_excluded_from_latency_queries(self):
        d = DapperCollector()
        d.record(make_span(span_id=1))
        d.record(make_span(trace_id=2, span_id=2, status=StatusCode.CANCELLED))
        assert len(d.ok_spans()) == 1
        assert len(d.spans_for_method("S", "M")) == 1
        assert len(d.spans_for_method("S", "M", ok_only=False)) == 2

    def test_methods_enforce_min_samples(self):
        d = DapperCollector()
        for i in range(MIN_SAMPLES_PER_METHOD - 1):
            d.record(make_span(trace_id=i, span_id=i, method="Rare"))
        for i in range(MIN_SAMPLES_PER_METHOD):
            d.record(make_span(trace_id=1000 + i, span_id=1000 + i,
                               method="Common"))
        assert d.methods() == ["S/Common"]

    def test_matrix_for_method(self):
        d = DapperCollector()
        for i, app in enumerate((1e-3, 2e-3, 3e-3)):
            d.record(make_span(trace_id=i, span_id=i, app=app))
        m = d.matrix_for_method("S/M")
        assert len(m) == 3
        assert sorted(m.application()) == [1e-3, 2e-3, 3e-3]

    def test_group_by(self):
        d = DapperCollector()
        d.record(make_span(span_id=1, cluster="a"))
        d.record(make_span(trace_id=2, span_id=2, cluster="b"))
        groups = d.group_by(lambda s: s.server_cluster)
        assert set(groups) == {"a", "b"}

    def test_traces_grouping(self):
        d = DapperCollector()
        d.record(make_span(trace_id=7, span_id=1))
        d.record(make_span(trace_id=7, span_id=2))
        assert len(d.traces()[7]) == 2


class TestGwp:
    def cost(self, app=0.1):
        return CycleCosts(application=app, compression=0.01,
                          serialization=0.005, networking=0.008,
                          rpc_library=0.002)

    def test_totals_accumulate(self):
        g = GwpProfiler()
        g.add_rpc("S", "M", self.cost())
        g.add_rpc("S", "M", self.cost())
        assert g.totals["application"] == pytest.approx(0.2)
        assert g.totals["compression"] == pytest.approx(0.02)
        assert g.rpcs_profiled == 2

    def test_tax_fraction(self):
        g = GwpProfiler()
        g.add_rpc("S", "M", self.cost(app=0.1))
        tax = 0.01 + 0.005 + 0.008 + 0.002
        assert g.cycle_tax_fraction() == pytest.approx(tax / (0.1 + tax))

    def test_non_rpc_dilutes_tax(self):
        g = GwpProfiler()
        g.add_rpc("S", "M", self.cost())
        before = g.cycle_tax_fraction()
        g.add_non_rpc(1.0)
        assert g.cycle_tax_fraction() < before

    def test_negative_non_rpc_rejected(self):
        with pytest.raises(ValueError):
            GwpProfiler().add_non_rpc(-1)

    def test_service_shares_sum_to_one_without_non_rpc(self):
        g = GwpProfiler()
        g.add_rpc("A", "M", self.cost())
        g.add_rpc("B", "M", self.cost())
        shares = g.service_cycle_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_batch_weighting(self):
        g = GwpProfiler()
        batch = {
            "application": np.array([0.1, 0.1]),
            "compression": np.array([0.01, 0.01]),
            "serialization": np.array([0.0, 0.0]),
            "networking": np.array([0.0, 0.0]),
            "rpc_library": np.array([0.0, 0.0]),
        }
        g.add_rpc_batch("A", "M", batch, weight=0.5)
        # Batch totals are weight * per-call mean.
        assert g.totals["application"] == pytest.approx(0.05)
        assert g.totals["compression"] == pytest.approx(0.005)

    def test_empty_batch_noop(self):
        g = GwpProfiler()
        g.add_rpc_batch("A", "M", {"application": np.array([]),
                                   "compression": np.array([]),
                                   "serialization": np.array([]),
                                   "networking": np.array([]),
                                   "rpc_library": np.array([])})
        assert g.fleet_cycles() == 0

    def test_per_method_samples(self):
        g = GwpProfiler()
        for _ in range(3):
            g.add_rpc("S", "M", self.cost())
        samples = g.per_method_cost_samples()
        assert len(samples[("S", "M")]) == 3

    def test_sampling_rate_reweights_unbiased(self):
        g = GwpProfiler(sample_rate=0.5, rng=np.random.default_rng(0))
        for _ in range(4000):
            g.add_rpc("S", "M", self.cost(app=1.0))
        # Expectation: 4000 * 1.0 regardless of the sampling rate.
        assert g.totals["application"] == pytest.approx(4000, rel=0.1)

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            GwpProfiler(sample_rate=0.0)
