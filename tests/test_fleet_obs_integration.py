"""End-to-end tests of the fleet observability control plane.

Exercises the full loop the ``fleet_dashboard`` example demonstrates: a
DES study with an SLO attached, a mid-run latency regression, burn-rate
alerts walking pending -> firing -> resolved, exemplar trace ids linking
the alert back to Dapper span trees, and a byte-identical incident
report under a fixed seed.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.obs.alerting import SloSpec
from repro.obs.dashboard import render_incident_report
from repro.studies import run_service_study

EXAMPLE_PATH = (Path(__file__).resolve().parent.parent
                / "examples" / "fleet_dashboard.py")

SEED = 5
DURATION_S = 2.0
REGRESSION_AT_S = 1.0
THRESHOLD_S = 0.002


def load_example():
    spec = importlib.util.spec_from_file_location(
        "fleet_dashboard_example", EXAMPLE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_small_incident(seed=SEED):
    """A compact version of the example incident (KVStore, one cluster)."""
    slo = SloSpec(
        name="kv-latency", threshold_s=THRESHOLD_S, window_s=240.0,
        target=0.99, labels={"method": "KVStore/SearchValue"})

    def inject(sim, deployments):
        servers = [s for cluster_servers in
                   deployments["KVStore"].servers_by_cluster.values()
                   for s in cluster_servers]

        def degrade():
            for server in servers:
                server.app_scale *= 8.0

        sim.at(REGRESSION_AT_S, degrade)

    study = run_service_study(
        services=["KVStore"], n_clusters=1, duration_s=DURATION_S,
        seed=seed, scrape_interval_s=0.25, dapper_sampling=1.0,
        slos=[slo], on_setup=inject)
    report = render_incident_report(
        study.alerts.events, study.monarch, traces=study.dapper.traces(),
        title="incident report: KVStore regression")
    return study, report


@pytest.fixture(scope="module")
def incident():
    return run_small_incident()


class TestIncidentLifecycle:
    def test_alert_walks_pending_firing_resolved(self, incident):
        study, _report = incident
        page = [e for e in study.alerts.events if e.severity == "page"]
        states = [e.state for e in page]
        assert states == ["pending", "firing", "resolved"]
        # The whole lifecycle happens after the injected regression.
        assert all(e.t > REGRESSION_AT_S for e in page)
        assert page[0].t < page[1].t < page[2].t

    def test_firing_exemplar_trace_shows_the_regression(self, incident):
        study, _report = incident
        firing = [e for e in study.alerts.events if e.state == "firing"]
        assert firing and firing[0].exemplars
        traces = study.dapper.traces()
        value, trace_id = firing[0].exemplars[0]
        assert value > THRESHOLD_S
        spans = traces[trace_id]  # exemplar traces are always sampled here
        assert spans
        # The span tree exhibits the regression: its slowest span breaches
        # the SLO threshold and started after the injection point.
        worst = max(spans, key=lambda s: s.breakdown.total())
        assert worst.breakdown.total() > THRESHOLD_S
        assert worst.start_time >= REGRESSION_AT_S

    def test_burn_rate_series_cross_the_page_factor(self, incident):
        study, _report = incident
        _t, burn = study.monarch.read(
            "alerts/burn_rate_long", {"slo": "kv-latency",
                                      "severity": "page"})
        assert burn.min() == 0.0  # healthy before the rollout
        assert burn.max() >= 14.4  # breach during it

    def test_report_sections_render(self, incident):
        _study, report = incident
        assert "-- alert timeline" in report
        assert "-- burn rates" in report
        assert "-- exemplar traces (worst first)" in report
        assert "FIRING" in report and "RESOLVED" in report
        assert "spans, slowest KVStore/SearchValue" in report

    def test_report_is_byte_identical_across_runs(self, incident):
        _study, first = incident
        _study2, second = run_small_incident()
        assert first == second

    def test_different_seed_different_run(self, incident):
        study, _report = incident
        study2, _report2 = run_small_incident(seed=SEED + 1)
        assert len(study.dapper.spans) != len(study2.dapper.spans)


class TestExampleModule:
    def test_example_slo_compiles_and_scenario_wiring(self):
        mod = load_example()
        slo = mod.build_slo()
        rules = slo.compile()
        assert [r.severity for r in rules] == ["page", "ticket"]
        assert slo.labels == {"method": "Bigtable/SearchValue"}
        assert mod.REGRESSION_AT_S < mod.DURATION_S
        assert mod.REGRESSION_SCALE > 1.0
