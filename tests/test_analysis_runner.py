"""Framework behaviour: pragmas, baseline round-trip, reporters, CLI."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.cli import main
from repro.analysis.config import LintConfig, load_config
from repro.analysis.pragmas import parse_pragmas
from repro.analysis.reporting import render_json, render_text
from repro.analysis.runner import lint_paths, module_name_for

NO_BASELINE = Path("/nonexistent-baseline.json")

BAD_SOURCE = """\
import time
import random
t0 = time.perf_counter()
x = random.random()
"""


def write(tmp_path, name, source):
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return target


def bare_config(tmp_path, **kwargs):
    kwargs.setdefault("root", str(tmp_path))
    kwargs.setdefault("baseline", None)
    kwargs.setdefault("wallclock_allow_paths", ())
    kwargs.setdefault("random_allow_paths", ())
    return LintConfig(**kwargs)


class TestPragmas:
    def test_line_pragma_suppresses_only_that_line(self, tmp_path):
        target = write(tmp_path, "mod.py", """\
            import time
            a = time.perf_counter()  # repro-lint: disable=RL001 - harness timing
            b = time.perf_counter()
        """)
        report = lint_paths([target], bare_config(tmp_path),
                            baseline_path=NO_BASELINE)
        assert [f.line for f in report.findings] == [3]
        assert report.suppressed_pragma == 1

    def test_multi_code_and_all_pragmas(self, tmp_path):
        target = write(tmp_path, "mod.py", """\
            import time, random
            a = time.time() or random.random()  # repro-lint: disable=RL001,RL002
            b = time.time() or random.random()  # repro-lint: disable=all
        """)
        report = lint_paths([target], bare_config(tmp_path),
                            baseline_path=NO_BASELINE)
        assert report.findings == []
        assert report.suppressed_pragma == 4

    def test_file_pragma_suppresses_whole_file(self, tmp_path):
        target = write(tmp_path, "mod.py", """\
            # repro-lint: disable-file=RL001
            import time
            a = time.time()
            b = time.sleep(1)
        """)
        report = lint_paths([target], bare_config(tmp_path),
                            baseline_path=NO_BASELINE)
        assert report.findings == []
        assert report.suppressed_pragma == 2

    def test_pragma_inside_string_is_ignored(self, tmp_path):
        target = write(tmp_path, "mod.py", '''\
            import time
            DOC = """
            # repro-lint: disable-file=all
            """
            t = time.time()
        ''')
        report = lint_paths([target], bare_config(tmp_path),
                            baseline_path=NO_BASELINE)
        assert [f.code for f in report.findings] == ["RL001"]

    def test_parse_pragmas_index(self):
        index = parse_pragmas(
            "x = 1  # repro-lint: disable=RL003\n"
            "# repro-lint: disable-file=RL005\n"
        )
        assert index.is_suppressed("RL003", 1)
        assert not index.is_suppressed("RL003", 2)
        assert index.is_suppressed("RL005", 40)


class TestBaseline:
    def test_round_trip_silences_then_goes_stale(self, tmp_path):
        target = write(tmp_path, "mod.py", BAD_SOURCE)
        config = bare_config(tmp_path)
        baseline = tmp_path / "baseline.json"

        first = lint_paths([target], config, baseline_path=NO_BASELINE)
        assert len(first.findings) == 2
        count = write_baseline(baseline, first.findings)
        assert count == 2

        second = lint_paths([target], config, baseline_path=baseline)
        assert second.findings == []
        assert second.suppressed_baseline == 2
        assert second.stale_baseline == []

        # Fix one finding: its baseline entry is now stale, the other
        # still suppresses, and nothing new is reported.
        target.write_text("import time\nt0 = time.perf_counter()\n")
        third = lint_paths([target], config, baseline_path=baseline)
        assert third.findings == []
        assert third.suppressed_baseline == 1
        assert len(third.stale_baseline) == 1

    def test_fingerprint_survives_line_shifts(self, tmp_path):
        target = write(tmp_path, "mod.py", "import time\nx = time.time()\n")
        config = bare_config(tmp_path)
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline,
                       lint_paths([target], config,
                                  baseline_path=NO_BASELINE).findings)
        target.write_text("import time\n\n\n\nx = time.time()\n")
        report = lint_paths([target], config, baseline_path=baseline)
        assert report.findings == []
        assert report.suppressed_baseline == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []

    def test_corrupt_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99}')
        with pytest.raises(ValueError):
            load_baseline(bad)

    def test_apply_baseline_split(self, tmp_path):
        target = write(tmp_path, "mod.py", BAD_SOURCE)
        findings = lint_paths([target], bare_config(tmp_path),
                              baseline_path=NO_BASELINE).findings
        entries = [{"fingerprint": findings[0].fingerprint}]
        active, suppressed, stale = apply_baseline(findings, entries)
        assert suppressed == 1
        assert stale == []
        assert active == [findings[1]]


class TestReporters:
    def test_text_report_shape(self, tmp_path):
        target = write(tmp_path, "mod.py", BAD_SOURCE)
        report = lint_paths([target], bare_config(tmp_path),
                            baseline_path=NO_BASELINE)
        text = render_text(report)
        assert "mod.py:3:6: RL001" in text
        assert "2 findings in 1 file" in text

    def test_json_report_schema(self, tmp_path):
        target = write(tmp_path, "mod.py", BAD_SOURCE)
        report = lint_paths([target], bare_config(tmp_path),
                            baseline_path=NO_BASELINE)
        payload = json.loads(render_json(report))
        assert payload["version"] == 1
        assert payload["summary"]["total"] == 2
        assert payload["summary"]["clean"] is False
        finding = payload["findings"][0]
        assert set(finding) == {"code", "path", "line", "col", "message",
                                "symbol", "fingerprint"}


class TestConfig:
    def test_layer_of_and_rule_enabled(self):
        config = LintConfig()
        assert config.layer_of("sim") == 0
        assert config.layer_of("rpc") == 1
        assert config.layer_of("cli") == 4
        assert config.layer_of("nonesuch") is None
        assert config.rule_enabled("RL001")
        narrowed = LintConfig(select=("RL004",), ignore=("RL005",))
        assert narrowed.rule_enabled("RL004")
        assert not narrowed.rule_enabled("RL001")
        assert not narrowed.rule_enabled("RL005")

    def test_load_config_reads_tool_table(self, tmp_path):
        pyproject = write(tmp_path, "pyproject.toml", """\
            [tool.repro-lint]
            baseline = "lint/base.json"
            unit_stems = ["latency"]
            layers = [["sim"], ["rpc"]]
        """)
        config = load_config(pyproject=pyproject)
        assert config.baseline == "lint/base.json"
        assert config.unit_stems == ("latency",)
        assert config.layers == (("sim",), ("rpc",))
        assert config.root == str(tmp_path)
        # Unspecified fields keep their defaults.
        assert config.root_package == "repro"

    def test_load_config_discovers_pyproject_upward(self, tmp_path):
        write(tmp_path, "pyproject.toml", "[tool.repro-lint]\nbaseline = 'b.json'\n")
        nested = tmp_path / "src" / "pkg"
        nested.mkdir(parents=True)
        config = load_config(search_from=nested)
        assert config.baseline == "b.json"

    def test_module_name_resolution(self):
        assert module_name_for(Path("src/repro/rpc/channel.py"), "repro") \
            == "repro.rpc.channel"
        assert module_name_for(Path("src/repro/sim/__init__.py"), "repro") \
            == "repro.sim"
        assert module_name_for(Path("elsewhere/tool.py"), "repro") is None


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        bad = write(tmp_path, "bad.py", "import time\nx = time.time()\n")
        good = write(tmp_path, "good.py", "x = 1\n")
        assert main([str(good), "--no-baseline"]) == 0
        assert main([str(bad), "--no-baseline"]) == 1
        assert main([str(bad), "--select", "RL999"]) == 2
        capsys.readouterr()

    def test_select_skips_other_rules(self, tmp_path, capsys):
        bad = write(tmp_path, "bad.py", "import time\nx = time.time()\n")
        assert main([str(bad), "--no-baseline", "--select", "RL005"]) == 0
        capsys.readouterr()

    def test_json_format(self, tmp_path, capsys):
        bad = write(tmp_path, "bad.py", "import time\nx = time.time()\n")
        assert main([str(bad), "--no-baseline", "--format=json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["total"] == 1
        assert payload["findings"][0]["code"] == "RL001"

    def test_write_baseline_flow(self, tmp_path, capsys):
        bad = write(tmp_path, "bad.py", "import time\nx = time.time()\n")
        baseline = tmp_path / "baseline.json"
        assert main([str(bad), "--write-baseline",
                     "--baseline", str(baseline)]) == 0
        assert baseline.is_file()
        assert main([str(bad), "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005",
                     "RL006", "RL007", "RL008", "RL009", "RL010"):
            assert code in out

    def test_explain_prints_rationale_and_example(self, capsys):
        # Every registered rule must explain itself with a Bad/Good pair.
        from repro.analysis.rules import all_rules
        for cls in all_rules():
            assert main(["--explain", cls.code]) == 0
            out = capsys.readouterr().out
            assert cls.code in out and cls.name in out
            assert "Bad::" in out, f"{cls.code} docstring lacks a Bad example"
            assert "Good::" in out, f"{cls.code} docstring lacks a Good example"

    def test_explain_is_case_insensitive_and_rejects_unknown(self, capsys):
        assert main(["--explain", "rl007"]) == 0
        capsys.readouterr()
        assert main(["--explain", "RL999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_fail_stale_baseline(self, tmp_path, capsys):
        bad = write(tmp_path, "bad.py", "import time\nx = time.time()\n")
        baseline = tmp_path / "baseline.json"
        assert main([str(bad), "--write-baseline",
                     "--baseline", str(baseline)]) == 0
        # Fix the finding: the baseline entry no longer matches anything.
        bad.write_text("x = 1\n")
        assert main([str(bad), "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main([str(bad), "--baseline", str(baseline),
                     "--fail-stale-baseline"]) == 1
        assert "stale baseline" in capsys.readouterr().err
