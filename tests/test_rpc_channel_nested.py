"""Unit tests for nested child calls at the channel level."""

import numpy as np
import pytest

from repro.fleet.machine import Machine, MachineProfile
from repro.fleet.topology import Cluster, Datacenter, Region
from repro.net.latency import NetworkModel
from repro.obs.dapper import DapperCollector
from repro.rpc.channel import (
    ChildCall,
    MethodRuntime,
    RpcClientTask,
    RpcServerTask,
)
from repro.sim.distributions import Constant
from repro.sim.engine import Simulator


def quiet_profile():
    return MachineProfile(cores=4, background_util_mean=0.0,
                          diurnal_amplitude=0.0, noise_amplitude=0.0,
                          cpi_contention_coeff=0.0,
                          wakeup=__import__("repro.fleet.scheduler",
                                            fromlist=["WakeupModel"])
                          .WakeupModel(base_long_rate=0.0, max_long_rate=0.0,
                                       fast_mean_s=1e-9))


def build():
    sim = Simulator()
    cluster = Cluster("c0", Datacenter("dc", Region("r", 0, 0)), 0)
    dapper = DapperCollector(sampling_rate=1.0)
    network = NetworkModel()

    def machine(i):
        m = Machine(sim, cluster, i, profile=quiet_profile(),
                    rng=np.random.default_rng(i))
        return m

    leaf_rt = MethodRuntime(
        service="Leaf", method="Get",
        app_time=Constant(1e-3), request_size=Constant(100),
        response_size=Constant(100), app_cycles=Constant(0.01),
    )
    leaf_server = RpcServerTask(sim, machine(0), [leaf_rt],
                                rng=np.random.default_rng(10))

    parent_rt = MethodRuntime(
        service="Mid", method="Fan",
        app_time=Constant(2e-3), request_size=Constant(100),
        response_size=Constant(100), app_cycles=Constant(0.02),
        child_calls=[ChildCall(leaf_rt, Constant(3.0))],
        child_fanout_phase=0.5,
    )
    parent_machine = machine(1)
    parent_server = RpcServerTask(sim, parent_machine, [parent_rt],
                                  rng=np.random.default_rng(11))
    child_client = RpcClientTask(sim, parent_machine, network, dapper=dapper,
                                 rng=np.random.default_rng(12))
    parent_server.configure_children(
        child_client, {leaf_rt.full_method: lambda rng: leaf_server},
    )

    user = RpcClientTask(sim, machine(2), network, dapper=dapper,
                         rng=np.random.default_rng(13))
    return sim, user, parent_server, parent_rt, dapper


def test_children_issued_and_linked():
    sim, user, parent_server, parent_rt, dapper = build()
    results = []
    user.call(parent_rt, pick_server=lambda rng: parent_server,
              on_complete=results.append)
    sim.run()
    assert len(results) == 1
    root = results[0].span
    children = [s for s in dapper.spans if s.parent_id == root.span_id]
    assert len(children) == 3
    assert all(c.trace_id == root.trace_id for c in children)
    assert all(c.service == "Leaf" for c in children)


def test_parent_app_contains_child_time():
    sim, user, parent_server, parent_rt, dapper = build()
    results = []
    user.call(parent_rt, pick_server=lambda rng: parent_server,
              on_complete=results.append)
    sim.run()
    root = results[0].span
    children = [s for s in dapper.spans if s.parent_id == root.span_id]
    slowest = max(c.completion_time for c in children)
    # parent app >= own 2ms compute + the parallel child wait
    assert root.breakdown.server_application >= 2e-3 + slowest * 0.9


def test_zero_fanout_behaves_like_leaf():
    sim, user, parent_server, parent_rt, dapper = build()
    parent_rt.child_calls[0] = ChildCall(parent_rt.child_calls[0].runtime,
                                         Constant(0.0))
    results = []
    user.call(parent_rt, pick_server=lambda rng: parent_server,
              on_complete=results.append)
    sim.run()
    root = results[0].span
    assert not [s for s in dapper.spans if s.parent_id == root.span_id]
    assert root.breakdown.server_application == pytest.approx(2e-3, rel=0.05)


def test_unconfigured_children_are_skipped():
    sim, user, parent_server, parent_rt, dapper = build()
    parent_server._child_pickers = {}  # picker removed -> children skipped
    results = []
    user.call(parent_rt, pick_server=lambda rng: parent_server,
              on_complete=results.append)
    sim.run()
    assert len(results) == 1
    root = results[0].span
    assert not [s for s in dapper.spans if s.parent_id == root.span_id]
