"""Shared fixtures: expensive studies are built once per session."""

import numpy as np
import pytest

from repro.core.fleetsample import run_fleet_study
from repro.studies import run_cross_cluster_study, run_service_study
from repro.workloads.catalog import CatalogConfig, build_catalog


@pytest.fixture(scope="session")
def small_catalog():
    return build_catalog(CatalogConfig(n_methods=300, seed=42))


@pytest.fixture(scope="session")
def fleet_sample(small_catalog):
    return run_fleet_study(small_catalog, np.random.default_rng(7),
                           samples_per_method=150)


@pytest.fixture(scope="session")
def service_study():
    """A small Tier-B run: three services, one cluster, 2 s of load."""
    return run_service_study(
        services=["Bigtable", "SSDCache", "KVStore"],
        n_clusters=1, duration_s=2.0, seed=5,
        scrape_interval_s=0.5, dapper_sampling=1.0,
    )


@pytest.fixture(scope="session")
def multi_cluster_study():
    """Bigtable across three clusters (Figs. 16/22-style queries)."""
    return run_service_study(
        services=["Bigtable"], n_clusters=3, duration_s=3.0, seed=9,
        scrape_interval_s=0.5, dapper_sampling=1.0,
    )


@pytest.fixture(scope="session")
def cross_study():
    """Spanner served from a home cluster, called from 10 clusters."""
    return run_cross_cluster_study(
        service="Spanner", n_client_clusters=10, duration_s=8.0,
        calls_per_cluster_rps=30.0, seed=3,
    )
