"""End-to-end serve-mode dogfood: live server, loadgen, incident loop.

The one test the tentpole hangs off: boot the real server on an
ephemeral port, drive it with the open+closed-loop generator while an
injected latency regression is active, and assert the whole
observability story — the page alert fires with exemplar trace ids,
admission control sheds, the burn drains, the alert resolves, and the
shutdown manifest replays the same timeline against the committed
golden.
"""

import asyncio
import json

import pytest

from repro.obs.manifest import read_manifest, write_manifest
from repro.serve.app import ServeApp, ServeConfig
from repro.serve.http import http_call
from repro.serve.loadgen import LoadGenConfig, run_loadgen
from repro.serve.report import check_timeline

GOLDEN_PATH = "tests/golden/serve_alert_timeline.json"


def load_golden():
    with open(GOLDEN_PATH, encoding="utf-8") as f:
        return json.load(f)


async def _run_incident(cache_dir: str):
    """Serve through an injected regression; return the app + results."""
    app = ServeApp(ServeConfig(
        port=0, seed=7, cache_dir=cache_dir,
        scrape_interval_s=0.2, whatif_duration_s=1.0,
        slowdown_after_s=1.5, slowdown_extra_s=0.15,
        slowdown_duration_s=1.5))
    await app.start()
    try:
        loadgen = await run_loadgen("127.0.0.1", app.port, LoadGenConfig(
            duration_s=5.0, rate=60.0, users=3, seed=7))
        quiet = await app.wait_for_quiet(timeout_s=20.0)
        status, _headers, metrics_body = await http_call(
            "127.0.0.1", app.port, "GET", "/metrics")
    finally:
        await app.stop()
    return app, loadgen, quiet, status, metrics_body.decode()


@pytest.fixture(scope="module")
def incident(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("serve-cache"))
    return asyncio.run(_run_incident(cache_dir))


@pytest.mark.slow
class TestIncidentDogfood:
    def test_server_took_real_traffic(self, incident):
        app, loadgen, _quiet, _status, _metrics = incident
        assert loadgen.sent > 100
        assert loadgen.ok > 0
        assert app.requests_total >= loadgen.sent
        # The regression pushed cache-hot requests past the 50ms SLO.
        assert app.endpoint_p99_s().get("study", 0.0) > 0.05

    def test_page_fires_with_exemplar_traces(self, incident):
        app, _loadgen, _quiet, _status, _metrics = incident
        firing = [e for e in app.alerts.events
                  if e.slo == "serve-latency" and e.severity == "page"
                  and e.state == "firing"]
        assert firing, "the injected regression must page"
        exemplars = [tid for e in firing for _v, tid in e.exemplars]
        assert exemplars, "firing page must carry exemplar trace ids"
        # Exemplars are real, replayable Dapper traces with span trees.
        traces = app.dapper.traces()
        sampled = [tid for tid in exemplars if tid in traces]
        assert sampled, "at least one exemplar must be a sampled trace"
        assert any(len(traces[tid]) > 1 for tid in sampled)

    def test_load_was_shed_and_recovered(self, incident):
        app, loadgen, quiet, _status, _metrics = incident
        assert app.admission.shed_total > 0
        assert loadgen.shed > 0  # clients actually saw 503s
        assert quiet, "alerts must resolve and admission recover"
        assert not app.admission.shedding

    def test_timeline_matches_committed_golden(self, incident):
        app, _loadgen, _quiet, _status, _metrics = incident
        problems = check_timeline(app.alert_timeline(), load_golden())
        assert problems == []

    def test_manifest_round_trip_replays_timeline(self, incident, tmp_path):
        app, _loadgen, _quiet, _status, _metrics = incident
        path = str(tmp_path / "incident_manifest.json")
        write_manifest(app.build_manifest(run_id="serve-e2e"), path)
        manifest = read_manifest(path)  # digest-validated
        assert manifest.counts["shed_total"] == app.admission.shed_total
        assert manifest.counts["requests_total"] == app.requests_total
        # The persisted alert timeline passes the same golden the live
        # one did: the incident is replayable from the manifest alone.
        assert check_timeline(manifest.alerts, load_golden()) == []

    def test_metrics_scrape_shows_the_incident(self, incident):
        _app, _loadgen, _quiet, status, metrics = incident
        assert status == 200
        assert "serve_requests_total" in metrics
        assert "serve_shed_total" in metrics
        assert 'serve_request_latency_s{endpoint="study"' in metrics

    def test_obs_self_overhead_bounded(self, incident):
        app, _loadgen, _quiet, _status, _metrics = incident
        assert app.obs_overhead_fraction() < 0.05


@pytest.mark.slow
class TestQuietRun:
    def test_no_regression_means_no_alerts_no_shedding(self, tmp_path):
        async def go():
            app = ServeApp(ServeConfig(
                port=0, seed=7, cache_dir=str(tmp_path / "cache"),
                scrape_interval_s=0.2, whatif_duration_s=1.0))
            await app.start()
            try:
                loadgen = await run_loadgen(
                    "127.0.0.1", app.port,
                    LoadGenConfig(duration_s=2.0, rate=40.0, seed=7))
            finally:
                await app.stop()
            return app, loadgen

        app, loadgen = asyncio.run(go())
        assert loadgen.ok > 0
        assert loadgen.errors == 0
        assert app.alerts.events == []
        assert app.admission.events == []
        assert app.admission.shed_total == 0
