"""Tests for alert-driven admission control (load shedding)."""

import numpy as np

from repro.obs.alerting import AlertManager, SloSpec
from repro.obs.monarch import Monarch
from repro.obs.sketch import LatencySketch
from repro.serve.admission import ADMISSION_SEVERITY, AdmissionController
from repro.sim.engine import Simulator

METRIC = "serve/request_latency_s"


def make_sketch(value: float, n: int = 100) -> LatencySketch:
    sketch = LatencySketch()
    sketch.observe_many(np.full(n, value))
    return sketch


def make_spec(**overrides) -> SloSpec:
    kwargs = dict(name="serve-latency", threshold_s=0.01, window_s=720.0,
                  target=0.99, metric=METRIC)
    kwargs.update(overrides)
    return SloSpec(**kwargs)


def incident_rig(monarch, specs=None, **admission_kwargs):
    """Simulator + alert manager + admission controller, serve-ordered.

    The controller is constructed *after* the manager (as ServeApp does),
    so the engine's FIFO tie-break evaluates rules before the admission
    refresh reads them at coincident times.
    """
    sim = Simulator()
    manager = AlertManager(sim, monarch, specs or [make_spec()],
                           interval_s=1.0)
    admission = AdmissionController(sim, manager, monarch,
                                    **admission_kwargs)
    return sim, manager, admission


def write_incident(monarch, bad_times=(1.5, 2.5, 3.5)):
    """Good traffic at 0.5s, then an outright breach (all requests bad)."""
    monarch.write_sketch(METRIC, {}, 0.5, make_sketch(0.001))
    for t in bad_times:
        monarch.write_sketch(METRIC, {}, t, make_sketch(0.1))


class TestAdmissionController:
    def test_sheds_while_page_fires_and_recovers(self):
        monarch = Monarch()
        write_incident(monarch)
        sim, manager, admission = incident_rig(monarch)
        # Page goes pending at 2, fires at 3, resolves at 5 (the canned
        # scenario from the alerting tests); admission tracks it with no
        # extra lag because refresh runs after evaluation each interval.
        shed_at_3, admit_at_2 = [], []
        sim.at(2.1, lambda: admit_at_2.append(admission.should_admit()))
        sim.at(3.1, lambda: shed_at_3.append(admission.should_admit()))
        sim.run_until(5.2)
        assert admit_at_2 == [True]   # pending alone does not gate
        assert shed_at_3 == [False]   # firing page sheds
        assert not admission.shedding  # recovered by the end
        assert admission.transitions == 2

    def test_transition_events_are_manifest_ready(self):
        monarch = Monarch()
        write_incident(monarch)
        sim, _manager, admission = incident_rig(monarch)
        sim.run_until(5.2)
        states = [(e.t, e.state) for e in admission.events]
        assert states == [(3.0, "shedding"), (5.0, "recovered")]
        shedding = admission.events[0]
        assert shedding.slo == "serve-latency"
        assert shedding.severity == ADMISSION_SEVERITY
        # Burns are copied from the gating SLO's Monarch burn series.
        assert shedding.burn_long >= 14.4
        # The recovered event still names the SLO it recovered from.
        assert admission.events[1].slo == "serve-latency"

    def test_shedding_gauge_series_written(self):
        monarch = Monarch()
        write_incident(monarch)
        sim, _manager, admission = incident_rig(monarch)
        sim.run_until(5.2)
        _times, values = monarch.read("serve/shedding", {})
        assert list(values) == [0.0, 0.0, 1.0, 1.0, 0.0]

    def test_ticket_burn_does_not_gate_page_severity(self):
        # 10% bad -> burn 10: above the ticket factor (6) but below the
        # page factor (14.4). Only the ticket fires; a page-gated
        # controller keeps admitting.
        monarch = Monarch()
        monarch.write_sketch(METRIC, {}, 0.5, make_sketch(0.001))
        for t in (1.5, 2.5, 3.5):
            sketch = make_sketch(0.001, n=90)
            sketch.observe_many(np.full(10, 0.1))
            monarch.write_sketch(METRIC, {}, t, sketch)
        sim, manager, admission = incident_rig(monarch)
        sim.run_until(5.2)
        assert any(e.severity == "ticket" and e.state == "firing"
                   for e in manager.events)
        assert not any(e.severity == "page" for e in manager.events)
        assert admission.events == []
        assert admission.transitions == 0

    def test_slo_names_filter(self):
        # An unrelated SLO fires its page; a controller gated on
        # serve-latency only must not shed for it.
        monarch = Monarch()
        write_incident(monarch)
        other = make_spec(name="other-slo")
        quiet = make_spec(name="serve-latency",
                          metric="serve/other_latency_s")
        sim, _manager, admission = incident_rig(
            monarch, specs=[other, quiet], slo_names=["serve-latency"])
        sim.run_until(5.2)
        assert admission.events == []
        assert admission.shedding is False

    def test_count_shed_accumulates(self):
        sim = Simulator()
        manager = AlertManager(sim, Monarch(), [make_spec()],
                               interval_s=1.0)
        admission = AdmissionController(sim, manager)
        for _ in range(3):
            admission.count_shed()
        assert admission.shed_total == 3

    def test_stop_halts_refresh(self):
        monarch = Monarch()
        write_incident(monarch)
        sim, _manager, admission = incident_rig(monarch)
        sim.at(2.5, admission.stop)
        sim.run_until(5.2)
        # Stopped before the page fired: no transition ever recorded.
        assert admission.events == []
        assert admission.should_admit()

    def test_retry_after_passthrough(self):
        sim = Simulator()
        manager = AlertManager(sim, Monarch(), [make_spec()],
                               interval_s=1.0)
        admission = AdmissionController(sim, manager, retry_after_s=2.5)
        assert admission.retry_after_s == 2.5
