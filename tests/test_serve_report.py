"""Tests for serve-mode rendering and golden timeline checks."""

import json

from repro.obs.alerting import AlertEvent
from repro.obs.metrics import MetricRegistry
from repro.obs.monarch import Monarch
from repro.serve.report import (
    check_timeline,
    normalize_alert_timeline,
    render_prometheus,
    render_serve_dashboard,
)


def event(t, state, slo="serve-latency", severity="page", exemplars=()):
    return AlertEvent(t=t, slo=slo, severity=severity, state=state,
                      burn_long=20.0, burn_short=30.0, exemplars=exemplars)


class TestRenderPrometheus:
    def test_counters_gauges_distributions(self):
        registry = MetricRegistry()
        registry.counter("serve/requests", {"endpoint": "study"}).add(3)
        registry.gauge("serve/up").set(1.0)
        dist = registry.distribution("serve/request_latency_s",
                                     {"endpoint": "study"})
        for value in (0.01, 0.02, 0.03):
            dist.observe(value)
        text = render_prometheus(registry)
        assert 'serve_requests_total{endpoint="study"} 3' in text
        assert "serve_up 1" in text
        assert ('serve_request_latency_s_count{endpoint="study"} 3'
                in text)
        assert 'serve_request_latency_s_sum{endpoint="study"} 0.06' in text
        assert ('serve_request_latency_s{endpoint="study",quantile="0.99"}'
                in text)
        assert text.endswith("\n")

    def test_metric_names_sanitized(self):
        registry = MetricRegistry()
        registry.counter("serve/shed-total.raw").add()
        assert "serve_shed_total_raw_total 1" in render_prometheus(registry)

    def test_empty_registry_renders(self):
        assert render_prometheus(MetricRegistry()) == "\n"

    def test_output_is_sorted_and_stable(self):
        registry = MetricRegistry()
        registry.counter("b/two").add()
        registry.counter("a/one").add()
        text = render_prometheus(registry)
        assert text.index("a_one_total") < text.index("b_two_total")
        assert text == render_prometheus(registry)


class _StubAlerts:
    def __init__(self, firing=()):
        self._firing = list(firing)

    def firing(self):
        return self._firing


class _StubAdmission:
    shedding = False
    shed_total = 0
    transitions = 0


class TestRenderServeDashboard:
    def test_renders_with_no_traffic(self):
        # The satellite-1 regression: an empty Monarch and a zeroed
        # heartbeat must render a dashboard, not raise or warn.
        text = render_serve_dashboard({}, Monarch(), _StubAlerts(),
                                      _StubAdmission(), title="fresh")
        assert "heartbeat: fresh" in text
        assert "serve/p99_latency_s: (no series)" in text
        assert "(none firing)" in text
        assert "admitting" in text

    def test_renders_firing_and_shedding_state(self):
        class Spec:
            name = "serve-latency"

        class Rule:
            severity = "page"

        monarch = Monarch()
        monarch.write("serve/p99_latency_s", {"endpoint": "study"},
                      1.0, 0.12)
        admission = _StubAdmission()
        admission.shedding = True
        admission.shed_total = 4
        text = render_serve_dashboard({"sim_time_s": 1.0}, monarch,
                                      _StubAlerts([(Spec(), Rule())]),
                                      admission)
        assert "FIRING serve-latency [page]" in text
        assert "SHEDDING" in text and "4 shed" in text
        assert "study" in text


class TestNormalizeAlertTimeline:
    def test_groups_by_slo_severity_in_time_order(self):
        events = [event(3.0, "resolved"), event(1.0, "pending"),
                  event(2.0, "firing"),
                  event(2.5, "shedding", severity="admission")]
        normalized = normalize_alert_timeline(events)
        assert normalized == {
            "serve-latency/page": ["pending", "firing", "resolved"],
            "serve-latency/admission": ["shedding"],
        }

    def test_accepts_event_dicts(self):
        docs = [event(1.0, "pending").to_dict(),
                event(2.0, "firing").to_dict()]
        assert normalize_alert_timeline(docs) == {
            "serve-latency/page": ["pending", "firing"]}


class TestCheckTimeline:
    GOLDEN = {
        "required": {"serve-latency/page": ["pending", "firing",
                                            "resolved"]},
        "final": {"serve-latency/page": "resolved"},
        "require_exemplars": ["serve-latency/page"],
    }

    def good_events(self):
        return [event(1.0, "pending"),
                event(2.0, "firing", exemplars=((0.1, 42),)),
                event(3.0, "resolved")]

    def test_matching_timeline_has_no_problems(self):
        assert check_timeline(self.good_events(), self.GOLDEN) == []

    def test_flapping_alert_still_matches_subsequence(self):
        events = self.good_events() + [
            event(4.0, "pending"),
            event(5.0, "firing", exemplars=((0.2, 43),)),
            event(6.0, "resolved")]
        assert check_timeline(events, self.GOLDEN) == []

    def test_trailing_pending_does_not_break_final(self):
        # A breach that subsided before escalating emits no resolution
        # event; the final check must ignore that trailing edge.
        events = self.good_events() + [event(4.0, "pending")]
        assert check_timeline(events, self.GOLDEN) == []

    def test_missing_transition_reported(self):
        events = [event(1.0, "pending"), event(3.0, "resolved")]
        problems = check_timeline(events, self.GOLDEN)
        assert any("expected subsequence" in p for p in problems)

    def test_wrong_final_state_reported(self):
        events = [event(1.0, "pending"),
                  event(2.0, "firing", exemplars=((0.1, 42),))]
        problems = check_timeline(events, self.GOLDEN)
        assert any("expected final state 'resolved'" in p
                   for p in problems)

    def test_missing_exemplars_reported(self):
        events = [event(1.0, "pending"), event(2.0, "firing"),
                  event(3.0, "resolved")]
        problems = check_timeline(events, self.GOLDEN)
        assert problems == \
            ["serve-latency/page: no firing event carries exemplars"]

    def test_absent_key_reported(self):
        problems = check_timeline([], self.GOLDEN)
        assert len(problems) == 3  # subsequence, final, exemplars

    def test_committed_golden_is_checkable(self):
        # The repo golden must stay loadable and schema-compatible.
        with open("tests/golden/serve_alert_timeline.json",
                  encoding="utf-8") as f:
            golden = json.load(f)
        assert set(golden) <= {"_comment", "required", "final",
                               "require_exemplars"}
        events = []
        for key, states in golden["required"].items():
            slo, _sep, severity = key.partition("/")
            for i, state in enumerate(states):
                exemplars = ((0.1, 7),) if state == "firing" else ()
                events.append(event(float(i), state, slo=slo,
                                    severity=severity,
                                    exemplars=exemplars))
        assert check_timeline(events, golden) == []
