"""Tests for the alias-method categorical sampler.

The sampler backs every child draw in the vectorized call-tree generator,
so these tests pin down the three properties the generator relies on:
the table encodes the weights *exactly*, samples follow them (chi-squared
goodness of fit), and a fixed seed reproduces the same stream in a fresh
process (the parallel runner's determinism rests on this).
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.sim.distributions import AliasSampler


def _chi2_critical(df: int, z: float = 3.0902) -> float:
    """Wilson-Hilferty upper chi-squared quantile (z=3.09 -> p=0.999)."""
    return df * (1 - 2 / (9 * df) + z * np.sqrt(2 / (9 * df))) ** 3


class TestConstruction:
    def test_weights_are_normalized_exactly(self):
        s = AliasSampler([2.0, 6.0, 2.0])
        assert np.allclose(s.weights, [0.2, 0.6, 0.2])

    def test_table_encodes_weights_exactly(self):
        # Summing each outcome's mass over the (prob, alias) table must
        # reconstruct the normalized weights to float precision — the
        # alias method is exact, not approximate.
        w = np.array([0.5, 0.2, 0.15, 0.1, 0.05])
        s = AliasSampler(w)
        mass = np.zeros(s.n)
        for i in range(s.n):
            mass[i] += s.prob[i] / s.n
            mass[s.alias[i]] += (1.0 - s.prob[i]) / s.n
        assert np.allclose(mass, w, atol=1e-12)

    def test_single_outcome(self):
        s = AliasSampler([3.0])
        rng = np.random.default_rng(0)
        assert np.all(s.sample(rng, 100) == 0)

    def test_rejects_bad_weights(self):
        for bad in ([], [0.0, 0.0], [1.0, -0.5], [np.nan, 1.0],
                    [[0.3, 0.7]]):
            with pytest.raises(ValueError):
                AliasSampler(bad)

    def test_zero_weight_outcome_never_drawn(self):
        s = AliasSampler([0.0, 1.0, 0.0, 1.0])
        rng = np.random.default_rng(1)
        draws = s.sample(rng, 5000)
        assert set(np.unique(draws)) <= {1, 3}


class TestGoodnessOfFit:
    @pytest.mark.parametrize("weights", [
        [1.0, 1.0, 1.0, 1.0],
        [0.7, 0.2, 0.05, 0.05],
        list(1.0 / np.arange(1, 40)),          # zipf-ish, 39 outcomes
    ])
    def test_chi_squared(self, weights):
        s = AliasSampler(weights)
        rng = np.random.default_rng(12345)
        n = 200_000
        counts = np.bincount(s.sample(rng, n), minlength=s.n)
        expected = s.weights * n
        stat = float(((counts - expected) ** 2 / expected).sum())
        assert stat < _chi2_critical(s.n - 1)

    def test_matches_rng_choice_distribution(self):
        # Same marginal distribution as the scalar reference path.
        w = np.array([0.45, 0.3, 0.15, 0.1])
        rng = np.random.default_rng(7)
        alias_counts = np.bincount(AliasSampler(w).sample(rng, 100_000),
                                   minlength=4)
        choice_counts = np.bincount(
            np.random.default_rng(8).choice(4, size=100_000, p=w),
            minlength=4)
        assert np.allclose(alias_counts / 1e5, choice_counts / 1e5,
                           atol=0.01)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        w = [0.2, 0.5, 0.3]
        a = AliasSampler(w).sample(np.random.default_rng(42), 1000)
        b = AliasSampler(w).sample(np.random.default_rng(42), 1000)
        assert np.array_equal(a, b)

    def test_sample_one_matches_batched(self):
        s = AliasSampler([0.2, 0.5, 0.3])
        batched = s.sample(np.random.default_rng(9), 50)
        rng = np.random.default_rng(9)
        # sample_one(rng) is one sample(rng, 1) draw; the *streams*
        # differ from one batched call (different RNG call pattern), but
        # each value is a valid outcome and the call is deterministic.
        singles = np.array([s.sample_one(rng) for _ in range(50)])
        assert set(np.unique(singles)) <= {0, 1, 2}
        assert batched.shape == singles.shape

    def test_deterministic_across_processes(self):
        script = (
            "import numpy as np\n"
            "from repro.sim.distributions import AliasSampler\n"
            "s = AliasSampler([0.1, 0.4, 0.25, 0.25])\n"
            "print(','.join(map(str, s.sample(np.random.default_rng(77), 64))))\n"
        )
        runs = [
            subprocess.run([sys.executable, "-c", script],
                           capture_output=True, text=True, check=True,
                           env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
                           cwd=".").stdout
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        here = AliasSampler([0.1, 0.4, 0.25, 0.25]).sample(
            np.random.default_rng(77), 64)
        assert runs[0].strip() == ",".join(map(str, here))
