"""Tests for the client-stub generator."""

import pytest

from repro.rpc.errors import RpcError, StatusCode
from repro.rpc.framework import Channel, LoopbackTransport, RpcServer, ServiceDef
from repro.rpc.stubgen import StubError, generate_stub_source, make_stub
from repro.rpc.wire import FieldSpec, FieldType, MessageSchema

REQ = MessageSchema("Req", [FieldSpec(1, "x", FieldType.INT64)])
RESP = MessageSchema("Resp", [FieldSpec(1, "y", FieldType.INT64)])


def build_service():
    svc = ServiceDef("Math")

    @svc.method("Double", REQ, RESP)
    def double(request):
        return {"y": 2 * request.get("x", 0)}

    @svc.method("AddOne", REQ, RESP)
    def add_one(request):
        return {"y": request.get("x", 0) + 1}

    return svc


def build_channel(svc):
    server = RpcServer()
    server.register(svc)
    return Channel(LoopbackTransport(server))


class TestRuntimeStub:
    def test_methods_snake_cased(self):
        svc = build_service()
        stub = make_stub(build_channel(svc), svc)
        assert hasattr(stub, "double")
        assert hasattr(stub, "add_one")

    def test_calls_roundtrip(self):
        svc = build_service()
        stub = make_stub(build_channel(svc), svc)
        assert stub.double({"x": 21}) == {"y": 42}
        assert stub.add_one({"x": 41}) == {"y": 42}

    def test_deadline_passthrough(self):
        svc = build_service()
        stub = make_stub(build_channel(svc), svc)
        assert stub.double({"x": 1}, deadline_s=5.0) == {"y": 2}

    def test_errors_propagate(self):
        svc = ServiceDef("Boom")

        @svc.method("Fail", REQ, RESP)
        def fail(request):
            raise RpcError(StatusCode.NOT_FOUND, "nope")

        stub = make_stub(build_channel(svc), svc)
        with pytest.raises(RpcError):
            stub.fail({"x": 1})

    def test_empty_service_rejected(self):
        with pytest.raises(StubError):
            make_stub(build_channel(build_service()), ServiceDef("Empty"))

    def test_docstrings_mention_schemas(self):
        svc = build_service()
        stub = make_stub(build_channel(svc), svc)
        assert "Req" in stub.double.__doc__


class TestSourceGeneration:
    def test_source_is_deterministic(self):
        svc = build_service()
        assert generate_stub_source(svc) == generate_stub_source(svc)

    def test_source_executes_and_calls(self):
        svc = build_service()
        source = generate_stub_source(svc)
        namespace = {}
        exec(compile(source, "<generated>", "exec"), namespace)
        stub_cls = namespace["MathStub"]
        channel = build_channel(svc)
        schemas = {name: (m.request_schema, m.response_schema)
                   for name, m in svc.methods.items()}
        stub = stub_cls(channel, schemas)
        assert stub.double({"x": 5}) == {"y": 10}
        assert stub.add_one({"x": 5}) == {"y": 6}

    def test_methods_sorted_in_source(self):
        source = generate_stub_source(build_service())
        assert source.index("def add_one") < source.index("def double")

    def test_invalid_service_name_rejected(self):
        with pytest.raises(StubError):
            generate_stub_source(ServiceDef("not-an-identifier"))
