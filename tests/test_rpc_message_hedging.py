"""Tests for message envelopes and the hedging policy."""

import pytest

from repro.rpc.errors import StatusCode
from repro.rpc.hedging import NO_HEDGING, HedgingPolicy
from repro.rpc.message import Request, Response, RpcMetadata, new_rpc_id


class TestMetadata:
    def test_full_method(self):
        md = RpcMetadata(service="S", method="M", trace_id=1, span_id=2)
        assert md.full_method == "S/M"
        assert md.parent_id is None
        assert md.hedge_attempt == 0

    def test_rpc_ids_unique(self):
        ids = {new_rpc_id() for _ in range(100)}
        assert len(ids) == 100


class TestEnvelopes:
    def md(self):
        return RpcMetadata(service="S", method="M", trace_id=1, span_id=2)

    def test_payload_sets_size(self):
        req = Request(metadata=self.md(), size_bytes=0, payload=b"abcd")
        assert req.size_bytes == 4

    def test_size_only_request(self):
        req = Request(metadata=self.md(), size_bytes=1024)
        assert req.size_bytes == 1024
        assert req.payload is None

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Request(metadata=self.md(), size_bytes=-1)

    def test_response_ok_predicate(self):
        ok = Response(metadata=self.md())
        assert ok.ok
        failed = Response(metadata=self.md(), status=StatusCode.NOT_FOUND)
        assert not failed.ok


class TestHedgingPolicy:
    def test_should_hedge_bounds(self):
        p = HedgingPolicy(enabled=True, delay_s=1e-3, max_attempts=2)
        assert p.should_hedge(1)
        assert not p.should_hedge(2)

    def test_disabled_never_hedges(self):
        assert not NO_HEDGING.should_hedge(1)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            HedgingPolicy(enabled=True, delay_s=-1.0)
        with pytest.raises(ValueError):
            HedgingPolicy(enabled=True, delay_s=1.0, max_attempts=1)

    def test_from_percentile_estimate(self):
        p = HedgingPolicy.from_percentile_estimate(25e-3)
        assert p.enabled and p.delay_s == 25e-3 and p.max_attempts == 2
