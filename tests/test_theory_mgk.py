"""Tests for the closed-form queueing models (repro.theory.mgk)."""

import math

import numpy as np
import pytest

from repro.obs.sketch import LatencySketch
from repro.theory.mgk import (
    REGIME_TOLERANCE,
    LognormalFit,
    MgkModel,
    cs2_from_percentiles,
    erlang_b,
    erlang_c,
    kingman_mean_wait,
    mm1_mean_wait,
    mm1_wait_quantile,
    mmk_mean_wait,
    pk_mean_wait,
    regime_for,
)


# ----------------------------------------------------------------------
# Lognormal percentile fitting
# ----------------------------------------------------------------------
def test_lognormal_fit_round_trips_exact_percentiles():
    truth = LognormalFit(mu=-7.0, sigma=1.1)
    pts = {p: truth.percentile(p) for p in (50.0, 95.0, 99.0)}
    fit = LognormalFit.from_percentiles(pts)
    assert fit.mu == pytest.approx(truth.mu, rel=1e-9)
    assert fit.sigma == pytest.approx(truth.sigma, rel=1e-9)
    assert fit.max_rel_err(pts) < 1e-9


def test_lognormal_fit_moments_match_numpy():
    rng = np.random.default_rng(3)
    mu, sigma = -6.5, 0.8
    samples = rng.lognormal(mu, sigma, size=400_000)
    fit = LognormalFit(mu=mu, sigma=sigma)
    assert fit.mean == pytest.approx(samples.mean(), rel=0.01)
    assert fit.median == pytest.approx(np.median(samples), rel=0.01)
    assert math.sqrt(fit.variance) == pytest.approx(samples.std(), rel=0.02)


def test_cs2_from_percentiles_heavy_tail_is_not_sigma_squared():
    # The classic pitfall: sigma = 1.4 gives Cs^2 = e^{sigma^2} - 1 ~ 6.1,
    # NOT sigma^2 ~ 1.96. The helper must return the former.
    truth = LognormalFit(mu=-7.0, sigma=1.4)
    cs2 = cs2_from_percentiles(truth.percentile(50.0),
                               p95=truth.percentile(95.0),
                               p99=truth.percentile(99.0))
    assert cs2 == pytest.approx(math.exp(1.4 ** 2) - 1.0, rel=1e-6)
    assert cs2 > 6.0


def test_fit_from_sketch_close_to_exact_fit():
    rng = np.random.default_rng(11)
    mu, sigma = -6.0, 0.9
    sketch = LatencySketch()
    sketch.observe_many(rng.lognormal(mu, sigma, size=200_000))
    fit = LognormalFit.from_sketch(sketch)
    assert fit.mu == pytest.approx(mu, abs=0.05)
    assert fit.sigma == pytest.approx(sigma, abs=0.05)


# ----------------------------------------------------------------------
# Erlang and waits
# ----------------------------------------------------------------------
def test_erlang_b_matches_direct_formula():
    # B(k, a) = (a^k / k!) / sum_j a^j / j!
    k, a = 4, 2.5
    terms = [a ** j / math.factorial(j) for j in range(k + 1)]
    assert erlang_b(k, a) == pytest.approx(terms[-1] / sum(terms), rel=1e-12)


def test_erlang_c_single_server_is_rho():
    # With k=1, the probability of waiting is the utilization itself.
    assert erlang_c(1, 0.7) == pytest.approx(0.7, rel=1e-12)


def test_erlang_c_rejects_unstable_load():
    with pytest.raises(ValueError):
        erlang_c(2, 2.0)


def test_mm1_wait_quantile_brackets_and_atom():
    lam, mu = 700.0, 1000.0
    # Below the 1 - rho atom the wait is exactly zero.
    assert mm1_wait_quantile(0.2, lam, mu) == 0.0
    # P(W > t) = rho * exp(-(mu - lam) t) inverts the quantile.
    t = mm1_wait_quantile(0.99, lam, mu)
    assert 0.7 * math.exp(-(mu - lam) * t) == pytest.approx(0.01, rel=1e-9)


def test_pk_reduces_to_mm1_at_cs2_one():
    lam, mean_s = 800.0, 1e-3
    assert pk_mean_wait(lam, mean_s, 1.0) == pytest.approx(
        mm1_mean_wait(lam, 1.0 / mean_s), rel=1e-12)


def test_kingman_reduces_to_exact_mm1():
    # Property: at Cs^2 = Ca^2 = 1 and k = 1, the approximation IS exact.
    lam, mean_s = 850.0, 1e-3
    assert kingman_mean_wait(lam, mean_s, 1.0, servers=1, ca2=1.0) == (
        pytest.approx(mm1_mean_wait(lam, 1.0 / mean_s), rel=1e-12))


def test_kingman_reduces_to_mmk():
    lam, mean_s, k = 3000.0, 1e-3, 4
    assert kingman_mean_wait(lam, mean_s, 1.0, servers=k) == pytest.approx(
        mmk_mean_wait(lam, mean_s, k), rel=1e-12)


def test_kingman_scales_linearly_in_variability():
    lam, mean_s = 700.0, 1e-3
    base = kingman_mean_wait(lam, mean_s, 1.0)
    assert kingman_mean_wait(lam, mean_s, 3.0) == pytest.approx(
        base * (1.0 + 3.0) / 2.0, rel=1e-12)


# ----------------------------------------------------------------------
# The model facade
# ----------------------------------------------------------------------
def test_regime_bands_cover_the_grid():
    assert regime_for(1.0, 1) == "exact"
    assert regime_for(1.5, 4) == "kingman-moderate"
    assert regime_for(6.0, 4) == "kingman-heavy"
    assert set(REGIME_TOLERANCE) == {"exact", "kingman-moderate",
                                     "kingman-heavy"}
    assert (REGIME_TOLERANCE["exact"] < REGIME_TOLERANCE["kingman-moderate"]
            < REGIME_TOLERANCE["kingman-heavy"])


def test_model_rejects_unstable_and_bad_params():
    with pytest.raises(ValueError):
        MgkModel(arrival_rate=2000.0, mean_service_s=1e-3, servers=1)
    with pytest.raises(ValueError):
        MgkModel(arrival_rate=100.0, mean_service_s=-1e-3)


def test_model_from_percentiles_matches_manual_fit():
    truth = LognormalFit(mu=-7.0, sigma=1.0)
    pts = {p: truth.percentile(p) for p in (50.0, 95.0, 99.0)}
    model = MgkModel.from_percentiles(200.0, pts, servers=2)
    assert model.mean_service_s == pytest.approx(truth.mean, rel=1e-9)
    assert model.cs2 == pytest.approx(truth.cs2, rel=1e-9)
    assert model.utilization == pytest.approx(
        200.0 * truth.mean / 2.0, rel=1e-9)


def test_model_wait_quantile_is_consistent_with_ccdf():
    model = MgkModel(arrival_rate=700.0, mean_service_s=1e-3, cs2=2.0,
                     servers=2)
    t = model.wait_quantile(0.99)
    assert model.wait_ccdf(t) == pytest.approx(0.01, rel=1e-6)
    # Inside the no-wait atom the quantile is zero.
    assert model.wait_quantile(0.01) == 0.0


def test_model_to_dict_is_json_shaped():
    doc = MgkModel(arrival_rate=500.0, mean_service_s=1e-3,
                   cs2=1.5, servers=2).to_dict()
    assert doc["regime"] == "kingman-moderate"
    assert 0.0 < doc["utilization"] < 1.0
    assert doc["mean_wait_s"] > 0.0
