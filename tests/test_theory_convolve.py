"""Tests for profile distillation, the analytic what-if, and call-tree
propagation (repro.theory.convolve)."""

import numpy as np
import pytest

from repro.core.whatif import what_if_components
from repro.rpc.calltree import FlatTree
from repro.rpc.stack import COMPONENTS, ComponentMatrix
from repro.theory.convolve import (
    WHATIF_RESCUED_TOLERANCE_PTS,
    AnalyticWhatIf,
    ComponentProfile,
    analytic_queueing,
    propagate_tree,
    what_if_components_analytic,
)
from repro.theory.ddist import DDist
from repro.theory.mgk import MgkModel


def synthetic_matrix(n=30_000, seed=2):
    """Independent lognormal components with one dominant tail driver
    and two zero-inflated queues — the shape the DES emits."""
    rng = np.random.default_rng(seed)
    cols = {}
    for comp in COMPONENTS:
        if comp == "server_application":
            col = rng.lognormal(np.log(900e-6), 0.9, n)
        elif comp.endswith("_queue"):
            col = np.where(rng.random(n) < 0.7, 0.0,
                           rng.lognormal(np.log(40e-6), 0.7, n))
        else:
            col = rng.lognormal(np.log(60e-6), 0.5, n)
        cols[comp] = col
    return ComponentMatrix(np.column_stack([cols[c] for c in COMPONENTS]))


def test_profile_round_trips_through_dict():
    profile = ComponentProfile.from_matrix(synthetic_matrix(2000),
                                           service="Toy")
    back = ComponentProfile.from_dict(profile.to_dict())
    assert back.service == "Toy"
    assert back.n_samples == profile.n_samples
    assert back.percentiles == profile.percentiles
    assert back.zero_fraction == profile.zero_fraction


def test_profile_zero_fractions_match_columns():
    matrix = synthetic_matrix(20_000)
    profile = ComponentProfile.from_matrix(matrix)
    for comp in COMPONENTS:
        col = matrix.column(comp)
        assert profile.zero_fraction[comp] == pytest.approx(
            (col == 0.0).mean(), abs=1e-12)


def test_profile_rejects_empty_matrix():
    with pytest.raises(ValueError):
        ComponentProfile.from_matrix(
            ComponentMatrix(np.zeros((0, len(COMPONENTS)))))


def test_analytic_whatif_matches_empirical_counterfactual():
    # The tentpole cross-check in miniature: the closed form over the
    # fitted profile must agree with the exact empirical counterfactual
    # on the same matrix — same dominant component, rescued mass within
    # the stated tolerance band.
    matrix = synthetic_matrix()
    empirical = what_if_components(matrix, tail_percentile=95.0)
    analytic = what_if_components_analytic(matrix, tail_percentile=95.0)
    assert analytic.dominant() == empirical.dominant()
    for comp in COMPONENTS:
        assert abs(analytic.percent_rescued[comp]
                   - empirical.percent_rescued[comp]) <= (
            WHATIF_RESCUED_TOLERANCE_PTS)


def test_analytic_whatif_dominant_component_rescues_most():
    result = what_if_components_analytic(synthetic_matrix())
    assert result.dominant() == "server_application"
    assert result.percent_rescued["server_application"] > 50.0
    assert result.n_tail > 0


def test_engine_sweep_reuses_distributions():
    profile = ComponentProfile.from_matrix(synthetic_matrix(10_000))
    engine = AnalyticWhatIf(profile)
    results = engine.sweep((90.0, 99.0))
    assert [r.tail_percentile for r in results] == [90.0, 99.0]
    # Deeper tails have fewer tail samples by construction.
    assert results[1].n_tail < results[0].n_tail


def test_engine_rejects_degenerate_percentile():
    engine = AnalyticWhatIf(
        ComponentProfile.from_matrix(synthetic_matrix(5_000)))
    with pytest.raises(ValueError):
        engine.result(0.0)
    with pytest.raises(ValueError):
        engine.result(100.0)


# ----------------------------------------------------------------------
# Call-tree propagation
# ----------------------------------------------------------------------
def three_level_tree():
    # root(0) -> {1, 2}; 1 -> {3, 4}  (BFS order, depths sorted)
    return FlatTree(
        method_ids=np.arange(5, dtype=np.int64),
        parents=np.array([-1, 0, 0, 1, 1], dtype=np.int64),
        depths=np.array([0, 1, 1, 2, 2], dtype=np.int64),
    )


def test_propagate_tree_serial_matches_monte_carlo():
    tree = three_level_tree()
    h = 5e-5
    dists = [DDist.from_lognormal(-7.0 + 0.1 * i, 0.5, h)
             for i in range(tree.size)]
    analytic = propagate_tree(tree, dists, mode="serial")

    rng = np.random.default_rng(17)
    draws = [rng.lognormal(-7.0 + 0.1 * i, 0.5, 100_000)
             for i in range(tree.size)]
    # Serial: every node's own time sums along the whole tree.
    total = sum(draws)
    assert analytic.mean() == pytest.approx(total.mean(), rel=0.02)
    assert analytic.quantile(0.99) == pytest.approx(
        np.quantile(total, 0.99), rel=0.03)


def test_propagate_tree_parallel_matches_monte_carlo():
    tree = three_level_tree()
    h = 5e-5
    dists = [DDist.from_lognormal(-7.0, 0.6, h) for _ in range(tree.size)]
    analytic = propagate_tree(tree, dists, mode="parallel")

    rng = np.random.default_rng(19)
    d = [rng.lognormal(-7.0, 0.6, 100_000) for _ in range(tree.size)]
    node1 = d[1] + np.maximum(d[3], d[4])
    total = d[0] + np.maximum(node1, d[2])
    assert analytic.mean() == pytest.approx(total.mean(), rel=0.02)
    assert analytic.quantile(0.95) == pytest.approx(
        np.quantile(total, 0.95), rel=0.03)


def test_propagate_tree_parallel_never_below_serial_single_child():
    # With one child the two modes coincide.
    tree = FlatTree(method_ids=np.arange(2, dtype=np.int64),
                    parents=np.array([-1, 0], dtype=np.int64),
                    depths=np.array([0, 1], dtype=np.int64))
    h = 5e-5
    dists = [DDist.from_lognormal(-7.0, 0.5, h) for _ in range(2)]
    serial = propagate_tree(tree, dists, mode="serial")
    parallel = propagate_tree(tree, dists, mode="parallel")
    assert serial.mean() == pytest.approx(parallel.mean(), abs=h)


def test_propagate_tree_rejects_unknown_mode():
    with pytest.raises(ValueError):
        propagate_tree(three_level_tree(), [], mode="racy")


# ----------------------------------------------------------------------
# Analytic fig13
# ----------------------------------------------------------------------
def test_analytic_queueing_produces_fig13_shape():
    rng = np.random.default_rng(23)
    models = [
        MgkModel(arrival_rate=float(rho) * 1000.0, mean_service_s=1e-3,
                 cs2=float(cs2))
        for rho, cs2 in zip(rng.uniform(0.05, 0.9, 40),
                            rng.uniform(0.5, 4.0, 40))
    ]
    r = analytic_queueing(models)
    assert 0.0 <= r.frac_median_under_360us <= 1.0
    assert 0.0 <= r.frac_p99_under_102ms <= 1.0
    assert r.worst10pct_p99_s >= r.worst10pct_median_s


def test_analytic_queueing_rejects_empty():
    with pytest.raises(ValueError):
        analytic_queueing([])
