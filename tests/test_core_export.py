"""Tests for the figure-data CSV export."""

import csv
import os

import pytest

from repro.core.export import FIGURE_FILES, export_fleet_figures


@pytest.fixture(scope="module")
def exported(fleet_sample, tmp_path_factory):
    outdir = str(tmp_path_factory.mktemp("figures"))
    paths = export_fleet_figures(fleet_sample, outdir)
    return outdir, paths


def read_csv(path):
    with open(path) as f:
        rows = list(csv.reader(f))
    return rows[0], rows[1:]


def test_all_figure_files_written(exported):
    outdir, paths = exported
    names = {os.path.basename(p) for p in paths}
    assert names == set(FIGURE_FILES)
    for p in paths:
        assert os.path.getsize(p) > 0


def test_heatmap_sorted_by_median(exported, fleet_sample):
    outdir, _ = exported
    header, rows = read_csv(os.path.join(outdir, "fig02_latency_heatmap.csv"))
    assert header[:3] == ["method", "service", "popularity"]
    p50_idx = header.index("p50")
    medians = [float(r[p50_idx]) for r in rows]
    assert medians == sorted(medians)
    assert len(rows) == len(fleet_sample.methods)


def test_percentiles_monotone_within_rows(exported):
    outdir, _ = exported
    header, rows = read_csv(os.path.join(outdir, "fig02_latency_heatmap.csv"))
    p_cols = [i for i, h in enumerate(header) if h.startswith("p")
              and h != "popularity"]
    for r in rows[:100]:
        vals = [float(r[i]) for i in p_cols]
        assert vals == sorted(vals)


def test_popularity_sums_to_one(exported):
    outdir, _ = exported
    header, rows = read_csv(os.path.join(outdir, "fig03_popularity.csv"))
    total = sum(float(r[header.index("popularity")]) for r in rows)
    assert total == pytest.approx(1.0, rel=1e-6)


def test_service_shares_columns(exported):
    outdir, _ = exported
    header, rows = read_csv(os.path.join(outdir, "fig08_service_shares.csv"))
    assert header == ["service", "calls", "bytes", "cycles"]
    calls = [float(r[1]) for r in rows]
    assert sum(calls) == pytest.approx(1.0, rel=1e-6)
    assert calls == sorted(calls, reverse=True)


def test_fleet_tax_has_both_views(exported):
    outdir, _ = exported
    header, rows = read_csv(os.path.join(outdir, "fig10_fleet_tax.csv"))
    views = {r[0] for r in rows}
    assert views == {"average", "p95_tail"}


def test_errors_shares_normalized(exported):
    outdir, _ = exported
    header, rows = read_csv(os.path.join(outdir, "fig23_errors.csv"))
    assert sum(float(r[1]) for r in rows) == pytest.approx(1.0, rel=1e-6)
