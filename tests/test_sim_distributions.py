"""Tests for the distribution library, including property-based checks."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.distributions import (
    Constant,
    Empirical,
    Exponential,
    LogNormal,
    Mixture,
    Pareto,
    Shifted,
    Truncated,
    Uniform,
    Weibull,
    lognormal_from_median_p99,
    zipf_weights,
)

RNG = np.random.default_rng(1234)


def test_constant_samples_and_moments():
    d = Constant(3.5)
    assert np.all(d.sample(RNG, 10) == 3.5)
    assert d.mean() == 3.5
    assert d.quantile(0.99) == 3.5


def test_uniform_bounds_and_mean():
    d = Uniform(1.0, 3.0)
    x = d.sample(RNG, 10_000)
    assert x.min() >= 1.0 and x.max() <= 3.0
    assert d.mean() == pytest.approx(2.0)
    assert abs(x.mean() - 2.0) < 0.05
    assert d.quantile(0.5) == pytest.approx(2.0)


def test_uniform_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        Uniform(3.0, 1.0)


def test_exponential_mean_and_quantile():
    d = Exponential(2.0)
    x = d.sample(RNG, 50_000)
    assert abs(x.mean() - 2.0) < 0.05
    assert d.quantile(0.5) == pytest.approx(2.0 * math.log(2))


def test_exponential_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        Exponential(0.0)


def test_lognormal_median_and_quantiles():
    d = LogNormal.from_median_sigma(10.0, 1.0)
    assert d.median() == pytest.approx(10.0)
    x = d.sample(RNG, 100_000)
    assert abs(np.median(x) - 10.0) / 10.0 < 0.03
    # Analytic quantile vs empirical.
    assert abs(np.percentile(x, 99) - d.quantile(0.99)) / d.quantile(0.99) < 0.08


def test_lognormal_cdf_quantile_inverse():
    d = LogNormal(1.0, 0.7)
    for q in (0.01, 0.25, 0.5, 0.9, 0.99):
        assert d.cdf(d.quantile(q)) == pytest.approx(q, abs=1e-6)


def test_lognormal_from_median_p99_hits_targets():
    d = lognormal_from_median_p99(5e-3, 225e-3)
    assert d.quantile(0.5) == pytest.approx(5e-3)
    assert d.quantile(0.99) == pytest.approx(225e-3, rel=1e-9)


def test_lognormal_from_median_p99_rejects_inverted():
    with pytest.raises(ValueError):
        lognormal_from_median_p99(1.0, 0.5)


def test_pareto_scale_and_tail():
    d = Pareto(2.0, 1.5)
    x = d.sample(RNG, 50_000)
    assert x.min() >= 2.0
    assert d.mean() == pytest.approx(6.0)
    assert d.quantile(0.99) == pytest.approx(2.0 * 100 ** (1 / 1.5))


def test_pareto_infinite_mean_for_alpha_le_1():
    assert math.isinf(Pareto(1.0, 1.0).mean())


def test_weibull_mean_and_quantile():
    d = Weibull(scale=1.0, shape=0.5)
    assert d.mean() == pytest.approx(math.gamma(3.0))
    x = d.sample(RNG, 100_000)
    assert abs(np.median(x) - d.quantile(0.5)) / d.quantile(0.5) < 0.05


def test_mixture_weights_normalized_and_mean():
    d = Mixture([Constant(1.0), Constant(3.0)], [1.0, 3.0])
    assert d.mean() == pytest.approx(2.5)
    x = d.sample(RNG, 20_000)
    assert abs((x == 3.0).mean() - 0.75) < 0.02


def test_mixture_rejects_bad_weights():
    with pytest.raises(ValueError):
        Mixture([Constant(1.0)], [0.0])
    with pytest.raises(ValueError):
        Mixture([Constant(1.0), Constant(2.0)], [1.0])
    with pytest.raises(ValueError):
        Mixture([], [])


def test_truncated_clips_both_sides():
    d = Truncated(LogNormal.from_median_sigma(10.0, 2.0), low=5.0, high=20.0)
    x = d.sample(RNG, 10_000)
    assert x.min() >= 5.0 and x.max() <= 20.0


def test_truncated_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        Truncated(Constant(1.0), low=2.0, high=1.0)


def test_shifted_offsets_everything():
    d = Shifted(Constant(1.0), 0.5)
    assert d.mean() == pytest.approx(1.5)
    assert np.all(d.sample(RNG, 5) == 1.5)
    assert d.quantile(0.5) == pytest.approx(1.5)


def test_empirical_resamples_observed_values():
    d = Empirical([1.0, 2.0, 3.0])
    x = d.sample(RNG, 1000)
    assert set(np.unique(x)) <= {1.0, 2.0, 3.0}
    assert d.mean() == pytest.approx(2.0)
    assert d.quantile(0.5) == pytest.approx(2.0)


def test_empirical_rejects_empty():
    with pytest.raises(ValueError):
        Empirical([])


def test_zipf_weights_normalized_and_decreasing():
    w = zipf_weights(100, 1.1)
    assert w.sum() == pytest.approx(1.0)
    assert np.all(np.diff(w) <= 0)


def test_zipf_weights_uniform_at_zero_exponent():
    w = zipf_weights(10, 0.0)
    assert np.allclose(w, 0.1)


def test_zipf_rejects_bad_args():
    with pytest.raises(ValueError):
        zipf_weights(0)
    with pytest.raises(ValueError):
        zipf_weights(10, -1.0)


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------
@given(median=st.floats(1e-6, 1e3), sigma=st.floats(0.01, 3.0))
@settings(max_examples=60, deadline=None)
def test_lognormal_quantiles_monotone(median, sigma):
    d = LogNormal.from_median_sigma(median, sigma)
    qs = [d.quantile(q) for q in (0.01, 0.1, 0.5, 0.9, 0.99)]
    assert all(a <= b for a, b in zip(qs, qs[1:]))
    assert d.quantile(0.5) == pytest.approx(median, rel=1e-9)


@given(median=st.floats(1e-6, 1.0),
       tail_factor=st.floats(1.0 + 1e-9, 1e4))
@settings(max_examples=60, deadline=None)
def test_lognormal_from_median_p99_roundtrip(median, tail_factor):
    p99 = median * tail_factor
    d = lognormal_from_median_p99(median, p99)
    assert d.quantile(0.99) == pytest.approx(p99, rel=1e-6)


@given(low=st.floats(0.0, 10.0), width=st.floats(0.0, 10.0),
       seed=st.integers(0, 2**31))
@settings(max_examples=40, deadline=None)
def test_truncated_always_within_bounds(low, width, seed):
    rng = np.random.default_rng(seed)
    d = Truncated(LogNormal(0.0, 2.0), low=low, high=low + width)
    x = d.sample(rng, 100)
    assert np.all(x >= low) and np.all(x <= low + width)


@given(n=st.integers(1, 500), s=st.floats(0.0, 3.0))
@settings(max_examples=40, deadline=None)
def test_zipf_weights_properties(n, s):
    w = zipf_weights(n, s)
    assert len(w) == n
    assert w.sum() == pytest.approx(1.0)
    assert np.all(w > 0)
    assert np.all(np.diff(w) <= 1e-15)
