"""Deterministic clocks and their integration with the RPC framework."""

import pytest

from repro.rpc.errors import RpcError, StatusCode
from repro.rpc.framework import Channel, LoopbackTransport, RpcServer, ServiceDef
from repro.rpc.wire import FieldSpec, FieldType, MessageSchema
from repro.sim.clock import ManualClock, SimulatorClock
from repro.sim.engine import Simulator


class TestManualClock:
    def test_starts_at_zero_and_advances(self):
        clock = ManualClock()
        assert clock() == 0.0
        clock.advance(1.5)
        clock.advance(0.25)
        assert clock() == 1.75

    def test_custom_start(self):
        assert ManualClock(start_s=10.0)() == 10.0

    def test_rejects_negative_advance(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-0.1)


class TestSimulatorClock:
    def test_tracks_simulator_time(self):
        sim = Simulator()
        clock = SimulatorClock(sim)
        assert clock() == 0.0
        sim.after(2.5, lambda: None)
        sim.run()
        assert clock() == 2.5


class TestFrameworkDeterminism:
    REQ = MessageSchema("Req", [FieldSpec(1, "x", FieldType.INT64)])
    RESP = MessageSchema("Resp", [FieldSpec(1, "y", FieldType.INT64)])

    def make_channel(self, latency_s=0.0, **channel_kwargs):
        svc = ServiceDef("Svc")

        @svc.method("Double", self.REQ, self.RESP)
        def double(request):
            return {"y": 2 * request.get("x", 0)}

        server = RpcServer()
        server.register(svc)
        transport = LoopbackTransport(server, latency_s=latency_s)
        return Channel(transport, **channel_kwargs)

    def test_transport_latency_advances_shared_clock(self):
        channel = self.make_channel(latency_s=0.05)
        clock = channel.transport.clock
        channel.call("Svc", "Double", {"x": 2}, self.REQ, self.RESP)
        channel.call("Svc", "Double", {"x": 3}, self.REQ, self.RESP)
        assert clock() == pytest.approx(0.10)

    def test_deadline_enforcement_is_wall_clock_free(self):
        # The transport charges 50 ms of *simulated* latency; a 10 ms
        # deadline trips without any sleeping.
        channel = self.make_channel(latency_s=0.05)
        with pytest.raises(RpcError) as err:
            channel.call("Svc", "Double", {"x": 1}, self.REQ, self.RESP,
                         deadline_s=0.01)
        assert err.value.status is StatusCode.DEADLINE_EXCEEDED

    def test_explicit_clock_is_honoured(self):
        channel = self.make_channel(clock=ManualClock(start_s=100.0))
        reply = channel.call("Svc", "Double", {"x": 4}, self.REQ, self.RESP,
                             deadline_s=1.0)
        assert reply == {"y": 8}

    def test_simulator_clock_drives_channel(self):
        sim = Simulator()
        channel = self.make_channel(clock=SimulatorClock(sim))
        reply = channel.call("Svc", "Double", {"x": 5}, self.REQ, self.RESP,
                             deadline_s=0.5)
        assert reply == {"y": 10}
