"""Tests for the serve-mode application's request path and manifest."""

import asyncio
import json

import pytest

from repro.obs.manifest import (
    ManifestError,
    read_manifest,
    write_manifest,
)
from repro.serve.app import ServeApp, ServeConfig, default_serve_slos
from repro.serve.http import HttpRequest


def make_app(tmp_path, **overrides) -> ServeApp:
    """A small, prewarm-free app with a private cache directory."""
    kwargs = dict(port=0, cache_dir=str(tmp_path / "cache"), prewarm=False,
                  seed=7, study_methods=12, study_trees=8,
                  study_max_nodes=500, whatif_duration_s=0.5)
    kwargs.update(overrides)
    return ServeApp(ServeConfig(**kwargs))


def call(app, method, target, body=b""):
    """Drive one request through the instrumented path, no sockets."""
    return asyncio.run(app.handle(
        HttpRequest(method=method, target=target, body=body)))


def study_body(**overrides) -> bytes:
    doc = dict(study="trees", methods=12, trees=8, seed=7, max_nodes=500)
    doc.update(overrides)
    return json.dumps(doc).encode()


class TestDefaultServeSlos:
    def test_latency_and_error_pair(self):
        latency, errors = default_serve_slos(0.05, 240.0)
        assert latency.name == "serve-latency"
        assert latency.metric == "serve/request_latency_s"
        assert latency.threshold_s == 0.05
        assert errors.name == "serve-errors"
        assert errors.metric == "serve/request_error"
        assert errors.threshold_s == 0.5
        # for_s=0: pending on one evaluation, firing on the next.
        assert latency.for_s == 0.0 and errors.for_s == 0.0


class TestRequestPath:
    def test_healthz(self, tmp_path):
        app = make_app(tmp_path)
        response = call(app, "GET", "/healthz")
        assert response.status == 200
        doc = json.loads(response.body)
        assert doc["status"] == "ok" and doc["shedding"] is False

    def test_unknown_route_404(self, tmp_path):
        app = make_app(tmp_path)
        response = call(app, "GET", "/nope")
        assert response.status == 404
        assert app.requests_total == 1
        # Unknown routes are still metered (as endpoint "unknown").
        counter = app.registry.counter("serve/requests",
                                       {"endpoint": "unknown"})
        assert counter.value == 1

    def test_study_compute_then_cache_hit(self, tmp_path):
        app = make_app(tmp_path)
        first = json.loads(call(app, "POST", "/v1/study",
                                study_body()).body)
        second = json.loads(call(app, "POST", "/v1/study",
                                 study_body()).body)
        assert first["cache_hit"] is False
        assert second["cache_hit"] is True
        assert first["render"] == second["render"]
        assert "call tree" in first["render"].lower() or first["render"]

    def test_study_requires_post(self, tmp_path):
        response = call(make_app(tmp_path), "GET", "/v1/study")
        assert response.status == 405

    def test_study_bad_json_is_400(self, tmp_path):
        app = make_app(tmp_path)
        assert call(app, "POST", "/v1/study", b"not json").status == 400
        assert call(app, "POST", "/v1/study", b"[1, 2]").status == 400
        assert call(app, "POST", "/v1/study",
                    study_body(study="nope")).status == 400

    def test_unhandled_error_is_500_backstop(self, tmp_path):
        app = make_app(tmp_path)
        response = call(app, "POST", "/v1/study",
                        study_body(methods="elephant"))
        assert response.status == 500
        assert app.errors_total == 1
        counter = app.registry.counter("serve/errors",
                                       {"endpoint": "study"})
        assert counter.value == 1
        # The error indicator series the serve-errors SLO watches.
        dist = app.registry.distribution("serve/request_error",
                                         {"endpoint": "study"})
        assert dist.count == 1 and dist.sum == 1.0

    def test_whatif_unknown_service_400(self, tmp_path):
        response = call(make_app(tmp_path), "GET",
                        "/v1/whatif?service=NotAService")
        assert response.status == 400
        assert b"unknown service" in response.body

    def test_whatif_compute_then_cache_hit(self, tmp_path):
        app = make_app(tmp_path)
        target = "/v1/whatif?service=Bigtable&duration_s=0.5&seed=7"
        first = json.loads(call(app, "GET", target).body)
        second = json.loads(call(app, "GET", target).body)
        assert first["cache_hit"] is False and second["cache_hit"] is True
        assert first["service"] == "Bigtable"
        assert first["dominant"] in ("server", "network", "client",
                                     "other") or first["dominant"]
        assert first["n_tail"] > 0

    def test_whatif_analytic_mode(self, tmp_path):
        from repro.theory.convolve import WHATIF_RESCUED_TOLERANCE_PTS

        app = make_app(tmp_path)
        target = ("/v1/whatif?service=Bigtable&duration_s=0.5&seed=7"
                  "&mode=analytic")
        first = json.loads(call(app, "GET", target).body)
        assert first["mode"] == "analytic"
        assert first["tolerance_pts"] == WHATIF_RESCUED_TOLERANCE_PTS
        assert first["cache_hit"] is False
        assert first["profile_n_samples"] > 0
        assert first["n_tail"] > 0
        # Second call hits the on-disk profile cache (the DES never
        # reruns) and the in-process convolution engine answers.
        second = json.loads(call(app, "GET", target).body)
        assert second["cache_hit"] is True
        assert second["percent_rescued"] == first["percent_rescued"]
        assert len(app._whatif_engines) == 1

    def test_whatif_analytic_agrees_with_des(self, tmp_path):
        from repro.theory.convolve import WHATIF_RESCUED_TOLERANCE_PTS

        app = make_app(tmp_path)
        base = "/v1/whatif?service=Bigtable&duration_s=0.5&seed=7"
        des = json.loads(call(app, "GET", base).body)
        analytic = json.loads(call(app, "GET",
                                   base + "&mode=analytic").body)
        assert des["mode"] == "des"
        assert analytic["dominant"] == des["dominant"]
        dom = des["dominant"]
        assert abs(analytic["percent_rescued"][dom]
                   - des["percent_rescued"][dom]) <= (
            WHATIF_RESCUED_TOLERANCE_PTS)

    def test_whatif_unknown_mode_400(self, tmp_path):
        response = call(make_app(tmp_path), "GET",
                        "/v1/whatif?service=Bigtable&mode=psychic")
        assert response.status == 400
        assert b"mode" in response.body

    def test_metrics_endpoint_exposition(self, tmp_path):
        app = make_app(tmp_path)
        call(app, "GET", "/healthz")
        response = call(app, "GET", "/metrics")
        assert response.status == 200
        assert response.content_type.startswith("text/plain")
        text = response.body.decode()
        assert 'serve_requests_total{endpoint="healthz"} 1' in text
        assert "serve_request_latency_s_count" in text

    def test_latency_observed_with_trace_exemplar(self, tmp_path):
        app = make_app(tmp_path)
        call(app, "GET", "/healthz")
        dist = app.registry.distribution("serve/request_latency_s",
                                         {"endpoint": "healthz"})
        assert dist.count == 1
        # The exemplar is the request's minted trace id, which (at the
        # default full sampling) is also a recorded Dapper trace.
        (_value, trace_id), = dist.drain_exemplars()
        assert trace_id in app.dapper.traces()

    def test_spans_form_phase_tree(self, tmp_path):
        app = make_app(tmp_path)
        call(app, "POST", "/v1/study", study_body())
        trace = max(app.dapper.traces().items())[1]
        roots = [s for s in trace if s.parent_id is None]
        assert len(roots) == 1 and roots[0].full_method == "serve/study"
        children = sorted(s.method for s in trace
                          if s.parent_id == roots[0].span_id)
        assert "study/parse" in children
        assert "study/compute" in children or \
            "study/cache_lookup" in children
        assert "study/serialize" in children

    def test_traces_endpoint(self, tmp_path):
        app = make_app(tmp_path)
        call(app, "GET", "/healthz")
        call(app, "GET", "/healthz")
        doc = json.loads(call(app, "GET", "/debug/traces?limit=1").body)
        assert len(doc["traces"]) == 1
        assert doc["recorded"] > 0
        assert doc["traces"][0]["root"] == "serve/healthz"

    def test_dashboard_endpoint_renders_cold(self, tmp_path):
        # First-ever request: no Monarch series yet (satellite 1's
        # empty-registry rendering path).
        response = call(make_app(tmp_path), "GET", "/debug/dashboard")
        assert response.status == 200
        assert b"heartbeat" in response.body


class TestShedding:
    def test_work_endpoints_shed_health_stays_up(self, tmp_path):
        app = make_app(tmp_path)
        app.admission.shedding = True
        shed = call(app, "POST", "/v1/study", study_body())
        assert shed.status == 503
        assert shed.headers["retry-after"] == "1"
        assert call(app, "GET", "/v1/whatif?service=Bigtable").status == 503
        # Health and observability endpoints always answer.
        assert call(app, "GET", "/healthz").status == 200
        assert call(app, "GET", "/metrics").status == 200
        assert app.admission.shed_total == 2

    def test_shed_not_observed_into_latency(self, tmp_path):
        # Shed responses must not feed the SLO distribution, or the burn
        # window could never drain and shedding would latch forever.
        app = make_app(tmp_path)
        app.admission.shedding = True
        call(app, "POST", "/v1/study", study_body())
        dist = app.registry.distribution("serve/request_latency_s",
                                         {"endpoint": "study"})
        assert dist.count == 0
        shed_counter = app.registry.counter("serve/shed",
                                            {"endpoint": "study"})
        assert shed_counter.value == 1

    def test_shed_span_annotated(self, tmp_path):
        app = make_app(tmp_path)
        app.admission.shedding = True
        call(app, "POST", "/v1/study", study_body())
        spans = [s for spans in app.dapper.traces().values()
                 for s in spans if s.parent_id is None]
        assert spans[-1].annotations.get("shed") == 1.0


class TestObservabilitySurfaces:
    def test_heartbeat_snapshot_fields(self, tmp_path):
        app = make_app(tmp_path)
        call(app, "GET", "/healthz")
        snapshot = app.heartbeat_snapshot()
        assert snapshot["rpcs_completed"] == 1
        assert snapshot["wall_s"] > 0

    def test_endpoint_p99(self, tmp_path):
        app = make_app(tmp_path)
        call(app, "GET", "/healthz")
        call(app, "POST", "/v1/study", study_body())
        p99 = app.endpoint_p99_s()
        assert set(p99) == {"healthz", "study"}
        assert all(v > 0 for v in p99.values())

    def test_obs_overhead_starts_negligible(self, tmp_path):
        app = make_app(tmp_path)
        call(app, "GET", "/healthz")
        assert 0.0 <= app.obs_overhead_fraction() < 0.05


class TestServeManifest:
    def make_manifest(self, tmp_path):
        app = make_app(tmp_path)
        call(app, "GET", "/healthz")
        call(app, "POST", "/v1/study", study_body())
        call(app, "POST", "/v1/study", study_body(methods="bad"))
        app.admission.shedding = True
        call(app, "POST", "/v1/study", study_body())
        return app, app.build_manifest(run_id="serve-test")

    def test_serve_metadata_recorded(self, tmp_path):
        app, manifest = self.make_manifest(tmp_path)
        serve = manifest.config["serve"]
        assert serve["listen_address"] == app.listen_address
        assert serve["latency_threshold_s"] == 0.05
        assert [s["name"] for s in serve["slos"]] == \
            ["serve-latency", "serve-errors"]
        assert set(serve["endpoint_p99_s"]) == {"healthz", "study"}
        counts = manifest.counts
        assert counts["requests_total"] == 4
        assert counts["shed_total"] == 1
        assert counts["errors_total"] == 1
        assert counts["spans_recorded"] == len(app.dapper.spans)

    def test_digest_validated_round_trip(self, tmp_path):
        _app, manifest = self.make_manifest(tmp_path)
        path = str(tmp_path / "serve_manifest.json")
        write_manifest(manifest, path)
        clone = read_manifest(path)
        assert clone.run_id == "serve-test"
        assert clone.config == manifest.config
        assert clone.counts == manifest.counts

    def test_tampered_config_rejected(self, tmp_path):
        _app, manifest = self.make_manifest(tmp_path)
        path = str(tmp_path / "serve_manifest.json")
        write_manifest(manifest, path)
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        doc["config"]["serve"]["latency_threshold_s"] = 99.0
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        with pytest.raises(ManifestError, match="digest mismatch"):
            read_manifest(path)


class TestWarehouseQuery:
    def test_query_over_in_memory_spans(self, tmp_path):
        app = make_app(tmp_path)
        call(app, "GET", "/healthz")
        call(app, "GET", "/healthz")
        doc = json.loads(call(app, "GET", "/debug/query").body)
        assert doc["warehouse"] is False
        assert doc["recorded"] > 0
        groups = {(g["service"], g["method"]): g for g in doc["groups"]}
        assert ("serve", "healthz") in groups
        row = groups[("serve", "healthz")]
        assert row["count"] >= 1
        assert set(row) >= {"count", "errors", "mean_ms",
                            "p50_ms", "p95_ms", "p99_ms"}

    def test_query_streams_through_warehouse_sink(self, tmp_path):
        app = make_app(tmp_path, warehouse_dir=str(tmp_path / "wh"),
                       warehouse_shard_size=2)
        for _ in range(5):
            call(app, "GET", "/healthz")
        # keep_in_memory=False: the sink is the only copy.
        assert app.dapper.spans == []
        assert app.span_sink is not None
        assert app.span_sink.spans_spilled > 0  # shards hit disk live
        doc = json.loads(call(app, "GET", "/debug/query").body)
        assert doc["warehouse"] is True
        groups = {(g["service"], g["method"]): g for g in doc["groups"]}
        # The query span for this very request is buffered but not yet
        # recorded when the handler runs; at least the 5 healthz + the
        # spilled shards must be visible.
        assert groups[("serve", "healthz")]["count"] >= 5

    def test_query_filters_and_metrics(self, tmp_path):
        app = make_app(tmp_path)
        call(app, "GET", "/healthz")
        call(app, "GET", "/debug/dashboard")
        doc = json.loads(call(
            app, "GET",
            "/debug/query?service=serve&method=healthz"
            "&metric=tax&percentiles=50").body)
        assert doc["metric"] == "tax"
        assert [(g["service"], g["method"]) for g in doc["groups"]] == \
            [("serve", "healthz")]
        assert "p50_ms" in doc["groups"][0]

    def test_query_bad_inputs_are_400(self, tmp_path):
        app = make_app(tmp_path)
        call(app, "GET", "/healthz")
        assert call(app, "GET", "/debug/query?metric=bogus").status == 400
        assert call(app, "GET",
                    "/debug/query?percentiles=abc").status == 400
        assert call(app, "GET",
                    "/debug/query?percentiles=150").status == 400

    def test_stop_commits_warehouse(self, tmp_path):
        from repro.obs.spanstore import SpanWarehouse

        app = make_app(tmp_path, warehouse_dir=str(tmp_path / "wh"),
                       warehouse_shard_size=4)
        for _ in range(3):
            call(app, "GET", "/healthz")
        asyncio.run(app.stop())
        assert app.span_sink.closed
        warehouse = SpanWarehouse.open(str(tmp_path / "wh"), "serve")
        assert warehouse.n_spans == app.dapper.spans_recorded
        # Post-commit the stored trees match what the app reported live.
        trees = app.trace_trees()
        assert len(trees) == len({s.trace_id
                                  for s in warehouse.iter_spans()})
