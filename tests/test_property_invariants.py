"""Cross-cutting property-based invariants (hypothesis).

These target whole-subsystem invariants rather than single functions:
event ordering under arbitrary schedules, queue conservation laws, frame
robustness against corruption, and sampler non-negativity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc.framework import FrameError, decode_frame, encode_frame
from repro.rpc.wire import WireError
from repro.sim.engine import Simulator
from repro.sim.queues import Job, ServerPool


# ----------------------------------------------------------------------
# Engine: arbitrary schedules always fire in time order
# ----------------------------------------------------------------------
@given(delays=st.lists(st.floats(0.0, 100.0, allow_nan=False),
                       min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_events_always_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.after(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert len(fired) == len(delays)
    assert all(a <= b for a, b in zip(fired, fired[1:]))
    assert sorted(fired) == sorted(delays)


@given(delays=st.lists(st.floats(0.0, 10.0, allow_nan=False),
                       min_size=2, max_size=40),
       cancel_idx=st.integers(0, 39))
@settings(max_examples=40, deadline=None)
def test_cancellation_removes_exactly_one(delays, cancel_idx):
    cancel_idx %= len(delays)
    sim = Simulator()
    fired = []
    events = [sim.after(d, lambda i=i: fired.append(i))
              for i, d in enumerate(delays)]
    events[cancel_idx].cancel()
    sim.run()
    assert len(fired) == len(delays) - 1
    assert cancel_idx not in fired


# ----------------------------------------------------------------------
# Queues: conservation and non-negative waits under any workload
# ----------------------------------------------------------------------
@given(
    services=st.lists(st.floats(0.001, 5.0, allow_nan=False),
                      min_size=1, max_size=50),
    servers=st.integers(1, 8),
    discipline=st.sampled_from(["fifo", "sjf", "lifo"]),
)
@settings(max_examples=50, deadline=None)
def test_queue_conservation(services, servers, discipline):
    sim = Simulator()
    pool = ServerPool(sim, servers=servers, discipline=discipline,
                      record_waits=True)
    for s in services:
        pool.submit(Job(s))
    sim.run()
    # Every job completes exactly once, no wait is negative, and the busy
    # integral equals the total service time delivered.
    assert pool.stats.jobs_completed == len(services)
    assert all(w >= 0 for w in pool.stats.waits)
    assert pool.stats.total_service == pytest.approx(sum(services))
    assert pool.queue_depth == 0 and pool.busy_servers == 0


@given(
    services=st.lists(st.floats(0.01, 2.0, allow_nan=False),
                      min_size=5, max_size=40),
)
@settings(max_examples=30, deadline=None)
def test_work_conservation_single_server(services):
    """A single-server pool finishes all work at exactly sum(service)."""
    sim = Simulator()
    pool = ServerPool(sim, servers=1)
    done_at = []
    for s in services:
        pool.submit(Job(s, on_done=lambda w: done_at.append(sim.now)))
    sim.run()
    assert max(done_at) == pytest.approx(sum(services))


# ----------------------------------------------------------------------
# Frames: corruption never crashes, only raises FrameError/WireError
# ----------------------------------------------------------------------
@given(junk=st.binary(max_size=200))
@settings(max_examples=100, deadline=None)
def test_decode_frame_never_crashes_on_junk(junk):
    try:
        decode_frame(junk)
    except (FrameError, WireError, IndexError):
        pass  # rejected cleanly


@given(body=st.binary(max_size=300), flip=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_decode_frame_survives_bit_flips(body, flip):
    frame = bytearray(encode_frame({"method": "/S/M", "trace_id": 1}, body,
                                   compress=len(body) > 64))
    pos = flip % len(frame)
    frame[pos] ^= 0x40
    try:
        header, decoded = decode_frame(bytes(frame))
    except (FrameError, WireError):
        return  # rejected cleanly — acceptable
    # Or decoded to *something* without crashing — also acceptable; the
    # invariant is only "no uncontrolled exception".
    assert isinstance(decoded, bytes)
