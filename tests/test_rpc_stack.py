"""Tests for the nine-component latency anatomy and cost models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc.stack import (
    APP_COMPONENT,
    COMPONENTS,
    PROC_COMPONENTS,
    QUEUE_COMPONENTS,
    TAX_COMPONENTS,
    WIRE_COMPONENTS,
    ComponentDistributions,
    ComponentMatrix,
    CycleCosts,
    LatencyBreakdown,
    StackCostModel,
)
from repro.sim.distributions import Constant, LogNormal


def test_component_taxonomy_partitions():
    assert len(COMPONENTS) == 9
    grouped = set(QUEUE_COMPONENTS) | set(WIRE_COMPONENTS) | set(PROC_COMPONENTS)
    assert grouped | {APP_COMPONENT} == set(COMPONENTS)
    assert APP_COMPONENT not in grouped
    assert set(TAX_COMPONENTS) == set(COMPONENTS) - {APP_COMPONENT}


class TestLatencyBreakdown:
    def test_total_and_tax(self):
        b = LatencyBreakdown(server_application=1.0, request_network_wire=0.1,
                             server_recv_queue=0.05)
        assert b.total() == pytest.approx(1.15)
        assert b.tax() == pytest.approx(0.15)
        assert b.tax_ratio() == pytest.approx(0.15 / 1.15)

    def test_zero_breakdown_ratio(self):
        assert LatencyBreakdown().tax_ratio() == 0.0

    def test_groupings(self):
        b = LatencyBreakdown(
            client_send_queue=1, request_proc_stack=2, request_network_wire=3,
            server_recv_queue=4, server_application=5, server_send_queue=6,
            response_proc_stack=7, response_network_wire=8, client_recv_queue=9,
        )
        assert b.queueing() == 1 + 4 + 6 + 9
        assert b.wire() == 3 + 8
        assert b.proc_stack() == 2 + 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyBreakdown(server_application=-1.0)

    def test_array_roundtrip(self):
        b = LatencyBreakdown(server_application=2.0, client_recv_queue=0.5)
        assert LatencyBreakdown.from_array(b.as_array()) == b

    def test_from_array_wrong_length(self):
        with pytest.raises(ValueError):
            LatencyBreakdown.from_array([1.0, 2.0])

    def test_replace(self):
        b = LatencyBreakdown(server_application=2.0)
        c = b.replace(server_application=1.0, client_send_queue=0.5)
        assert c.server_application == 1.0
        assert c.client_send_queue == 0.5
        assert b.server_application == 2.0  # original untouched


class TestComponentMatrix:
    def make(self, n=10):
        rng = np.random.default_rng(0)
        return ComponentMatrix(rng.random((n, 9)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ComponentMatrix(np.zeros((5, 8)))
        with pytest.raises(ValueError):
            ComponentMatrix(np.full((2, 9), -1.0))

    def test_total_equals_row_sums(self):
        m = self.make()
        assert np.allclose(m.total(), m.values.sum(axis=1))

    def test_tax_plus_app_equals_total(self):
        m = self.make()
        assert np.allclose(m.tax() + m.application(), m.total())

    def test_groups_sum_to_tax(self):
        m = self.make()
        assert np.allclose(m.queueing() + m.wire() + m.proc_stack(), m.tax())

    def test_tax_ratio_in_unit_interval(self):
        m = self.make(100)
        r = m.tax_ratio()
        assert np.all(r >= 0) and np.all(r <= 1)

    def test_row_accessor(self):
        m = self.make()
        row = m.row(3)
        assert isinstance(row, LatencyBreakdown)
        assert row.total() == pytest.approx(m.total()[3])

    def test_with_component_replaces_column(self):
        m = self.make()
        replaced = m.with_component("server_application", np.zeros(len(m)))
        assert np.all(replaced.application() == 0)
        assert not np.all(m.application() == 0)  # original untouched

    def test_subset_and_concat(self):
        m = self.make(10)
        mask = np.arange(10) < 4
        sub = m.subset(mask)
        assert len(sub) == 4
        joined = ComponentMatrix.concat([sub, m.subset(~mask)])
        assert len(joined) == 10

    def test_concat_empty(self):
        assert len(ComponentMatrix.concat([])) == 0

    def test_from_breakdowns(self):
        rows = [LatencyBreakdown(server_application=float(i)) for i in range(3)]
        m = ComponentMatrix.from_breakdowns(rows)
        assert list(m.application()) == [0.0, 1.0, 2.0]


class TestComponentDistributions:
    def test_missing_components_default_zero(self):
        cd = ComponentDistributions({"server_application": Constant(1.0)})
        m = cd.sample(np.random.default_rng(0), 5)
        assert np.all(m.application() == 1.0)
        assert np.all(m.tax() == 0.0)

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError):
            ComponentDistributions({"bogus": Constant(1.0)})

    def test_sampling_distributions(self):
        cd = ComponentDistributions({
            "server_application": LogNormal.from_median_sigma(1e-3, 0.5),
            "server_recv_queue": Constant(1e-4),
        })
        m = cd.sample(np.random.default_rng(1), 5000)
        assert np.median(m.application()) == pytest.approx(1e-3, rel=0.1)
        assert np.all(m["server_recv_queue"] == 1e-4)


class TestStackCostModel:
    def test_proc_time_monotone_in_size(self):
        sm = StackCostModel()
        assert sm.proc_stack_time_s(100) < sm.proc_stack_time_s(100_000)

    def test_proc_time_vec_matches_scalar(self):
        sm = StackCostModel()
        sizes = np.array([64.0, 1500.0, 1e6])
        vec = sm.proc_stack_time_vec(sizes)
        for i, size in enumerate(sizes):
            assert vec[i] == pytest.approx(sm.proc_stack_time_s(size))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            StackCostModel().proc_stack_time_s(-1)

    def test_cycles_components_positive_and_additive(self):
        sm = StackCostModel()
        c = sm.cycles(1000, 2000, 0.05)
        assert isinstance(c, CycleCosts)
        assert c.application == 0.05
        assert c.tax() > 0
        assert c.total() == pytest.approx(c.application + c.tax())

    def test_cycles_vec_matches_scalar(self):
        sm = StackCostModel()
        req = np.array([100.0, 5000.0])
        resp = np.array([200.0, 10000.0])
        app = np.array([0.02, 0.3])
        vec = sm.cycles_vec(req, resp, app)
        for i in range(2):
            scalar = sm.cycles(req[i], resp[i], app[i])
            for cat, arr in vec.items():
                assert arr[i] == pytest.approx(getattr(scalar, cat)
                                               if cat != "application"
                                               else scalar.application)

    def test_bigger_messages_cost_more_compression(self):
        sm = StackCostModel()
        small = sm.cycles(64, 64, 0.0)
        big = sm.cycles(100_000, 100_000, 0.0)
        assert big.compression > small.compression * 10


@given(values=st.lists(
    st.lists(st.floats(0, 1e3, allow_nan=False), min_size=9, max_size=9),
    min_size=1, max_size=20,
))
@settings(max_examples=50, deadline=None)
def test_matrix_invariants_property(values):
    m = ComponentMatrix(np.array(values))
    # Tax never exceeds total; groupings partition the tax exactly.
    assert np.all(m.tax() <= m.total() + 1e-9)
    assert np.allclose(m.queueing() + m.wire() + m.proc_stack(), m.tax())
    assert np.all((m.tax_ratio() >= 0) & (m.tax_ratio() <= 1))
