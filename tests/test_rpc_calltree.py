"""Tests for call-tree generation and shape statistics."""

import numpy as np
import pytest

from repro.rpc.calltree import (
    CallNode,
    CallTreeGenerator,
    TreeShapeStats,
    collect_shape_samples,
)
from repro.sim.distributions import Constant

RNG = np.random.default_rng(17)


def fixed_fanout_generator(fanout: int, leaf_beyond: int = 2,
                           max_nodes: int = 10_000, max_depth: int = 24):
    """Every method at layer < leaf_beyond fans out `fanout` ways."""

    def fanout_for(method_id):
        return Constant(fanout if method_id < leaf_beyond else 0)

    def children_of(method_id, rng, k):
        return [method_id + 1] * k

    return CallTreeGenerator(fanout_for, children_of,
                             max_nodes=max_nodes, max_depth=max_depth)


def test_leaf_only_tree():
    gen = fixed_fanout_generator(fanout=3, leaf_beyond=0)
    tree = gen.generate(5, RNG)
    assert tree.size == 1
    assert tree.root.descendants == 0
    assert tree.max_depth == 0
    assert not tree.truncated


def test_regular_tree_shape():
    # method 0 -> 3 children (method 1) -> each 3 children (method 2, leaf).
    gen = fixed_fanout_generator(fanout=3, leaf_beyond=2)
    tree = gen.generate(0, RNG)
    assert tree.size == 1 + 3 + 9
    assert tree.root.descendants == 12
    assert tree.max_depth == 2


def test_descendant_counts_per_node():
    gen = fixed_fanout_generator(fanout=2, leaf_beyond=2)
    tree = gen.generate(0, RNG)
    mids = [n for n in tree.root.walk() if n.method_id == 1]
    assert all(n.descendants == 2 for n in mids)
    leaves = [n for n in tree.root.walk() if n.method_id == 2]
    assert all(n.descendants == 0 for n in leaves)


def test_ancestor_equals_depth():
    gen = fixed_fanout_generator(fanout=2, leaf_beyond=3)
    tree = gen.generate(0, RNG)
    for node in tree.root.walk():
        assert node.ancestors == node.depth


def test_node_budget_truncates():
    gen = fixed_fanout_generator(fanout=10, leaf_beyond=100, max_nodes=50)
    tree = gen.generate(0, RNG)
    assert tree.size <= 50
    assert tree.truncated


def test_max_depth_stops_expansion():
    def fanout_for(mid):
        return Constant(1)

    def children_of(mid, rng, k):
        return [mid] * k

    gen = CallTreeGenerator(fanout_for, children_of, max_nodes=1000, max_depth=5)
    tree = gen.generate(0, RNG)
    assert tree.max_depth == 5
    assert tree.size == 6


def test_invalid_limits_rejected():
    with pytest.raises(ValueError):
        CallTreeGenerator(lambda m: Constant(0), lambda m, r, k: [], max_nodes=0)
    with pytest.raises(ValueError):
        CallTreeGenerator(lambda m: Constant(0), lambda m, r, k: [], max_depth=-1)


def test_tree_shape_stats_accumulation():
    gen = fixed_fanout_generator(fanout=2, leaf_beyond=1)
    stats = TreeShapeStats()
    stats.add_tree(gen.generate(0, RNG))
    stats.add_tree(gen.generate(0, RNG))
    assert stats.descendants[0] == [2, 2]
    assert stats.ancestors[1] == [1, 1, 1, 1]


def test_filter_min_samples():
    stats = TreeShapeStats()
    stats.descendants = {1: [1, 2, 3], 2: [5]}
    stats.ancestors = {1: [0, 0, 0], 2: [1]}
    filtered = stats.filter_min_samples(2)
    assert set(filtered.descendants) == {1}


def test_collect_shape_samples():
    gen = fixed_fanout_generator(fanout=2, leaf_beyond=1)
    stats = collect_shape_samples(gen, [0, 0, 0], RNG)
    assert len(stats.descendants[0]) == 3


def test_wide_trees_have_shallow_depth():
    """The paper's wider-than-deep property: high fanout with few layers
    yields descendants >> ancestors."""
    gen = fixed_fanout_generator(fanout=30, leaf_beyond=2)
    tree = gen.generate(0, RNG)
    max_anc = max(n.ancestors for n in tree.root.walk())
    assert tree.root.descendants > 900
    assert max_anc == 2
