"""Fig. 12 — per-method wire + RPC-processing/network-stack latency.

Paper anchors (per-method P99 quantiles across methods): fastest 1 % =
6 ms, fastest 10 % = 19 ms, median = 115 ms, slowest 10 % = 271 ms,
slowest 1 % = 826 ms — the last far above any propagation delay
(congestion and processing, not distance).
"""

from repro.core.tax import analyze_netstack


def test_fig12_netstack(benchmark, show, bench_fleet):
    result = benchmark.pedantic(
        lambda: analyze_netstack(bench_fleet), rounds=1, iterations=1,
    )
    show(result.render())
    q = result.p99_quantiles
    # Ordering and orders of magnitude.
    assert q[0.01] < q[0.10] < q[0.50] < q[0.90] < q[0.99]
    assert 1e-3 < q[0.01] < 30e-3
    assert 20e-3 < q[0.50] < 300e-3
    assert q[0.99] > 0.3  # beyond the ~200 ms propagation ceiling
