"""Observability control-plane self-overhead: alerting must be cheap.

The SLO alert manager evaluates burn rates over Monarch sketch series on
every scrape interval. That evaluation runs inside the DES loop, so if
it were slow it would tax every study that opts into SLOs. This bench
runs a service study with an SLO attached and a wall clock injected into
the alert manager, and asserts that alert evaluation stays under 5 % of
the total DES wall time. The split (plus the scraper's own wall share)
is recorded into ``BENCH_PR8.json`` so drift shows up across PRs.
"""

import time

from repro.obs.alerting import SloSpec
from repro.studies import run_service_study

DURATION_S = 2.0
SCRAPE_INTERVAL_S = 0.25
MAX_ALERT_EVAL_FRACTION = 0.05


def test_alert_eval_under_5pct_of_des_wall(show, record_stat,
                                           record_sim_stats):
    slo = SloSpec(
        name="kv-latency", threshold_s=0.002, window_s=240.0,
        target=0.99, labels={"method": "KVStore/SearchValue"})
    start_s = time.perf_counter()
    study = run_service_study(
        services=["KVStore"], n_clusters=1, duration_s=DURATION_S,
        seed=5, scrape_interval_s=SCRAPE_INTERVAL_S, dapper_sampling=1.0,
        slos=[slo], alert_wall_clock=time.perf_counter)
    total_s = time.perf_counter() - start_s

    eval_s = study.alerts.eval_wall_s
    fraction = eval_s / total_s
    record_sim_stats(study.sim)
    record_stat(total_wall_s=round(total_s, 4),
                alert_eval_wall_s=round(eval_s, 4),
                alert_eval_fraction=round(fraction, 4),
                alert_evaluations=study.alerts.evaluations,
                scrape_wall_s=round(study.scraper.scrape_wall_s, 4))
    show(f"fleet-obs overhead ({DURATION_S:g}s sim, scrape every "
         f"{SCRAPE_INTERVAL_S:g}s): study {total_s:.3f}s wall, alert eval "
         f"{eval_s * 1e3:.2f}ms across {study.alerts.evaluations} "
         f"evaluations ({fraction * 100:.2f}%), scraper "
         f"{study.scraper.scrape_wall_s * 1e3:.2f}ms")
    assert study.alerts.evaluations > 0
    assert fraction < MAX_ALERT_EVAL_FRACTION, (
        f"alert evaluation took {fraction * 100:.1f}% of DES wall time "
        f"(limit {MAX_ALERT_EVAL_FRACTION * 100:.0f}%): burn-rate "
        f"queries are scanning too much of Monarch")
