"""Observability control-plane self-overhead: alerting must be cheap.

The SLO alert manager evaluates burn rates over Monarch sketch series on
every scrape interval. That evaluation runs inside the DES loop, so if
it were slow it would tax every study that opts into SLOs. This bench
runs a service study with an SLO attached and a wall clock injected into
the alert manager, and asserts that alert evaluation stays under 5 % of
the total DES wall time.

Since the span-warehouse PR the study also streams every sampled span
through a :class:`~repro.obs.spanstore.SpanStoreSink` with the in-memory
span list disabled — the production configuration for long corpora — so
the bench measures the *whole* observability tax: scraping, alerting,
and columnar spill. Span throughput (``spans_per_s``) and the process
peak RSS land in ``BENCH_PR10.json`` so drift shows up across PRs.
"""

import time

from repro.obs.alerting import SloSpec
from repro.obs.spanstore import SpanStore, SpanStoreSink, SpanWarehouse
from repro.studies import run_service_study

DURATION_S = 2.0
SCRAPE_INTERVAL_S = 0.25
MAX_ALERT_EVAL_FRACTION = 0.05
WAREHOUSE_SHARD_SIZE = 4096


def test_alert_eval_under_5pct_of_des_wall(show, record_stat,
                                           record_sim_stats, tmp_path):
    slo = SloSpec(
        name="kv-latency", threshold_s=0.002, window_s=240.0,
        target=0.99, labels={"method": "KVStore/SearchValue"})
    sink = SpanStoreSink(SpanStore(str(tmp_path), "bench"),
                         shard_size=WAREHOUSE_SHARD_SIZE)
    start_s = time.perf_counter()
    study = run_service_study(
        services=["KVStore"], n_clusters=1, duration_s=DURATION_S,
        seed=5, scrape_interval_s=SCRAPE_INTERVAL_S, dapper_sampling=1.0,
        slos=[slo], alert_wall_clock=time.perf_counter,
        span_sink=sink, keep_spans_in_memory=False)
    warehouse = sink.close()
    total_s = time.perf_counter() - start_s

    eval_s = study.alerts.eval_wall_s
    fraction = eval_s / total_s
    n_spans = warehouse.n_spans
    record_sim_stats(study.sim)
    record_stat(total_wall_s=round(total_s, 4),
                alert_eval_wall_s=round(eval_s, 4),
                alert_eval_fraction=round(fraction, 4),
                alert_evaluations=study.alerts.evaluations,
                scrape_wall_s=round(study.scraper.scrape_wall_s, 4),
                spans_spilled=n_spans,
                spans_per_s=round(n_spans / total_s, 1))
    show(f"fleet-obs overhead ({DURATION_S:g}s sim, scrape every "
         f"{SCRAPE_INTERVAL_S:g}s): study {total_s:.3f}s wall, alert eval "
         f"{eval_s * 1e3:.2f}ms across {study.alerts.evaluations} "
         f"evaluations ({fraction * 100:.2f}%), scraper "
         f"{study.scraper.scrape_wall_s * 1e3:.2f}ms, "
         f"{n_spans} spans spilled ({n_spans / total_s:,.0f}/s)")
    assert study.alerts.evaluations > 0
    # The study kept no span list: the warehouse is the only copy.
    assert not study.dapper.spans
    assert n_spans == study.dapper.spans_recorded
    assert isinstance(warehouse, SpanWarehouse)
    assert fraction < MAX_ALERT_EVAL_FRACTION, (
        f"alert evaluation took {fraction * 100:.1f}% of DES wall time "
        f"(limit {MAX_ALERT_EVAL_FRACTION * 100:.0f}%): burn-rate "
        f"queries are scanning too much of Monarch")
