"""Fig. 19 — Spanner cross-cluster latency breakdown by client cluster.

Paper: latency is low and same-shaped within a datacenter or nearby
clusters, then the network-wire component grows to dominate as clients
move to other countries and continents; median cross-cluster latency
closely matches wire propagation (congestion is not the common case).
"""

import numpy as np

from repro.core.crosscluster import analyze_cross_cluster
from repro.net.latency import PathClass


def test_fig19_cross_cluster(benchmark, show, record_sim_stats,
                             cross_study):
    record_sim_stats(cross_study.sim)
    home = cross_study.fleet.clusters[0].name

    result = benchmark.pedantic(
        lambda: analyze_cross_cluster(
            cross_study.dapper, "Spanner", "ReadRows",
            cross_study.network, cross_study.clusters_by_name(), home,
            min_spans=25,
        ),
        rounds=1, iterations=1,
    )
    show(result.render())

    # The distance staircase: same-cluster fastest, WAN slowest.
    assert result.path_classes[0] == PathClass.SAME_CLUSTER
    assert result.path_classes[-1] == PathClass.WAN
    totals = result.totals()
    assert totals[-1] > 10 * totals[0]

    # Wire dominates far away but not at home.
    assert result.wire_fraction[0] < 0.5
    assert result.wire_fraction[-1] > 0.7

    # §3.3.5: median WAN wire ~= propagation (not congestion).
    ratios = result.median_wire_vs_propagation()
    wan = [r for pc, r in zip(result.path_classes, ratios)
           if pc == PathClass.WAN]
    assert wan and all(0.6 < r < 2.0 for r in wan)
