"""Fig. 3 — per-method call frequency.

Paper anchors: the single most popular method (Network Disk Write) is
28 % of calls; top-10 = 58 %; top-100 = 91 %; the 100 lowest-latency
methods carry 40 % of calls; the slowest 1000 carry 1.1 % of calls but
89 % of total RPC time.
"""

from repro.core.popularity import analyze_popularity


def test_fig03_popularity(benchmark, show, bench_fleet):
    result = benchmark.pedantic(
        lambda: analyze_popularity(bench_fleet), rounds=1, iterations=1,
    )
    show(result.render())
    assert abs(result.top1_share - 0.28) < 0.02
    assert abs(result.top10_share - 0.58) < 0.03
    assert abs(result.top100_share - 0.91) < 0.04
    # The scaled head/mid offsets make "fastest 20 of 2000" a harsher
    # statistic than the paper's "fastest 100 of 10,000" (which lands at
    # ~0.48 at full scale vs the paper's 0.40).
    assert 0.08 < result.fastest_share < 0.75
    assert result.slowest_call_share < 0.05
    assert result.slowest_time_share > 0.45
