"""Ablation — intra-cluster load-balancing policy vs tail latency.

The paper motivates better RPC load balancing (§4.2-4.3): heavy-tailed
per-RPC cost means policies that treat RPCs as equal leave significant
tail latency on the table. This bench replays the same offered load under
random, round-robin, and least-loaded (power-of-two) machine selection
and compares P95/P99 completion times.
"""

import numpy as np

from repro.core.report import fmt_seconds, format_table
from repro.fleet.topology import FleetSpec, build_fleet
from repro.net.latency import NetworkModel
from repro.obs.dapper import DapperCollector
from repro.rpc.loadbalancer import (
    LeastLoadedPolicy,
    RandomPolicy,
    RoundRobinPolicy,
)
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.workloads.drivers import (
    DeploymentConfig,
    OpenLoopDriver,
    ServiceDeployment,
)
from repro.workloads.services import SERVICE_SPECS


def run_policy(policy, duration_s=3.0, seed=77):
    sim = Simulator()
    fleet = build_fleet(FleetSpec(), seed=seed)
    dapper = DapperCollector(sampling_rate=1.0)
    dep = ServiceDeployment(
        sim, SERVICE_SPECS["F1"], fleet.clusters[:1], NetworkModel(),
        dapper=dapper, rngs=RngRegistry(seed),
        config=DeploymentConfig(server_machines_per_cluster=4),
    )
    driver = OpenLoopDriver(dep, fleet.clusters[0], policy=policy,
                            rate_scale=1.15)
    driver.start(duration_s)
    sim.run_until(duration_s + 20.0)
    totals = np.array([s.completion_time for s in dapper.ok_spans()])
    return {
        "p50": float(np.percentile(totals, 50)),
        "p95": float(np.percentile(totals, 95)),
        "p99": float(np.percentile(totals, 99)),
        "n": len(totals),
    }


def test_ablation_load_balancing(benchmark, show):
    policies = {
        "random": RandomPolicy(),
        "round_robin": RoundRobinPolicy(),
        "least_loaded_d2": LeastLoadedPolicy(d=2),
    }

    def compute():
        return {name: run_policy(p) for name, p in policies.items()}

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(format_table(
        ("policy", "P50", "P95", "P99", "spans"),
        [
            (name, fmt_seconds(r["p50"]), fmt_seconds(r["p95"]),
             fmt_seconds(r["p99"]), r["n"])
            for name, r in results.items()
        ],
        title="Ablation — intra-cluster LB policy (F1, heavy-tailed cost)",
    ))

    # Load-aware placement must beat blind placement at the tail.
    assert (results["least_loaded_d2"]["p95"]
            < results["random"]["p95"] * 0.95)
    # Medians stay comparable (the win is in the tail).
    assert (results["least_loaded_d2"]["p50"]
            < results["random"]["p50"] * 1.2)
