"""Fig. 5 — per-method ancestor counts (call-tree depth).

Paper anchors: ancestors are much smaller than descendants; half of the
methods have fewer than 10 ancestors at P99; depths are comparable to
Meta's reported 5-6 at P99 and 9-19 max.
"""

import numpy as np

from repro.core.calltree import run_tree_study


def test_fig05_ancestors(benchmark, show, record_stat, bench_catalog):
    result = benchmark.pedantic(
        lambda: run_tree_study(bench_catalog, n_trees=300,
                               rng=np.random.default_rng(5),
                               max_nodes=20_000),
        rounds=1, iterations=1,
    )
    show(result.render())
    record_stat(trees_generated=result.n_trees, n_methods=result.n_methods)
    assert result.ancestors_p99_q50 < 10
    assert result.max_depth_seen <= 16
    # Wider than deep: typical descendant tails dwarf typical depths.
    p99s = [np.percentile(v, 99)
            for v in result.per_method_descendants.values()]
    assert np.median(p99s) > 10 * result.ancestors_p99_q50
