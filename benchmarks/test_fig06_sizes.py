"""Fig. 6 — per-method request sizes.

Paper anchors: minimum 64 B; half of methods have median requests under
1530 B (responses under 315 B); typical per-method P90 requests ~11.8 KB;
P99 requests ~196 KB and responses ~563 KB.
"""

from repro.core.sizes import analyze_sizes


def test_fig06_request_sizes(benchmark, show, bench_fleet):
    result = benchmark.pedantic(
        lambda: analyze_sizes(bench_fleet), rounds=1, iterations=1,
    )
    show(result.render())
    assert result.min_request_bytes >= 64
    assert 0.35 < result.frac_req_median_under_1530 < 0.65
    assert 5e3 < result.median_method_req_p90 < 40e3
    assert 50e3 < result.median_method_req_p99 < 500e3
    assert 100e3 < result.median_method_resp_p99 < 1.5e6
