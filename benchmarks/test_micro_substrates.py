"""Microbenchmarks of the substrate hot paths.

Unlike the figure benches (one-shot studies timed with rounds=1), these
use pytest-benchmark's statistical timing on genuinely hot operations:
wire-codec encode/decode, LZSS, ChaCha20, the DES event loop, and the
vectorized catalog sampler. They guard against performance regressions in
the code every study depends on.
"""

import numpy as np
import pytest

from repro.rpc import compression, crypto
from repro.rpc.wire import FieldSpec, FieldType, MessageSchema, decode_message, encode_message
from repro.sim.engine import Simulator
from repro.sim.queues import Job, ServerPool
from repro.workloads.catalog import sample_method_calls

SCHEMA = MessageSchema("Bench", [
    FieldSpec(1, "id", FieldType.UINT64),
    FieldSpec(2, "name", FieldType.STRING),
    FieldSpec(3, "payload", FieldType.BYTES),
    FieldSpec(4, "tags", FieldType.STRING, repeated=True),
    FieldSpec(5, "score", FieldType.DOUBLE),
])
MESSAGE = {
    "id": 123456789,
    "name": "bench-row",
    "payload": b"x" * 512,
    "tags": ["alpha", "beta", "gamma"],
    "score": 3.14159,
}
WIRE = encode_message(SCHEMA, MESSAGE)
TEXT = (b"GET /api/v1/users?id=12345 HTTP/1.1\r\n"
        b"Host: service.example.com\r\n") * 40
KEY, NONCE = bytes(32), bytes(12)


def test_micro_wire_encode(benchmark):
    out = benchmark(encode_message, SCHEMA, MESSAGE)
    assert len(out) > 500


def test_micro_wire_decode(benchmark):
    out = benchmark(decode_message, SCHEMA, WIRE)
    assert out["id"] == MESSAGE["id"]


def test_micro_lzss_compress(benchmark):
    out = benchmark(compression.compress, TEXT)
    assert len(out) < len(TEXT)


def test_micro_lzss_decompress(benchmark):
    blob = compression.compress(TEXT)
    out = benchmark(compression.decompress, blob)
    assert out == TEXT


def test_micro_chacha20(benchmark):
    out = benchmark(crypto.chacha20_encrypt, KEY, NONCE, TEXT[:1024])
    assert len(out) == 1024


def test_micro_event_loop(benchmark):
    """Throughput of scheduling + firing 5,000 chained events."""
    def run():
        sim = Simulator()
        state = {"n": 0}

        def tick():
            state["n"] += 1
            if state["n"] < 5000:
                sim.after(0.001, tick)

        sim.after(0.001, tick)
        sim.run()
        return state["n"]

    assert benchmark(run) == 5000


def test_micro_server_pool(benchmark):
    """An M/G/4 pool draining 2,000 jobs."""
    def run():
        sim = Simulator()
        pool = ServerPool(sim, servers=4)
        for _ in range(2000):
            pool.submit(Job(0.001))
        sim.run()
        return pool.stats.jobs_completed

    assert benchmark(run) == 2000


def test_micro_catalog_sampler(benchmark, bench_catalog):
    """Vectorized Tier-A sampling of 2,000 calls for one method."""
    spec = bench_catalog.methods[0]
    rng = np.random.default_rng(0)

    def run():
        return sample_method_calls(spec, rng, 2000,
                                   config=bench_catalog.config)

    out = benchmark(run)
    assert len(out) == 2000
