"""Fig. 4 — per-method descendant counts.

Paper anchors: half of methods have a median of <= 13 descendants; 90 %
of methods have P90 > 105 and P99 > 1155 — trees are *wider than deep*.
"""

import numpy as np

from repro.core.calltree import run_tree_study
from repro.core.report import format_table


def test_fig04_descendants(benchmark, show, record_stat, bench_catalog):
    result = benchmark.pedantic(
        lambda: run_tree_study(bench_catalog, n_trees=300,
                               rng=np.random.default_rng(4),
                               max_nodes=20_000),
        rounds=1, iterations=1,
    )
    show(result.render())
    record_stat(trees_generated=result.n_trees, n_methods=result.n_methods)
    assert result.descendants_median_q50 < 150
    # Heavy per-method tails: even modest methods occasionally sit atop
    # partition/aggregate fans or near-critical replication chains.
    assert result.descendants_p99_q10 >= 10
    p99s = [np.percentile(v, 99)
            for v in result.per_method_descendants.values()]
    assert np.median(p99s) > 50
    all_desc = np.concatenate(list(result.per_method_descendants.values()))
    assert all_desc.max() > 1000
