"""Shared fixtures for the per-figure benchmarks.

Heavy simulations are session-scoped so each is run once; the
pytest-benchmark timer wraps only the *analysis* under test (via
``benchmark.pedantic(rounds=1)``), and every bench prints its
paper-vs-measured table through the ``show`` fixture.

Scale note: the paper's fleet is 10,000 methods and 722 billion samples;
the benches default to a 2,000-method catalog and seconds-long DES slices
so the whole suite completes in minutes. The shapes under test are scale-
stable; bump the constants below to run closer to paper scale.

Bench trajectory: every bench's wall time (plus any stats it pushes via
the ``record_stat`` fixture) is written to ``BENCH_PR10.json`` at the repo
root when the session ends, one record per figure::

    {"figure": "fig14_breakdown", "wall_s": 1.23,
     "stats": {"events_fired": 41000, "peak_heap": 310,
               "peak_rss_mb": 412.0, ...}}

Sampling figures record ``trees_generated``/``n_methods``; DES figures
record ``events_fired``, ``events_cancelled``, and ``peak_heap`` from the
simulator (see ``record_sim_stats``), so a perf regression shows up next
to the workload volume that produced it. Every figure additionally gets
``peak_rss_mb`` (the process high-water RSS after its tests ran — a
monotone session-wide mark, so attribute jumps to the figure where they
first appear), and figures that report ``trees_generated`` get a derived
``traces_per_s`` throughput. ``tools/bench_guard.py --rss-budget`` turns
the RSS column into an enforceable per-figure ceiling.

Existing records for figures *not* run this session are preserved, so a
partial run (``pytest benchmarks/test_fig14_breakdown.py``) refreshes only
its own entry. CI uploads the file as an artifact; comparing it across
PRs shows harness performance drift (each ``BENCH_PR<N>.json`` is that
PR's frozen snapshot; ``tools/bench_guard.py --print-newest`` names the
latest one to compare against).
"""

import json
import os
import re
import time

import numpy as np
import pytest

from repro.core.fleetsample import run_fleet_study
from repro.obs.manifest import peak_rss_mb
from repro.studies import (
    run_cross_cluster_study,
    run_diurnal_study,
    run_service_study,
)
from repro.workloads.catalog import CatalogConfig, build_catalog

BENCH_METHODS = 2000
BENCH_SAMPLES_PER_METHOD = 300
BENCH_SEED = 7

BENCH_TRAJECTORY_FILE = os.path.join(os.path.dirname(__file__), os.pardir,
                                     "BENCH_PR10.json")

# figure name -> {"wall_s": float, "stats": dict}, accumulated per session
_trajectory = {}


def _figure_name(nodeid: str) -> str:
    """``benchmarks/test_fig14_breakdown.py::test_x`` -> ``fig14_breakdown``."""
    module = nodeid.split("::")[0]
    stem = os.path.splitext(os.path.basename(module))[0]
    return re.sub(r"^test_", "", stem)


@pytest.fixture(autouse=True)
def _bench_timer(request):
    """Accumulate wall time per figure (module) across its tests, and
    stamp each figure with the process's peak RSS after it ran."""
    start_s = time.perf_counter()
    yield
    wall_s = time.perf_counter() - start_s
    entry = _trajectory.setdefault(_figure_name(request.node.nodeid),
                                   {"wall_s": 0.0, "stats": {}})
    entry["wall_s"] += wall_s
    # ru_maxrss is a lifetime high-water mark: values are monotone across
    # the session, so a jump localizes to the figure where it first shows.
    entry["stats"]["peak_rss_mb"] = round(peak_rss_mb(), 1)


@pytest.fixture
def record_stat(request):
    """Push key result stats into this figure's ``BENCH_PR10.json`` record.

    Usage::

        def test_fig14(record_stat, ...):
            record_stat(p95_over_median=2.3, services_matched=8)
    """
    figure = _figure_name(request.node.nodeid)

    def _record(**stats) -> None:
        entry = _trajectory.setdefault(figure, {"wall_s": 0.0, "stats": {}})
        entry["stats"].update(stats)

    return _record


@pytest.fixture
def record_sim_stats(record_stat):
    """Record a DES study's engine counters into the trajectory.

    Usage::

        def test_fig14(record_sim_stats, study8, ...):
            record_sim_stats(study8.sim)
    """
    def _record(sim) -> None:
        record_stat(events_fired=sim.events_fired,
                    events_cancelled=sim.events_cancelled,
                    peak_heap=sim.max_heap_size)

    return _record


def pytest_sessionfinish(session, exitstatus):
    """Merge this session's trajectory into ``BENCH_PR10.json``."""
    if not _trajectory:
        return
    records = {}
    try:
        with open(BENCH_TRAJECTORY_FILE, "r", encoding="utf-8") as f:
            records = {r["figure"]: r for r in json.load(f)}
    except (OSError, ValueError, KeyError, TypeError):
        records = {}
    for figure, entry in _trajectory.items():
        stats = entry["stats"]
        if stats.get("trees_generated") and entry["wall_s"] > 0:
            stats["traces_per_s"] = round(
                stats["trees_generated"] / entry["wall_s"], 1)
        records[figure] = {"figure": figure,
                           "wall_s": round(entry["wall_s"], 3),
                           "stats": stats}
    with open(BENCH_TRAJECTORY_FILE, "w", encoding="utf-8") as f:
        json.dump([records[k] for k in sorted(records)], f, indent=2,
                  sort_keys=True)
        f.write("\n")


@pytest.fixture
def show(capsys):
    """Print a results table to the real terminal (not pytest capture)."""
    def _show(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)
    return _show


@pytest.fixture(scope="session")
def bench_catalog():
    return build_catalog(CatalogConfig(n_methods=BENCH_METHODS,
                                       seed=BENCH_SEED))


@pytest.fixture(scope="session")
def bench_fleet(bench_catalog):
    return run_fleet_study(bench_catalog, np.random.default_rng(1),
                           samples_per_method=BENCH_SAMPLES_PER_METHOD)


@pytest.fixture(scope="session")
def study8():
    """All eight Table-1 services, one cluster (Figs. 14-15)."""
    return run_service_study(n_clusters=1, duration_s=4.0, seed=11,
                             dapper_sampling=0.5)


@pytest.fixture(scope="session")
def exo_study():
    """The three Fig.-17 services (one per category) on two clusters."""
    return run_service_study(
        services=["Bigtable", "KVStore", "VideoMetadata"],
        n_clusters=2, duration_s=3.0, seed=23, dapper_sampling=0.6,
    )


@pytest.fixture(scope="session")
def multi_cluster_study():
    """Three services across four clusters with geographic demand
    imbalance (Figs. 16, 22)."""
    return run_service_study(
        services=["Bigtable", "Spanner", "MLInference"],
        n_clusters=4, duration_s=4.0, seed=31,
        server_machines_per_cluster=3, dapper_sampling=0.6,
        per_cluster_rate_spread=0.45,
    )


@pytest.fixture(scope="session")
def diurnal_study():
    return run_diurnal_study(service="Bigtable", n_slices=12,
                             slice_duration_s=1.0, seed=17)


@pytest.fixture(scope="session")
def cross_study():
    return run_cross_cluster_study(service="Spanner", n_client_clusters=16,
                                   duration_s=20.0,
                                   calls_per_cluster_rps=25.0, seed=13)
