"""Shared fixtures for the per-figure benchmarks.

Heavy simulations are session-scoped so each is run once; the
pytest-benchmark timer wraps only the *analysis* under test (via
``benchmark.pedantic(rounds=1)``), and every bench prints its
paper-vs-measured table through the ``show`` fixture.

Scale note: the paper's fleet is 10,000 methods and 722 billion samples;
the benches default to a 2,000-method catalog and seconds-long DES slices
so the whole suite completes in minutes. The shapes under test are scale-
stable; bump the constants below to run closer to paper scale.
"""

import numpy as np
import pytest

from repro.core.fleetsample import run_fleet_study
from repro.studies import (
    run_cross_cluster_study,
    run_diurnal_study,
    run_service_study,
)
from repro.workloads.catalog import CatalogConfig, build_catalog

BENCH_METHODS = 2000
BENCH_SAMPLES_PER_METHOD = 300
BENCH_SEED = 7


@pytest.fixture
def show(capsys):
    """Print a results table to the real terminal (not pytest capture)."""
    def _show(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)
    return _show


@pytest.fixture(scope="session")
def bench_catalog():
    return build_catalog(CatalogConfig(n_methods=BENCH_METHODS,
                                       seed=BENCH_SEED))


@pytest.fixture(scope="session")
def bench_fleet(bench_catalog):
    return run_fleet_study(bench_catalog, np.random.default_rng(1),
                           samples_per_method=BENCH_SAMPLES_PER_METHOD)


@pytest.fixture(scope="session")
def study8():
    """All eight Table-1 services, one cluster (Figs. 14-15)."""
    return run_service_study(n_clusters=1, duration_s=4.0, seed=11,
                             dapper_sampling=0.5)


@pytest.fixture(scope="session")
def exo_study():
    """The three Fig.-17 services (one per category) on two clusters."""
    return run_service_study(
        services=["Bigtable", "KVStore", "VideoMetadata"],
        n_clusters=2, duration_s=3.0, seed=23, dapper_sampling=0.6,
    )


@pytest.fixture(scope="session")
def multi_cluster_study():
    """Three services across four clusters with geographic demand
    imbalance (Figs. 16, 22)."""
    return run_service_study(
        services=["Bigtable", "Spanner", "MLInference"],
        n_clusters=4, duration_s=4.0, seed=31,
        server_machines_per_cluster=3, dapper_sampling=0.6,
        per_cluster_rate_spread=0.45,
    )


@pytest.fixture(scope="session")
def diurnal_study():
    return run_diurnal_study(service="Bigtable", n_slices=12,
                             slice_duration_s=1.0, seed=17)


@pytest.fixture(scope="session")
def cross_study():
    return run_cross_cluster_study(service="Spanner", n_client_clusters=16,
                                   duration_s=20.0,
                                   calls_per_cluster_rps=25.0, seed=13)
