"""Serve-mode throughput: sustained req/s and p99 under cache-hot load.

The tentpole claim behind serve mode is that the observability stack can
watch a live server without taxing it: spans, metrics, burn-rate
evaluation, and admission checks all ride the request path.  This bench
boots the real server on an ephemeral port, prewarms the study cache,
drives it with closed-loop keep-alive users, and records sustained
throughput and per-endpoint p99 into the bench trajectory — with the
obs self-overhead fraction asserted under 5 % of uptime, the same bound
the e2e dogfood enforces.

CI holds the whole module under a wall budget via
``tools/bench_guard.py --budget serve_throughput=<s>``.
"""

import asyncio
import json

from repro.serve.app import ServeApp, ServeConfig
from repro.serve.loadgen import EndpointSpec, LoadGenConfig, run_loadgen

DURATION_S = 3.0
USERS = 4
SEED = 7
#: Small study/what-if shapes so prewarm is seconds, not minutes; the
#: served traffic is cache-hot either way, which is the regime under test.
STUDY = dict(methods=12, trees=8, max_nodes=500)
WHATIF_DURATION_S = 0.5
MIN_RPS = 50.0
MAX_OBS_OVERHEAD = 0.05


def cache_hot_endpoints() -> list:
    """Endpoints whose parameters match the app's prewarmed cache keys."""
    study_body = json.dumps(dict(STUDY, study="trees",
                                 seed=SEED)).encode()
    return [
        EndpointSpec("study", "POST", "/v1/study", study_body),
        EndpointSpec("healthz", "GET", "/healthz"),
        EndpointSpec("whatif", "GET",
                     f"/v1/whatif?service=Bigtable&seed={SEED}"
                     f"&duration_s={WHATIF_DURATION_S:g}"),
        EndpointSpec("metrics", "GET", "/metrics"),
    ]


async def _run(tmp_cache: str):
    app = ServeApp(ServeConfig(
        port=0, seed=SEED, cache_dir=tmp_cache,
        study_methods=STUDY["methods"], study_trees=STUDY["trees"],
        study_max_nodes=STUDY["max_nodes"],
        whatif_duration_s=WHATIF_DURATION_S))
    await app.start()
    try:
        result = await run_loadgen("127.0.0.1", app.port, LoadGenConfig(
            duration_s=DURATION_S, rate=0.0, users=USERS, think_s=0.002,
            seed=SEED, endpoints=cache_hot_endpoints()))
    finally:
        await app.stop()
    return app, result


def test_serve_throughput_cache_hot(tmp_path, show, record_stat):
    app, result = asyncio.run(_run(str(tmp_path / "cache")))
    overhead = app.obs_overhead_fraction()
    p99 = app.endpoint_p99_s()
    record_stat(achieved_rps=round(result.achieved_rps, 1),
                requests_total=app.requests_total,
                ok=result.ok, shed=result.shed, errors=result.errors,
                spans_recorded=len(app.dapper.spans),
                obs_overhead_fraction=round(overhead, 5),
                **{f"p99_{endpoint}_ms": round(value * 1e3, 3)
                   for endpoint, value in p99.items()})
    show(f"serve throughput ({USERS} closed-loop users, {DURATION_S:g}s, "
         f"cache-hot): {result.achieved_rps:.0f} req/s sustained, "
         f"study p99 {p99.get('study', 0.0) * 1e3:.2f} ms, obs overhead "
         f"{overhead * 100:.2f}% of uptime\n{result.render()}")
    assert result.errors == 0
    assert result.shed == 0, "cache-hot load must not trip the SLO"
    assert result.achieved_rps > MIN_RPS
    assert 0.0 < overhead < MAX_OBS_OVERHEAD, (
        f"obs self-time is {overhead * 100:.1f}% of serve uptime "
        f"(limit {MAX_OBS_OVERHEAD * 100:.0f}%)")
