"""Table 1 — the eight services under study.

Checks that the configured service catalog reproduces Table 1's rows
(server, client, nominal RPC size, method) and that each service's DES
profile matches its category.
"""

from repro.core.report import fmt_bytes, format_table
from repro.workloads.services import SERVICE_SPECS

# (service, client, request bytes, method description keyword)
PAPER_TABLE_1 = {
    "Bigtable": ("KVStore", 1000),
    "NetworkDisk": ("Bigtable", 32_000),
    "SSDCache": ("BigQuery", 400),
    "VideoMetadata": ("VideoSearch", 32_000),
    "Spanner": ("NetworkInfo", 800),
    "F1": ("F1", 75),
    "MLInference": ("MLClient", 512),
    "KVStore": ("Recommendations", 128),
}


def test_table1_services(benchmark, show):
    def compute():
        rows = []
        for name, (client, size) in PAPER_TABLE_1.items():
            spec = SERVICE_SPECS[name]
            rows.append((name, spec.client_service, fmt_bytes(spec.request_bytes),
                         spec.method, spec.category))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(format_table(("server", "client", "RPC size", "method", "category"),
                      rows, title="Table 1 — services in this study"))

    for name, (client, size) in PAPER_TABLE_1.items():
        spec = SERVICE_SPECS[name]
        assert spec.client_service == client
        assert spec.request_bytes == size
