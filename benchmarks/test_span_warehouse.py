"""Span-warehouse scale bench: a million-span corpus under bounded RSS.

The acceptance bar for the warehouse PR: a >= 1M-span corpus (set
``REPRO_WAREHOUSE_SPANS`` to go bigger) is built shard by shard with
vectorized columnar synthesis, committed, and then queried — group-by
with sketch percentiles, exact component-matrix extraction, and the
Fig. 20 cycle-tax replay — all through zero-copy mmap shard views, so
peak RSS stays far below the corpus size. Build and query throughput
(``spans_per_s``) land in ``BENCH_PR10.json``; ``tools/bench_guard.py
--rss-budget`` turns the RSS column into a ceiling.
"""

import os
import time

import numpy as np

from repro.core.observer import observer_cycle_tax
from repro.obs.query import SpanFilter, group_by_method, method_matrix
from repro.obs.spanstore import (
    SpanColumns,
    SpanStore,
    SpanWarehouse,
    StringTables,
)
from repro.rpc.errors import StatusCode
from repro.rpc.stack import COMPONENTS

N_SPANS = int(os.environ.get("REPRO_WAREHOUSE_SPANS", "1000000"))
SHARD_SIZE = 65536
SERVICES = ("KVStore", "Spanner", "Bigtable", "Frontend")
METHODS = ("Get", "ReadRows", "Mutate", "Serve")
N_CLUSTERS = 4
N_MACHINES = 16


def synthesize_shard(rng, tables, size, first_span_id):
    """One shard of synthetic spans, built column-wise (no Span objects)."""
    service_ids = rng.integers(len(SERVICES), size=size, dtype=np.int64)
    method_ids = rng.integers(len(METHODS), size=size, dtype=np.int64)
    components = rng.exponential(1e-3, size=(size, len(COMPONENTS)))
    statuses = np.where(rng.random(size) < 0.02,
                        StatusCode.DEADLINE_EXCEEDED.value,
                        StatusCode.OK.value)
    span_ids = np.arange(first_span_id, first_span_id + size,
                         dtype=np.uint64)
    # ~8 spans per trace, parent = previous span in the same trace.
    trace_ids = (span_ids // 8) + 1
    parent_ids = np.where(span_ids % 8 == 0, 0, span_ids - 1)
    ann_rows = np.flatnonzero(rng.random(size) < 0.1).astype(np.int32)
    return SpanColumns(
        trace_ids=trace_ids,
        span_ids=span_ids,
        parent_ids=parent_ids.astype(np.uint64),
        service_ids=service_ids.astype(np.int32),
        method_ids=method_ids.astype(np.int32),
        client_cluster_ids=rng.integers(
            N_CLUSTERS, size=size, dtype=np.int64).astype(np.int32),
        server_cluster_ids=rng.integers(
            N_CLUSTERS, size=size, dtype=np.int64).astype(np.int32),
        machine_ids=rng.integers(
            N_MACHINES, size=size, dtype=np.int64).astype(np.int32),
        statuses=statuses.astype(np.int16),
        start_times=np.sort(rng.uniform(0.0, 3600.0, size=size)),
        request_bytes=rng.integers(64, 1 << 16, size=size),
        response_bytes=rng.integers(64, 1 << 18, size=size),
        cpu_cycles=rng.uniform(1e4, 1e6, size=size),
        components=components,
        ann_rows=ann_rows,
        ann_keys=np.zeros(ann_rows.size, dtype=np.int32),
        ann_values=rng.random(ann_rows.size)[: ann_rows.size],
    )


def build_corpus(root):
    tables = StringTables()
    for name in SERVICES:
        tables.services.intern(name)
    for name in METHODS:
        tables.methods.intern(name)
    for c in range(N_CLUSTERS):
        tables.clusters.intern(f"dc{c}")
    for m in range(N_MACHINES):
        tables.machines.intern(f"m{m}")
    tables.ann_keys.intern("exo_cpu_util")

    store = SpanStore(root, "scale")
    rng = np.random.default_rng(1234)
    shards = []
    written = 0
    index = 0
    while written < N_SPANS:
        size = min(SHARD_SIZE, N_SPANS - written)
        columns = synthesize_shard(rng, tables, size, first_span_id=written)
        store.put(index, columns)
        shards.append({"n_spans": size,
                       "n_annotations": columns.n_annotations})
        written += size
        index += 1
    store.finalize(shards, tables)
    return store.bytes_written


def test_million_span_corpus_queryable(tmp_path, show, record_stat):
    build_start_s = time.perf_counter()
    bytes_written = build_corpus(tmp_path)
    build_s = time.perf_counter() - build_start_s

    warehouse = SpanWarehouse.open(tmp_path, "scale")
    assert warehouse.n_spans == N_SPANS

    query_start_s = time.perf_counter()
    groups = group_by_method(warehouse)
    matrix = method_matrix(warehouse, "KVStore", "Get")
    tax = observer_cycle_tax(warehouse)
    query_s = time.perf_counter() - query_start_s

    # The parallel fold must reproduce the serial result bit for bit
    # (per-shard partials merged in shard order replay its float adds).
    # At least 2 workers even on a 1-CPU runner so the pool path — not
    # the serial fallback — is what gets verified.
    fold_jobs = max(2, min(4, os.cpu_count() or 1))
    parallel_start_s = time.perf_counter()
    parallel_groups = group_by_method(warehouse, jobs=fold_jobs)
    parallel_s = time.perf_counter() - parallel_start_s
    assert set(parallel_groups) == set(groups)
    for key, serial_agg in groups.items():
        par_agg = parallel_groups[key]
        assert par_agg.count == serial_agg.count
        assert par_agg.error_count == serial_agg.error_count
        assert par_agg.sum_value_s == serial_agg.sum_value_s
        assert np.array_equal(par_agg.component_sums,
                              serial_agg.component_sums)
        assert np.array_equal(par_agg.sketch.counts,
                              serial_agg.sketch.counts)
        assert par_agg.sketch.sum == serial_agg.sketch.sum

    assert len(groups) == len(SERVICES) * len(METHODS)
    n_ok = sum(g.count for g in groups.values())
    n_err = sum(g.error_count for g in groups.values())
    assert n_ok + n_err == N_SPANS
    assert matrix.values.shape[1] == len(COMPONENTS)
    assert matrix.values.shape[0] == groups[("KVStore", "Get")].count
    assert 0.0 < tax.tax_fraction < 1.0
    p99 = groups[("KVStore", "Get")].quantile(0.99)
    assert p99 > 0.0
    assert not warehouse.missing_shards

    record_stat(n_spans=N_SPANS,
                n_shards=warehouse.n_shards,
                corpus_mb=round(bytes_written / 2**20, 1),
                build_wall_s=round(build_s, 3),
                query_wall_s=round(query_s, 3),
                spans_per_s=round(N_SPANS / query_s, 1),
                fold_jobs=fold_jobs,
                parallel_fold_wall_s=round(parallel_s, 3),
                parallel_fold_spans_per_s=round(N_SPANS / parallel_s, 1))
    show(f"span warehouse: {N_SPANS:,} spans / {warehouse.n_shards} shards "
         f"({bytes_written / 2**20:.0f} MB) built in {build_s:.2f}s; "
         f"group-by + matrix + cycle-tax queried in {query_s:.2f}s "
         f"({N_SPANS / query_s:,.0f} spans/s); parallel group-by "
         f"(jobs={fold_jobs}) bit-identical in {parallel_s:.2f}s "
         f"({N_SPANS / parallel_s:,.0f} spans/s), KVStore/Get p99 "
         f"{p99 * 1e3:.2f} ms, tax {tax.tax_fraction * 100:.1f}%")
