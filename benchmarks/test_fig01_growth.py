"""Fig. 1 — normalized RPS per CPU cycle over 700 days.

Paper: ~30 % annual growth, 64 % total over the window.
"""

from repro.core.growth import run_growth_study
from repro.core.report import format_table


def test_fig01_growth(benchmark, show):
    result = benchmark.pedantic(
        lambda: run_growth_study(days=700), rounds=1, iterations=1,
    )
    table = format_table(
        ("statistic", "measured", "paper"),
        [
            ("annual RPS/CPU growth", f"{result.annual_growth:.3f}", "0.30"),
            ("total growth over 700 days", f"{result.total_growth:.3f}", "0.64"),
            ("series points", str(len(result.days)), "700 (daily)"),
        ],
        title="Fig. 1 — RPS per CPU cycle, normalized",
    )
    show(table)
    assert 0.22 < result.annual_growth < 0.38
    assert 0.45 < result.total_growth < 0.85
