"""Fig. 23 — RPC error mix by frequency and wasted CPU cycles.

Paper anchors: 1.9 % of RPCs error; Cancelled is 45 % of errors and 55 %
of wasted cycles (hedging); "entity not found" is 20 % / 21 %.
"""

from repro.core.errors import analyze_errors
from repro.rpc.errors import ErrorModel, StatusCode


def test_fig23_error_mix(benchmark, show, bench_fleet):
    result = benchmark.pedantic(
        lambda: analyze_errors(bench_fleet), rounds=1, iterations=1,
    )
    show(result.render())
    assert abs(result.error_rate - 0.019) < 0.01
    assert result.count_shares[StatusCode.CANCELLED] == max(
        result.count_shares.values()
    )
    assert abs(result.count_shares[StatusCode.CANCELLED] - 0.45) < 0.15
    # Cancellations burn an outsized share of cycles.
    assert (result.cycle_shares[StatusCode.CANCELLED]
            >= 0.8 * result.count_shares[StatusCode.CANCELLED])
    # The configured model's analytic shares hit the paper exactly.
    exact = ErrorModel().expected_cycle_shares()
    assert abs(exact[StatusCode.CANCELLED] - 0.55) < 0.03
    assert abs(exact[StatusCode.NOT_FOUND] - 0.21) < 0.03
