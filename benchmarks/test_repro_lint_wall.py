"""Analysis-wall budget: the whole-repo lint pass must stay cheap.

``repro-lint`` sits in the inner loop (pre-commit, CI gate, editor
integration), and since v2 it builds a whole-program model and runs
four cross-module rule families on top of the per-file pass.  Those
passes are worth paying for only while they stay interactive: this
bench lints the entire repository — the same invocation CI runs — and
asserts the wall stays under ``LINT_BUDGET_S``.  The wall also lands
in ``BENCH_PR10.json`` as figure ``repro_lint_wall``, and CI holds it
to the same ceiling via ``tools/bench_guard.py --budget``, so a slow
creep across PRs cannot hide behind per-PR ratio checks.
"""

import time
from pathlib import Path

from repro.analysis.config import load_config
from repro.analysis.runner import lint_paths

#: Whole-repo lint wall ceiling, seconds.  ISSUE budget is 10 s; keep
#: the local assert meaningfully tighter so CI headroom survives slower
#: runners.
LINT_BUDGET_S = 10.0

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT_TARGETS = [REPO_ROOT / "src", REPO_ROOT / "tools",
                REPO_ROOT / "benchmarks"]


def test_whole_repo_lint_under_budget(show, record_stat):
    config = load_config(pyproject=REPO_ROOT / "pyproject.toml")
    start_s = time.perf_counter()
    report = lint_paths(LINT_TARGETS, config)
    wall_s = time.perf_counter() - start_s

    record_stat(files_scanned=report.files_scanned,
                findings=len(report.findings),
                suppressed_pragma=report.suppressed_pragma,
                lint_wall_s=round(wall_s, 4))
    show(f"repro-lint whole repo: {report.files_scanned} files in "
         f"{wall_s:.3f}s (budget {LINT_BUDGET_S:g}s), "
         f"{len(report.findings)} findings, "
         f"{report.suppressed_pragma} pragma-suppressed")
    assert report.files_scanned > 70, (
        "lint scanned suspiciously few files; targets misconfigured?")
    assert wall_s < LINT_BUDGET_S, (
        f"whole-repo lint took {wall_s:.2f}s, over the {LINT_BUDGET_S:g}s "
        f"analysis-wall budget: the program model or a cross-module rule "
        f"got too expensive for the inner loop")
