"""Fig. 21 — per-method CPU cycles per RPC.

Paper anchors: the cheapest 10 % of calls sit in a tight 0.017-0.02
normalized-cycle band across methods (a fixed dispatch floor); expensive
calls span 0.02-0.16+ across methods; per-method P99 is one-to-two orders
above the median; cost correlates with neither size nor latency.
"""

from repro.core.cycles import analyze_method_cycles


def test_fig21_method_cycles(benchmark, show, bench_fleet):
    result = benchmark.pedantic(
        lambda: analyze_method_cycles(bench_fleet), rounds=1, iterations=1,
    )
    show(result.render())
    lo, hi = result.p10_band
    assert 0.015 < lo < 0.025
    assert hi < 0.06          # cheap calls hug the floor fleet-wide
    p90_lo, p90_hi = result.p90_band
    assert p90_hi > 2 * p90_lo  # expensive calls spread widely
    assert 5 < result.p99_over_median_median < 500
    assert abs(result.corr_cycles_latency) < 0.6
    assert abs(result.corr_cycles_size) < 0.6
