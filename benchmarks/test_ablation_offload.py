"""Ablation — MTU-bound serialization offload coverage (§2.5 discussion).

The paper observes that an on-NIC deserialization offload limited to one
MTU (Zerializer-style) "would be able to accelerate the majority of RPCs
but would miss the tail". This bench quantifies that: coverage by calls
and, separately, by bytes — the tail carries most of the bytes, which is
exactly what the offload misses.
"""

import numpy as np

from repro.core.report import format_table
from repro.net.flows import MTU_BYTES
from repro.workloads.catalog import sample_method_calls


def test_ablation_mtu_offload(benchmark, show, bench_catalog):
    rng = np.random.default_rng(3)

    def compute():
        pop_total = covered_calls = 0.0
        bytes_total = bytes_covered = 0.0
        for spec in bench_catalog.methods[:600]:
            s = sample_method_calls(spec, rng, 150,
                                    config=bench_catalog.config)
            fits = s.request_bytes <= MTU_BYTES
            w = spec.popularity
            pop_total += w
            covered_calls += w * fits.mean()
            bytes_total += w * s.request_bytes.sum()
            bytes_covered += w * s.request_bytes[fits].sum()
        return {
            "call_coverage": covered_calls / pop_total,
            "byte_coverage": bytes_covered / bytes_total,
        }

    r = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(format_table(
        ("metric", "measured", "paper"),
        [
            ("requests fitting one MTU (call-weighted)",
             f"{r['call_coverage']:.1%}", "majority"),
            ("request bytes covered", f"{r['byte_coverage']:.1%}",
             "misses the tail"),
        ],
        title="Ablation — Zerializer-style 1-MTU offload coverage",
    ))
    # Calls are mostly coverable; bytes are mostly NOT (the heavy tail).
    assert r["call_coverage"] > 0.3
    assert r["byte_coverage"] < r["call_coverage"] * 0.6
