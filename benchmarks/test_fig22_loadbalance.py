"""Fig. 22 — CPU usage across clusters vs machines within a cluster.

Paper: usage is significantly imbalanced *across clusters* (the
cluster-level balancer optimizes network latency, not CPU), while load
across machines within a cluster is much tighter — except for services
with data-dependent load.
"""

from repro.core.loadbalance import analyze_load_balance
from repro.core.report import format_table


def test_fig22_load_balance(benchmark, show, multi_cluster_study):
    services = ("Bigtable", "Spanner", "MLInference")

    def compute():
        return {
            svc: analyze_load_balance(multi_cluster_study.monarch, svc)
            for svc in services
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    for r in results.values():
        show(r.render())

    for r in results.values():
        assert len(r.cluster_usage) == 4
        assert r.cluster_spread >= 0.0
    # In at least most services, cross-cluster imbalance exceeds the
    # within-cluster machine imbalance (the paper's headline contrast).
    wider = sum(r.cross_cluster_wider() for r in results.values())
    assert wider >= 2
