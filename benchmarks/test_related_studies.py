"""§2.4's cross-study table: our call-graph shape vs Alibaba, Meta, DSB.

Paper claims to reproduce: (a) all datasets are wider than deep; (b) our
depths are similar to Meta's (P99 5-6, max 9-19); (c) production trace
sizes far exceed DeathStarBench's fixed 21-41-service graphs at the tail.
"""

import numpy as np

from repro.core.calltree import run_tree_study
from repro.core.related import compare_with_related_studies


def test_related_studies_comparison(benchmark, show, record_stat,
                                    bench_catalog):
    def compute():
        trees = run_tree_study(bench_catalog, n_trees=300,
                               rng=np.random.default_rng(24),
                               max_nodes=20_000)
        record_stat(trees_generated=trees.n_trees,
                    n_methods=trees.n_methods)
        return compare_with_related_studies(trees)

    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(result.render())
    assert result.wider_than_deep()
    assert result.depth_consistent_with_meta()
    assert result.exceeds_benchmark_suite_tail()
