"""Ablation — tax on the critical path grows with tree depth.

The paper motivates RPC Chains and OS-managed RPC (§6) by showing call
trees are deep enough for per-hop stack/wire costs to compound. This bench
quantifies it on synthesized multi-level traces: the tax share of a root
RPC's critical path rises with path depth — exactly the gain a chained
execution model would reclaim.
"""

import numpy as np

from repro.core.critical_path import run_critical_path_study


def test_ablation_critical_path(benchmark, show, record_stat, bench_catalog):
    result = benchmark.pedantic(
        lambda: run_critical_path_study(bench_catalog, n_traces=150,
                                        rng=np.random.default_rng(9),
                                        max_nodes=1500),
        rounds=1, iterations=1,
    )
    show(result.render())
    record_stat(trees_generated=result.n_traces,
                mean_path_depth=round(result.mean_depth, 2))
    assert result.n_traces == 150
    assert result.mean_depth >= 1.5
    assert 0.0 < result.mean_tax_fraction < 0.9
    # The RPC-Chain case: deeper paths carry proportionally more tax.
    assert result.tax_grows_with_depth()
