"""Fig. 10 — the fleet-wide RPC latency tax.

Paper anchors: the average tax is 2.0 % of completion time (network
1.1 %, proc+stack 0.49 %, queueing 0.43 %); at the P95 tail the tax is
significant and skews toward the network.
"""

from repro.core.tax import analyze_fleet_tax


def test_fig10_fleet_tax(benchmark, show, bench_fleet):
    result = benchmark.pedantic(
        lambda: analyze_fleet_tax(bench_fleet), rounds=1, iterations=1,
    )
    show(result.render())
    # Single-digit average tax, a few x the paper's 2 % at this scale.
    assert 0.01 < result.tax_fraction < 0.10
    f = result.component_fractions
    assert f["network_wire"] == max(f.values())  # network ~half of the tax
    # The tail tax balloons and skews to the network (Fig. 10c/d).
    assert result.tail_tax_fraction > 1.5 * result.tax_fraction
    tf = result.tail_component_fractions
    assert tf["network_wire"] == max(tf.values())
