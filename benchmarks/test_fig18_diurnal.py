"""Fig. 18 — 24-hour overlay of tail latency and exogenous variables.

Paper: in both a fast and a slow cluster, Bigtable's P95 latency
fluctuates through the day following CPU utilization, memory bandwidth,
long-wakeup rate, and CPI.
"""

import numpy as np

from repro.core.exogenous import diurnal_series
from repro.core.report import format_table


def test_fig18_diurnal_correlation(benchmark, show, record_sim_stats,
                                   diurnal_study):
    record_sim_stats(diurnal_study.sim)
    spans = diurnal_study.dapper.spans_for_method("Bigtable", "SearchValue")
    clusters = sorted({s.server_cluster for s in spans})

    def compute():
        return {
            c: diurnal_series(spans, c, service="Bigtable", window_s=7200.0)
            for c in clusters
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for c, r in results.items():
        med = float(np.median(r.tail_latency_s))
        rows.append([c, f"{med*1e3:.2f}ms"] + [
            f"{r.correlations[v]:+.2f}" for v in sorted(r.correlations)
        ])
    show(format_table(
        ["cluster", "median P95"] + [v.replace("exo_", "")
                                     for v in sorted(results[clusters[0]].correlations)],
        rows,
        title="Fig. 18 — 24h tail latency vs exogenous variables (Bigtable)",
    ))

    # Latency must track the exogenous state through the day in every
    # cluster (the paper's fast and slow clusters show the same trend).
    for r in results.values():
        assert r.correlations["exo_cpu_util"] > 0.2
        assert r.correlations["exo_cycles_per_inst"] > 0.2
    # Fast and slow clusters differ in absolute level.
    medians = [float(np.median(r.tail_latency_s)) for r in results.values()]
    # The paper's fast/slow cluster gap in Fig. 18 is itself ~15-25%.
    assert max(medians) > 1.08 * min(medians)
