"""Fig. 17 — exogenous variables vs. near-P95 latency breakdown.

Paper: Bigtable (application-heavy) tracks CPU utilization, memory
bandwidth, long-wakeup rate, and CPI; Video Metadata (queueing-heavy)
follows similar trends; KV-Store (stack-heavy, reserved cores) responds
mainly to CPI.
"""

from repro.core.exogenous import EXOGENOUS_VARIABLES, exogenous_curves
from repro.core.report import format_table
from repro.workloads.services import SERVICE_SPECS


def test_fig17_exogenous_correlations(benchmark, show, record_sim_stats,
                                      exo_study):
    record_sim_stats(exo_study.sim)
    services = ("Bigtable", "KVStore", "VideoMetadata")

    def compute():
        out = {}
        for svc in services:
            spans = exo_study.dapper.spans_for_method(
                svc, SERVICE_SPECS[svc].method
            )
            out[svc] = exogenous_curves(spans, EXOGENOUS_VARIABLES,
                                        service=svc, n_buckets=6)
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for svc in services:
        rows.append([svc] + [
            f"{results[svc][var].correlation:+.2f}"
            for var in EXOGENOUS_VARIABLES
        ])
    show(format_table(
        ["service"] + [v.replace("exo_", "") for v in EXOGENOUS_VARIABLES],
        rows,
        title="Fig. 17 — corr(exogenous variable, near-P95 latency)",
    ))

    # The app-heavy service tracks CPI and CPU pressure.
    assert results["Bigtable"]["exo_cycles_per_inst"].correlation > 0.2
    assert results["Bigtable"]["exo_cpu_util"].correlation > 0.2
    # KV-Store (reserved cores) still tracks CPI.
    assert results["KVStore"]["exo_cycles_per_inst"].correlation > 0.0
