"""Fig. 14 — CDF of completion-time breakdown for the 8 services.

Paper: the services split into application-processing-heavy (Bigtable,
Network Disk, F1, ML Inference, Spanner), queueing-heavy (SSD cache,
Video Metadata) and RPC-stack-heavy (KV-Store); the dominant component is
25-66 % of latency at the median and 30-83 % at P95; P95/median spans
1.86-10.6x with F1 the largest.
"""

from repro.core.breakdown import breakdown_cdf_for_service
from repro.core.report import fmt_seconds, format_table
from repro.rpc.stack import APP_COMPONENT, PROC_COMPONENTS, QUEUE_COMPONENTS
from repro.workloads.services import (
    CATEGORY_APP,
    CATEGORY_QUEUE,
    CATEGORY_STACK,
    SERVICE_SPECS,
)

_CATEGORY_OF_COMPONENT = {
    APP_COMPONENT: CATEGORY_APP,
    **{c: CATEGORY_QUEUE for c in QUEUE_COMPONENTS},
    **{c: CATEGORY_STACK for c in PROC_COMPONENTS},
}


def test_fig14_service_breakdowns(benchmark, show, record_sim_stats,
                                  study8):
    record_sim_stats(study8.sim)

    def compute():
        return {
            name: breakdown_cdf_for_service(study8.dapper, name, spec.method)
            for name, spec in SERVICE_SPECS.items()
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    ratios = []
    matches = 0
    for name, spec in SERVICE_SPECS.items():
        b = results[name]
        dom95 = b.dominant_at(95)
        category = _CATEGORY_OF_COMPONENT.get(dom95, "?")
        ok = category == spec.category
        matches += ok
        ratios.append(b.p95_over_median())
        rows.append((
            name, fmt_seconds(b.total_at(50)), fmt_seconds(b.total_at(95)),
            dom95, f"{b.p95_over_median():.2f}x",
            spec.category + (" ✓" if ok else " ✗"),
        ))
    show(format_table(
        ("service", "P50", "P95", "dominant@P95", "P95/med", "paper category"),
        rows,
        title="Fig. 14 — completion-time breakdown per service "
              "(paper: dominant 25-66% @median, P95/med 1.86-10.6x)",
    ))

    # At least 6 of 8 services land in the paper's category.
    assert matches >= 6
    # P95/median spans the paper's range order-of-magnitude.
    assert min(ratios) > 1.2
    assert max(ratios) > 4.0
    # F1 has the largest (or near-largest) spread.
    f1_ratio = results["F1"].p95_over_median()
    assert f1_ratio >= sorted(ratios)[-3]
