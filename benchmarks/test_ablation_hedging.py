"""Ablation — request hedging: tail latency bought with wasted cycles.

Section 4.4 attributes most cancellations (45 % of errors, 55 % of wasted
cycles) to hedging. This bench runs the same workload with hedging off and
on, and measures both sides of the trade: the P99 completion time and the
cycles burned by cancelled losers.
"""

import numpy as np

from repro.core.report import fmt_seconds, format_table
from repro.fleet.topology import FleetSpec, build_fleet
from repro.net.latency import NetworkModel
from repro.obs.dapper import DapperCollector
from repro.rpc.errors import StatusCode
from repro.rpc.hedging import NO_HEDGING, HedgingPolicy
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.workloads.drivers import (
    DeploymentConfig,
    OpenLoopDriver,
    ServiceDeployment,
)
from repro.workloads.services import SERVICE_SPECS


def run_with(hedging, duration_s=3.0, seed=55):
    sim = Simulator()
    fleet = build_fleet(FleetSpec(), seed=seed)
    dapper = DapperCollector(sampling_rate=1.0)
    dep = ServiceDeployment(
        sim, SERVICE_SPECS["F1"], fleet.clusters[:1], NetworkModel(),
        dapper=dapper, rngs=RngRegistry(seed),
        config=DeploymentConfig(server_machines_per_cluster=4,
                                hedging=hedging),
    )
    driver = OpenLoopDriver(dep, fleet.clusters[0])
    driver.start(duration_s)
    sim.run_until(duration_s + 25.0)
    ok = np.array([s.completion_time for s in dapper.ok_spans()])
    cancelled = [s for s in dapper.spans if s.status is StatusCode.CANCELLED]
    total_cycles = sum(s.cpu_cycles for s in dapper.spans)
    wasted = sum(s.cpu_cycles for s in cancelled)
    return {
        "p50": float(np.percentile(ok, 50)),
        "p99": float(np.percentile(ok, 99)),
        "cancelled_frac": len(cancelled) / max(len(dapper.spans), 1),
        "wasted_cycle_frac": wasted / max(total_cycles, 1e-12),
    }


def test_ablation_hedging(benchmark, show):
    # Hedge only once a call has far outlived the typical handler time
    # (~P98-P99): selective hedging rescues the extreme tail without the
    # duplicated load eroding the win.
    policy = HedgingPolicy.from_percentile_estimate(
        p95_latency_s=20 * SERVICE_SPECS["F1"].app_median_s
    )

    def compute():
        return {
            "no_hedging": run_with(NO_HEDGING),
            "hedging": run_with(policy),
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(format_table(
        ("config", "P50", "P99", "cancelled", "wasted cycles"),
        [
            (name, fmt_seconds(r["p50"]), fmt_seconds(r["p99"]),
             f"{r['cancelled_frac']:.1%}", f"{r['wasted_cycle_frac']:.1%}")
            for name, r in results.items()
        ],
        title="Ablation — hedging trade-off (F1)",
    ))

    base, hedged = results["no_hedging"], results["hedging"]
    # Hedging buys tail latency...
    assert hedged["p99"] < base["p99"]
    # ...by burning real cycles on cancelled losers.
    assert hedged["cancelled_frac"] > 0.01
    assert hedged["wasted_cycle_frac"] > 0.01
    assert base["cancelled_frac"] == 0.0
