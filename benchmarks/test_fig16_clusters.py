"""Fig. 16 — P95 latency breakdown across clusters.

Paper: for the same RPC on identical platforms, the P95 latency varies
1.24-10x across clusters while the dominant component stays largely the
same — cluster state (the exogenous variables), not the workload, drives
the difference.
"""

from repro.core.breakdown import analyze_cluster_breakdowns
from repro.core.report import format_table


def test_fig16_cluster_spread(benchmark, show, multi_cluster_study):
    def compute():
        return {
            svc: analyze_cluster_breakdowns(
                multi_cluster_study.dapper, svc,
                multi_cluster_study.deployments[svc].spec.method,
            )
            for svc in ("Bigtable", "Spanner", "MLInference")
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    for svc, r in results.items():
        show(r.render())

    spreads = [r.spread for r in results.values()]
    # The paper's 1.24-10x band.
    assert all(s >= 1.05 for s in spreads)
    assert max(spreads) > 1.24
    assert max(spreads) < 30
    for r in results.values():
        assert len(r.clusters) >= 3
