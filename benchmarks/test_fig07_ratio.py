"""Fig. 7 — response/request size ratio.

Paper: most methods are write-dominant (median ratio < 1) but all carry
heavy tails of both large requests and large responses.
"""

import numpy as np

from repro.core.report import format_table
from repro.core.sizes import analyze_sizes


def test_fig07_response_request_ratio(benchmark, show, bench_fleet):
    result = benchmark.pedantic(
        lambda: analyze_sizes(bench_fleet), rounds=1, iterations=1,
    )
    ratio50 = np.array([m.pct("size_ratio", 50) for m in bench_fleet.methods])
    ratio99 = np.array([m.pct("size_ratio", 99) for m in bench_fleet.methods])
    table = format_table(
        ("statistic", "measured", "paper"),
        [
            ("frac methods write-dominant (median ratio < 1)",
             f"{result.frac_methods_write_dominant:.3f}", "majority"),
            ("median method: median ratio", f"{np.median(ratio50):.3f}", "<1"),
            ("median method: P99 ratio", f"{np.median(ratio99):.1f}",
             "heavy read tail (>>1)"),
            ("frac methods with P99 ratio > 1",
             f"{(ratio99 > 1).mean():.3f}", "most"),
        ],
        title="Fig. 7 — response/request size ratio per method",
    )
    show(table)
    assert result.frac_methods_write_dominant > 0.55
    assert np.median(ratio99) > 3.0
    assert (ratio99 > 1).mean() > 0.7
