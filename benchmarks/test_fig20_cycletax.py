"""Fig. 20 — the RPC cycle tax.

Paper anchors: 7.1 % of all fleet CPU cycles; compression 3.1 %,
networking 1.7 %, serialization 1.2 %, RPC library 1.1 %.
"""

from repro.core.cycles import analyze_cycle_tax


def test_fig20_cycle_tax(benchmark, show, bench_fleet):
    result = benchmark.pedantic(
        lambda: analyze_cycle_tax(bench_fleet.gwp), rounds=1, iterations=1,
    )
    show(result.render())
    assert 0.03 < result.tax_fraction < 0.12
    f = result.category_fractions
    # Ordering: compression > networking > serialization; the library is
    # the smallest slice (the paper's argument against RPC-library-only
    # SmartNIC offload, §5.3).
    assert f["compression"] == max(f.values())
    assert f["networking"] > f["serialization"]
    assert abs(f["compression"] - 0.031) < 0.02
