"""Theory fast path bench: closed-form what-if vs the matched DES path.

The analytic engine answers ``/v1/whatif?mode=analytic`` from a cached
:class:`~repro.theory.convolve.ComponentProfile` (percentile-only
telemetry distilled from one ground-truth DES run). This bench times
the three tiers of that path against the DES path serve mode uses for
``mode=des``:

1. **DES point** — ``run_service_study`` + ``what_if_for_service``,
   exactly what ``_compute_whatif`` does per cache-miss query.
2. **Engine build** — profile -> per-component DDists + prefix/suffix
   convolutions. Paid once per profile (serve memoizes the engine).
3. **Steady-state query** — ``engine.result(percentile)``: pure array
   lookups. This is the per-query cost after warmup, and the one the
   >= 100x acceptance bar applies to.

The fig15-style sweep compares ``engine.sweep`` over several tail
percentiles against the matched DES cost: serve's DES cache key
includes the percentile, so each DES sweep point re-runs the study —
the honest baseline is ``n_points * des_wall``.

Walls, speedups, and the agreement deltas land in the bench trajectory
(``BENCH_PR10.json``); ``tools/bench_guard.py --budget theory_whatif=10``
caps the whole figure's wall in CI.
"""

import time

from repro.core.whatif import what_if_for_service
from repro.studies import run_service_study
from repro.theory.convolve import (
    WHATIF_RESCUED_TOLERANCE_PTS,
    AnalyticWhatIf,
    ComponentProfile,
)
from repro.workloads.services import SERVICE_SPECS

SERVICE = "Bigtable"
DURATION_S = 2.0
SEED = 7
SWEEP_PERCENTILES = (90.0, 95.0, 99.0, 99.5, 99.9)
QUERY_ROUNDS = 5
MIN_SPEEDUP = 100.0


def test_analytic_whatif_speedup(show, record_stat):
    method = SERVICE_SPECS[SERVICE].method

    # 1. The matched DES path (what serve computes per mode=des miss).
    des_start_s = time.perf_counter()
    study = run_service_study(services=[SERVICE], n_clusters=1,
                              duration_s=DURATION_S, seed=SEED,
                              dapper_sampling=1.0)
    des = what_if_for_service(study.dapper, SERVICE, method)
    des_wall_s = time.perf_counter() - des_start_s

    # Profile distillation: once per (service, study), cached on disk by
    # serve mode, so it is not on the query path.
    matrix = study.dapper.matrix_for_method(f"{SERVICE}/{method}")
    doc = ComponentProfile.from_matrix(matrix, service=SERVICE).to_dict()

    # 2. Engine build (convolutions) — amortized across queries.
    build_start_s = time.perf_counter()
    engine = AnalyticWhatIf(ComponentProfile.from_dict(doc))
    build_wall_s = time.perf_counter() - build_start_s

    # 3. Steady-state query: best-of-N to shave scheduler noise.
    query_wall_s = min(
        _timed(lambda: engine.result(95.0)) for _ in range(QUERY_ROUNDS))
    analytic = engine.result(95.0)

    # Cross-validation: same dominant component, rescued mass within
    # the stated tolerance band.
    assert analytic.dominant() == des.dominant()
    delta_pts = abs(analytic.percent_rescued[analytic.dominant()]
                    - des.percent_rescued[des.dominant()])
    assert delta_pts <= WHATIF_RESCUED_TOLERANCE_PTS

    speedup = des_wall_s / query_wall_s
    assert speedup >= MIN_SPEEDUP, (
        f"analytic query {query_wall_s * 1e3:.2f} ms is only {speedup:.0f}x "
        f"faster than the {des_wall_s:.2f}s DES path (need >= "
        f"{MIN_SPEEDUP:.0f}x)")

    # The fig15-style sweep: distributions reused across percentiles.
    sweep_start_s = time.perf_counter()
    sweep = engine.sweep(SWEEP_PERCENTILES)
    sweep_wall_s = time.perf_counter() - sweep_start_s
    assert len(sweep) == len(SWEEP_PERCENTILES)
    # Matched DES sweep re-runs the study per percentile (the serve
    # cache key includes it), so the baseline is n_points DES walls.
    sweep_speedup = len(SWEEP_PERCENTILES) * des_wall_s / sweep_wall_s
    assert sweep_speedup >= MIN_SPEEDUP, (
        f"analytic sweep {sweep_wall_s * 1e3:.1f} ms is only "
        f"{sweep_speedup:.0f}x faster than {len(SWEEP_PERCENTILES)} DES "
        f"points (need >= {MIN_SPEEDUP:.0f}x)")

    record_stat(des_wall_s=round(des_wall_s, 3),
                engine_build_s=round(build_wall_s, 4),
                analytic_query_s=round(query_wall_s, 6),
                sweep_wall_s=round(sweep_wall_s, 4),
                sweep_points=len(SWEEP_PERCENTILES),
                speedup=round(speedup, 1),
                sweep_speedup=round(sweep_speedup, 1),
                rescued_delta_pts=round(delta_pts, 2))
    show(f"theory what-if [{SERVICE}/{method}]: DES {des_wall_s:.2f}s vs "
         f"analytic {query_wall_s * 1e6:.0f}us/query "
         f"({speedup:,.0f}x; engine built once in "
         f"{build_wall_s * 1e3:.0f} ms); {len(SWEEP_PERCENTILES)}-point "
         f"sweep {sweep_wall_s * 1e3:.1f} ms ({sweep_speedup:,.0f}x); "
         f"dominant '{analytic.dominant()}' agrees, rescued delta "
         f"{delta_pts:.1f} pts (tolerance "
         f"{WHATIF_RESCUED_TOLERANCE_PTS:.0f})")


def _timed(fn) -> float:
    start_s = time.perf_counter()
    fn()
    return time.perf_counter() - start_s
