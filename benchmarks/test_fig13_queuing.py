"""Fig. 13 — per-method queueing latency.

Paper anchors: half of methods have median queueing <= 360 us and P99 <=
102 ms; the worst 10 % of methods have median >= 1.1 ms and P99 >= 611 ms
— tail queueing far exceeds median queueing.
"""

from repro.core.tax import analyze_queueing


def test_fig13_queueing(benchmark, show, bench_fleet):
    result = benchmark.pedantic(
        lambda: analyze_queueing(bench_fleet), rounds=1, iterations=1,
    )
    show(result.render())
    assert result.frac_median_under_360us > 0.4
    assert result.frac_p99_under_102ms > 0.4
    assert 0.3e-3 < result.worst10pct_median_s < 5e-3
    assert result.worst10pct_p99_s > 0.1
    # The headline: tail queueing is orders of magnitude above the median.
    assert result.worst10pct_p99_s > 50 * result.worst10pct_median_s
