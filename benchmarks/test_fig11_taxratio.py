"""Fig. 11 — per-method ratio of the latency tax to completion time.

Paper anchors: the median method's tax ratio is 8.6 %; the 10 % of
methods with the highest overheads have median 38 % and P90 96 %; per-
method P99 ratios span 0.5 %-99.99 %.
"""

from repro.core.tax import analyze_tax_ratio


def test_fig11_tax_ratio(benchmark, show, bench_fleet):
    result = benchmark.pedantic(
        lambda: analyze_tax_ratio(bench_fleet), rounds=1, iterations=1,
    )
    show(result.render())
    assert 0.02 < result.median_method_median_ratio < 0.20
    assert result.top10pct_methods_median_ratio > 0.15
    assert result.top10pct_methods_p90_ratio > 0.5
    lo, hi = result.p99_ratio_span
    assert lo < 0.2 and hi > 0.9
