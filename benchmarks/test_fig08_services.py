"""Fig. 8 — top services by invocations, bytes, and CPU cycles.

Paper anchors: top-8 services = 60 % of invocations; Network Disk is 35 %
of RPCs (and the most bytes) but < 2 % of fleet cycles; ML Inference is
0.17 % of calls but 0.89 % of cycles; F1 is ~1.8 % of both.
"""

from repro.core.services import analyze_services


def test_fig08_service_shares(benchmark, show, bench_fleet):
    result = benchmark.pedantic(
        lambda: analyze_services(bench_fleet), rounds=1, iterations=1,
    )
    show(result.render())
    assert abs(result.network_disk["calls"] - 0.35) < 0.04
    assert result.network_disk["cycles"] < 0.06
    assert 0.55 < result.top8_call_share < 0.75
    # The storage/compute inversion.
    shares = result.shares
    assert shares["MLInference"]["cycles"] > shares["MLInference"]["calls"]
    assert result.network_disk["cycles"] < result.network_disk["calls"]
    # Network Disk moves the most bytes.
    top_bytes = result.ranked("bytes", 1)[0][0]
    assert top_bytes == "NetworkDisk"
