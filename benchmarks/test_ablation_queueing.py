"""Ablation — queue discipline under heavy-tailed RPC cost.

Section 4.2: "If an RPC with low CPU cost unluckily ends up queued at a
server that is currently processing an expensive query, then it could see
significant latency inflation" — head-of-line blocking from the
heavy-tailed cost distribution. This bench quantifies the HOL effect by
replaying the same F1 load under FIFO, an (oracle) shortest-job-first, and
LIFO handler queues. SJF is an upper bound, not a proposal: the paper
stresses that RPC cost is not predictable in advance.
"""

import numpy as np

from repro.core.report import fmt_seconds, format_table
from repro.fleet.machine import MachineProfile
from repro.fleet.topology import FleetSpec, build_fleet
from repro.net.latency import NetworkModel
from repro.obs.dapper import DapperCollector
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.workloads.drivers import (
    DeploymentConfig,
    OpenLoopDriver,
    ServiceDeployment,
)
from repro.workloads.services import SERVICE_SPECS


def run_discipline(discipline: str, duration_s=3.0, seed=66):
    sim = Simulator()
    fleet = build_fleet(FleetSpec(), seed=seed)
    dapper = DapperCollector(sampling_rate=1.0)
    profile = MachineProfile(cores=4, tx_workers=2, rx_workers=2,
                             handler_discipline=discipline)
    dep = ServiceDeployment(
        sim, SERVICE_SPECS["F1"], fleet.clusters[:1], NetworkModel(),
        dapper=dapper, rngs=RngRegistry(seed),
        config=DeploymentConfig(server_machines_per_cluster=2,
                                machine_profile=profile),
    )
    driver = OpenLoopDriver(dep, fleet.clusters[0], rate_scale=1.3)
    driver.start(duration_s)
    sim.run_until(duration_s + 25.0)
    totals = np.array([s.completion_time for s in dapper.ok_spans()])
    return {
        "p50": float(np.percentile(totals, 50)),
        "p95": float(np.percentile(totals, 95)),
        "p99": float(np.percentile(totals, 99)),
    }


def test_ablation_queue_discipline(benchmark, show):
    def compute():
        return {d: run_discipline(d) for d in ("fifo", "sjf", "lifo")}

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(format_table(
        ("discipline", "P50", "P95", "P99"),
        [(d, fmt_seconds(r["p50"]), fmt_seconds(r["p95"]),
          fmt_seconds(r["p99"])) for d, r in results.items()],
        title="Ablation — handler queue discipline (F1, heavy-tailed cost)",
    ))
    # The oracle SJF median beats FIFO (short RPCs no longer HOL-blocked).
    assert results["sjf"]["p50"] < results["fifo"]["p50"]
    # And FIFO beats the adversarial LIFO at the median or tail.
    assert (results["fifo"]["p50"] <= results["lifo"]["p50"] * 1.05
            or results["fifo"]["p99"] < results["lifo"]["p99"])
