"""Out-of-core streaming study at scale — the PR-8 tentpole figure.

Generates ``REPRO_STREAM_TRACES`` call trees (default 1M; the committed
``BENCH_PR10.json`` entry is a 10M-trace run) through the spill-and-fold
pipeline: shards stream to disk as columnar ``.npy`` segments and are
folded back into count histograms, so peak RSS stays bounded by one
shard plus the fold state no matter how many traces run through.

The figure records ``trees_generated`` (hence ``traces_per_s``) and, like
every figure, ``peak_rss_mb``; CI's stream-smoke job runs this bench in
its own process and enforces the memory ceiling via
``tools/bench_guard.py --rss-budget stream_scale=2048``. In-process
assertion of the ceiling is opt-in (``REPRO_STREAM_ASSERT_RSS=1``)
because ``ru_maxrss`` is a session-wide high-water mark: inside the full
bench suite this figure would inherit the DES fixtures' peak.
"""

import os

from repro.core.parallel import run_tree_study_parallel
from repro.obs.manifest import peak_rss_mb
from repro.workloads.catalog import CatalogConfig, build_catalog

STREAM_TRACES = int(os.environ.get("REPRO_STREAM_TRACES", "1000000"))
STREAM_METHODS = 300
STREAM_MAX_NODES = 48
STREAM_SHARD_SIZE = 8192
RSS_BUDGET_MB = 2048.0


def test_stream_scale(benchmark, show, record_stat, tmp_path):
    catalog = build_catalog(CatalogConfig(n_methods=STREAM_METHODS, seed=7))

    def compute():
        return run_tree_study_parallel(
            catalog, n_trees=STREAM_TRACES, seed=7, jobs=1,
            max_nodes=STREAM_MAX_NODES, shard_size=STREAM_SHARD_SIZE,
            spill_dir=str(tmp_path / "spill"),
        )

    result = benchmark.pedantic(compute, rounds=1, iterations=1)

    assert result.n_trees == STREAM_TRACES
    assert result.per_method_descendants  # the fold produced real stats
    rss_mb = peak_rss_mb()
    record_stat(trees_generated=result.n_trees, n_methods=STREAM_METHODS,
                max_nodes=STREAM_MAX_NODES, shard_size=STREAM_SHARD_SIZE)
    show(f"stream_scale: {STREAM_TRACES:,} traces through the spill/fold "
         f"pipeline, peak RSS {rss_mb:.0f} MB "
         f"(budget {RSS_BUDGET_MB:.0f} MB when run isolated)")
    if os.environ.get("REPRO_STREAM_ASSERT_RSS"):
        assert rss_mb <= RSS_BUDGET_MB, (
            f"peak RSS {rss_mb:.0f} MB exceeds {RSS_BUDGET_MB:.0f} MB")
