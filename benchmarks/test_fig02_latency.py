"""Fig. 2 — per-method RPC completion-time heatmap and CDF.

Paper anchors: 90 % of methods have P1 <= 657 us; 90 % have median >=
10.7 ms; 99.5 % have P99 >= 1 ms; the median method's P99 is 225 ms; the
slowest 5 % have P1 >= 166 ms and P99 >= 5 s.
"""

import numpy as np

from repro.core.heatmap import render_heatmap
from repro.core.latency import analyze_latency_distribution
from repro.core.stats import MethodPercentiles


def test_fig02_latency_distribution(benchmark, show, bench_fleet):
    result = benchmark.pedantic(
        lambda: analyze_latency_distribution(bench_fleet),
        rounds=1, iterations=1,
    )
    show(result.render())
    grid = MethodPercentiles(result.method_names, result.percentiles,
                             result.grid)
    show(render_heatmap(grid,
                        title="Fig. 2a — RPC completion time per method"))
    assert result.frac_p1_under_657us > 0.65
    assert result.frac_median_over_10_7ms > 0.75
    assert result.frac_p99_over_1ms > 0.99
    assert 100e-3 < result.median_method_p99_s < 600e-3
    assert result.slowest5_min_p1_s > 50e-3
    assert result.slowest5_min_p99_s > 2.0
