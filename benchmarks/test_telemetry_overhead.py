"""Telemetry self-overhead: an instrumented-but-unobserved engine is free.

The probe hooks added to the hot paths (``Simulator.step``,
``ServerPool`` transitions, the RPC client/server) must cost nothing
when nobody is listening: ``resolve_probe`` folds a ``NullProbe`` to
``None``, so every call site reduces to one pointer test that was
already there. This bench pins that down: a pure event-churn workload
run with ``probe=None`` versus ``probe=NullProbe()`` must land within
5 % (min-of-repeats), and the ratio is recorded into ``BENCH_PR10.json``
so drift shows up across PRs.

An actively observing probe is *allowed* to cost — that price is
reported (not asserted) for scale.
"""

import time

from repro.obs.telemetry import MetricsProbe
from repro.obs.metrics import MetricRegistry
from repro.sim.engine import Simulator
from repro.sim.instrument import NullProbe
from repro.sim.queues import Job, ServerPool

N_JOBS = 60_000
REPEATS = 5
MAX_NULLPROBE_RATIO = 1.05


def _run_engine(probe) -> int:
    """A self-propagating arrival cascade through a worker pool."""
    sim = Simulator(probe=probe)
    pool = ServerPool(sim, servers=4, name="w")

    def arrive(i: int) -> None:
        pool.submit(Job(service_time=1e-3))
        if i + 1 < N_JOBS:
            sim.after(5e-4, lambda: arrive(i + 1))

    sim.after(0.0, lambda: arrive(0))
    sim.run_until(N_JOBS * 5e-4 + 1.0)
    return sim.events_fired


def _min_wall_s(probe_factory) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        probe = probe_factory()
        start_s = time.perf_counter()
        _run_engine(probe)
        best = min(best, time.perf_counter() - start_s)
    return best


def test_nullprobe_within_noise_of_uninstrumented(show, record_stat):
    baseline_s = _min_wall_s(lambda: None)
    nullprobe_s = _min_wall_s(NullProbe)

    def observed_probe():
        return MetricsProbe(MetricRegistry())

    observed_s = _min_wall_s(observed_probe)

    ratio = nullprobe_s / baseline_s
    observed_ratio = observed_s / baseline_s
    record_stat(baseline_wall_s=round(baseline_s, 4),
                nullprobe_wall_s=round(nullprobe_s, 4),
                nullprobe_ratio=round(ratio, 4),
                metrics_probe_ratio=round(observed_ratio, 4),
                n_jobs=N_JOBS)
    show(f"engine churn ({N_JOBS:,} jobs, min of {REPEATS}): "
         f"baseline {baseline_s:.3f}s, NullProbe {nullprobe_s:.3f}s "
         f"(x{ratio:.3f}), MetricsProbe {observed_s:.3f}s "
         f"(x{observed_ratio:.3f})")
    assert ratio <= MAX_NULLPROBE_RATIO, (
        f"NullProbe run is {ratio:.3f}x the uninstrumented baseline "
        f"(limit {MAX_NULLPROBE_RATIO}x): the resolve_probe fast path "
        f"is not folding to None somewhere on the hot path")
