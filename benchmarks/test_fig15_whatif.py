"""Fig. 15 — what-if analysis: % of P95-tail RPCs rescued by replacing one
component with its median.

Paper: the rescuing component matches each service's dominant category —
e.g. Network Disk/F1/BigQuery/ML Inference are rescued by fixing server
application time, SSD cache by its server queues, KV-Store by response
RPC-stack processing.
"""

from repro.core.report import format_table
from repro.core.whatif import what_if_for_service
from repro.rpc.stack import APP_COMPONENT, COMPONENTS
from repro.workloads.services import SERVICE_SPECS


def test_fig15_whatif(benchmark, show, study8):
    def compute():
        return {
            name: what_if_for_service(study8.dapper, name, spec.method)
            for name, spec in SERVICE_SPECS.items()
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    short = {c: c.replace("client_", "cli ").replace("server_", "srv ")
              .replace("request_", "req ").replace("response_", "rsp ")
              .replace("network_wire", "wire").replace("proc_stack", "proc")
              .replace("_queue", " q").replace("application", "app")
             for c in COMPONENTS}
    rows = []
    for name in SERVICE_SPECS:
        r = results[name]
        rows.append([name] + [f"{r.percent_rescued[c]:.1f}" for c in COMPONENTS])
    show(format_table(
        ["service"] + [short[c] for c in COMPONENTS], rows,
        title="Fig. 15 — % of P95-tail RPCs rescued per component",
    ))

    # Application-heavy services are rescued by the handler.
    for name in ("Bigtable", "MLInference", "F1"):
        assert results[name].dominant() == APP_COMPONENT
    # Queue-heavy: server receive queue dominates the rescue.
    assert results["SSDCache"].dominant() == "server_recv_queue"
    # KV-Store's tail is NOT the handler: queueing and the response path
    # (stack + wire) drive it, as in the paper's Fig. 15 row where "Resp
    # RPC + Network Stack" is the largest entry.
    kv = results["KVStore"]
    assert kv.dominant() != APP_COMPONENT
    response_side = (kv.percent_rescued["response_proc_stack"]
                     + kv.percent_rescued["response_network_wire"])
    assert response_side > 10.0
